#!/bin/bash
# Appends the raw harness outputs to EXPERIMENTS.md (run after run_all.sh).
set -u
OUT=$(dirname "$0")
MD=$OUT/../EXPERIMENTS.md
# drop anything after the marker, then re-append
sed -i '/^# Raw measured output/q' "$MD"
echo "" >> "$MD"
echo '*(`--scale small`, single CPU core; regenerate with `results/run_all.sh small`)*' >> "$MD"
for exp in exp_table2_stats exp_table3_overall exp_table4_ablation exp_fig4_sequential exp_fig5_dyadic exp_fig6_fusion exp_fig7_case_study exp_suppl1_singleop exp_suppl2_dyadic_sgnnhn exp_suppl3_topk exp_ext_op_weighting; do
  f=$OUT/$exp.txt
  [ -s "$f" ] || continue
  {
    echo ""
    echo "## $exp"
    echo ""
    echo '```text'
    cat "$f"
    echo '```'
  } >> "$MD"
done
echo "appended"
