#!/bin/bash
# Regenerates every table/figure of the paper at the given scale.
set -u
SCALE=${1:-small}
OUT=$(dirname "$0")
BIN=./target/release
run() {
  exp=$1; shift
  echo "=== $exp (scale $SCALE) ==="
  start=$SECONDS
  if "$BIN/$exp" --scale "$SCALE" "$@" > "$OUT/$exp.txt" 2>&1; then
    echo "ok in $((SECONDS-start))s"
  else
    echo "FAILED: $exp (see $OUT/$exp.txt)"
  fi
}
run exp_table2_stats
run exp_table4_ablation --repeats 2
run exp_fig4_sequential --repeats 2
run exp_fig5_dyadic --repeats 2
run exp_fig7_case_study
run exp_suppl2_dyadic_sgnnhn
run exp_ext_op_weighting
run exp_fig6_fusion
run exp_suppl1_singleop
run exp_table3_overall
run exp_suppl3_topk
run exp_parallel_scaling --train-threads 4 --json
