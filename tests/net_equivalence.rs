//! Networked-serving equivalence: scores served over TCP — through the
//! frame codec, the JSON wire format, rendezvous sharding across multiple
//! replicas, the router queues, and the micro-batching engine — must be
//! **bitwise identical** (`f32::to_bits`) to the in-process frozen model.
//!
//! Two properties make exact equality achievable and therefore required:
//! every replica rebuilds from the same weight snapshot (pinned by
//! `serving_equivalence.rs`), and the wire format round-trips `f32` exactly
//! (`f32 → f64` is exact, the JSON writer prints shortest-round-trip
//! decimals, and narrowing back to `f32` recovers the original bits).
//! Anything short of bitwise equality here means the network layer
//! corrupted a score.

use embsr_baselines::{Gru4Rec, Narm};
use embsr_core::{Embsr, EmbsrConfig};
use embsr_net::{NetClient, Server, ServerConfig};
use embsr_serve::{
    top_k_of_row, EngineConfig, FrozenModel, Precision, ScoreBatch, SubmitOptions, TopK,
};
use embsr_sessions::{MicroBehavior, Session};
use embsr_train::{SessionModel, TrainConfig};

const SEEDS: [u64; 3] = [11, 42, 1337];
const RAGGED_BATCHES: [usize; 5] = [1, 3, 4, 5, 32];

const NUM_ITEMS: usize = 40;
const NUM_OPS: usize = 6;
const DIM: usize = 16;

/// The same variable-length session pool as `serving_equivalence.rs`, so
/// the two suites pin the same arithmetic at different layers.
fn test_sessions(seed: u64) -> Vec<Session> {
    (0..64u64)
        .map(|i| {
            let len = 1 + ((i * 7 + seed) % 9) as usize;
            Session {
                id: i,
                events: (0..len)
                    .map(|j| {
                        let item = ((i * 13 + j as u64 * 5 + seed) % NUM_ITEMS as u64) as u32;
                        let op = ((i + j as u64) % NUM_OPS as u64) as u16;
                        MicroBehavior::new(item, op)
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Serves `model` over TCP behind ≥2 sharded replicas and pins every score
/// row to the in-process frozen path, bit for bit, across ragged batches.
fn assert_network_equivalence<M, F>(model: M, factory: F, seed: u64)
where
    M: SessionModel,
    F: Fn() -> M + Send + Sync + 'static,
{
    let max_len = TrainConfig::fast().max_session_len;
    let frozen = FrozenModel::freeze(model, max_len);
    let server = Server::start(
        &frozen,
        factory,
        ServerConfig {
            replicas: 3, // multi-replica: sharding is on the request path
            dispatchers: 2,
            engine: EngineConfig {
                workers: 2,
                max_batch: 16,
                flush_deadline_us: 200,
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let mut client = NetClient::connect(server.addr()).expect("connect");
    let sessions = test_sessions(seed);
    for &batch in &RAGGED_BATCHES {
        for chunk in sessions.chunks(batch) {
            let expected = frozen.score_batch(chunk);
            let resp = client
                .score(
                    &ScoreBatch {
                        sessions: chunk.to_vec(),
                    },
                    SubmitOptions::default(),
                )
                .expect("networked scoring succeeds");
            assert_eq!(resp.scores.len(), chunk.len());
            for ((session, want), got) in chunk.iter().zip(&expected).zip(&resp.scores) {
                assert_eq!(want.len(), got.len());
                for (i, (a, b)) in want.iter().zip(got).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "model {} seed {seed} batch {batch} session {} item {i}: \
                         in-process {a} != networked {b}",
                        frozen.name(),
                        session.id,
                    );
                }
            }
        }
    }
    server.shutdown();
}

#[test]
fn embsr_networked_scores_are_bitwise_equal() {
    for seed in SEEDS {
        let mut cfg = EmbsrConfig::full(NUM_ITEMS, NUM_OPS, DIM);
        cfg.seed = seed;
        let factory_cfg = cfg.clone();
        assert_network_equivalence(
            Embsr::new(cfg),
            move || Embsr::new(factory_cfg.clone()),
            seed,
        );
    }
}

#[test]
fn gru4rec_networked_scores_are_bitwise_equal() {
    for seed in SEEDS {
        assert_network_equivalence(
            Gru4Rec::new(NUM_ITEMS, DIM, seed),
            move || Gru4Rec::new(NUM_ITEMS, DIM, seed),
            seed,
        );
    }
}

#[test]
fn narm_networked_scores_are_bitwise_equal() {
    for seed in SEEDS {
        assert_network_equivalence(
            Narm::new(NUM_ITEMS, DIM, 0.25, seed),
            move || Narm::new(NUM_ITEMS, DIM, 0.25, seed),
            seed,
        );
    }
}

#[test]
fn reduced_precision_snapshots_cross_the_wire() {
    // The deployment path for quantized models: the trainer side freezes at
    // reduced precision and serializes (`snapshot_bytes`, the EMBSRSNP wire
    // format at ~half the f32 bytes); the server side rebuilds a frozen
    // model from the bytes and serves it behind TCP replicas. Because
    // quantization happens once at freeze, every score served over the
    // network must be bitwise identical to the trainer-side master.
    for precision in [Precision::F16, Precision::Bf16] {
        let max_len = TrainConfig::fast().max_session_len;
        let mut cfg = EmbsrConfig::full(NUM_ITEMS, NUM_OPS, DIM);
        cfg.seed = 42;
        let master =
            FrozenModel::freeze_with_precision(Embsr::new(cfg.clone()), max_len, precision);
        let bytes = master.snapshot_bytes();
        cfg.seed = 7; // the server's fresh init must be overwritten
        let factory_cfg = cfg.clone();
        let server_frozen =
            FrozenModel::from_snapshot_bytes(Embsr::new(cfg), &bytes).expect("snapshot decodes");
        assert_eq!(server_frozen.precision(), precision);
        assert_eq!(server_frozen.max_session_len(), max_len);
        let server = Server::start(
            &server_frozen,
            move || Embsr::new(factory_cfg.clone()),
            ServerConfig {
                replicas: 2,
                ..ServerConfig::default()
            },
        )
        .expect("server starts");
        let mut client = NetClient::connect(server.addr()).expect("connect");
        let sessions = test_sessions(42);
        for chunk in sessions.chunks(5).take(4) {
            let expected = master.score_batch(chunk);
            let resp = client
                .score(
                    &ScoreBatch {
                        sessions: chunk.to_vec(),
                    },
                    SubmitOptions::default(),
                )
                .expect("networked scoring succeeds");
            for ((session, want), got) in chunk.iter().zip(&expected).zip(&resp.scores) {
                assert_eq!(want.len(), got.len());
                for (i, (a, b)) in want.iter().zip(got).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{precision:?} session {} item {i}: master {a} != networked {b}",
                        session.id,
                    );
                }
            }
        }
        server.shutdown();
    }
}

#[test]
fn networked_top_k_matches_in_process_selection() {
    let mut cfg = EmbsrConfig::full(NUM_ITEMS, NUM_OPS, DIM);
    cfg.seed = 42;
    let max_len = TrainConfig::fast().max_session_len;
    let frozen = FrozenModel::freeze(Embsr::new(cfg.clone()), max_len);
    let factory_cfg = cfg;
    let server = Server::start(
        &frozen,
        move || Embsr::new(factory_cfg.clone()),
        ServerConfig {
            replicas: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let mut client = NetClient::connect(server.addr()).expect("connect");
    let sessions = test_sessions(42);
    for k in [1usize, 5, 10] {
        let chunk = &sessions[..7];
        let resp = client
            .top_k(
                &TopK {
                    sessions: chunk.to_vec(),
                    k,
                },
                SubmitOptions::default(),
            )
            .expect("networked top-k succeeds");
        let rows = frozen.score_batch(chunk);
        for (row, got) in rows.iter().zip(&resp.items) {
            let want = top_k_of_row(row, k);
            assert_eq!(want.len(), got.len(), "k={k}");
            for (w, g) in want.iter().zip(got) {
                assert_eq!(w.item, g.item, "k={k}: item order");
                assert_eq!(
                    w.score.to_bits(),
                    g.score.to_bits(),
                    "k={k}: score bits for item {}",
                    w.item
                );
            }
        }
    }
    server.shutdown();
}
