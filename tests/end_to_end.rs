//! End-to-end integration: dataset generation → preprocessing → EMBSR
//! training → evaluation, across crate boundaries.

use embsr_core::{Embsr, EmbsrConfig};
use embsr_datasets::{build_dataset, DatasetPreset, SyntheticConfig};
use embsr_eval::evaluate;
use embsr_train::{NeuralRecommender, Recommender, TrainConfig};

fn tiny_dataset() -> embsr_datasets::Dataset {
    let mut cfg = SyntheticConfig::tiny(DatasetPreset::JdAppliances);
    cfg.num_sessions = 300;
    build_dataset(&cfg)
}

fn fast_config() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 8e-3,
        val_fraction: 0.3,
        ..TrainConfig::default()
    }
}

#[test]
fn embsr_trains_and_evaluates_end_to_end() {
    let data = tiny_dataset();
    let mut rec = NeuralRecommender::new(
        Embsr::new(EmbsrConfig::full(data.num_items, data.num_ops, 12)),
        fast_config(),
    );
    rec.fit(&data.train, &data.val);
    let report = rec.report.as_ref().expect("report present");
    assert!(!report.epochs.is_empty());
    assert!(report.final_train_loss().is_finite());

    let eval = evaluate(&rec, &data.test, &[5, 10, 20]);
    // metric sanity
    for (h, m) in eval.hit.iter().zip(&eval.mrr) {
        assert!((0.0..=100.0).contains(h));
        assert!(*m <= *h + 1e-9);
    }
    // monotone in K
    assert!(eval.hit_at(10) >= eval.hit_at(5));
    assert!(eval.hit_at(20) >= eval.hit_at(10));
    // learned something: beat the uniform-random baseline by a wide margin
    let random_h20 = 100.0 * 20.0 / data.num_items as f64;
    assert!(
        eval.hit_at(20) > random_h20 * 1.8,
        "H@20 {:.2} vs random {:.2}",
        eval.hit_at(20),
        random_h20
    );
}

#[test]
fn training_loss_decreases() {
    let data = tiny_dataset();
    let mut rec = NeuralRecommender::new(
        Embsr::new(EmbsrConfig::full(data.num_items, data.num_ops, 12)),
        TrainConfig {
            epochs: 4,
            patience: None,
            ..fast_config()
        },
    );
    rec.fit(&data.train, &data.val);
    let epochs = &rec.report.as_ref().unwrap().epochs;
    let first = epochs.first().unwrap().train_loss;
    let last = epochs.last().unwrap().train_loss;
    assert!(last < first, "loss did not decrease: {first} -> {last}");
}

#[test]
fn identical_seeds_reproduce_identical_metrics() {
    let data = tiny_dataset();
    let run = || {
        let mut rec = NeuralRecommender::new(
            Embsr::new(EmbsrConfig::full(data.num_items, data.num_ops, 12)),
            fast_config(),
        );
        rec.fit(&data.train, &data.val);
        evaluate(&rec, &data.test, &[10])
    };
    let a = run();
    let b = run();
    assert_eq!(a.ranks, b.ranks, "training must be bit-reproducible");
}

#[test]
fn different_seeds_give_different_models() {
    let data = tiny_dataset();
    let run = |seed: u64| {
        let mut cfg = EmbsrConfig::full(data.num_items, data.num_ops, 12);
        cfg.seed = seed;
        let mut rec = NeuralRecommender::new(Embsr::new(cfg), fast_config());
        rec.fit(&data.train, &data.val);
        evaluate(&rec, &data.test, &[10]).ranks
    };
    assert_ne!(run(1), run(2));
}
