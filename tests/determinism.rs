//! Reproducibility guarantees across the whole pipeline: identical seeds
//! must give bit-identical datasets, fits, and evaluations for every model
//! family.

use embsr_baselines::{build_baseline, BaselineKind};
use embsr_datasets::{build_dataset, DatasetPreset, SyntheticConfig};
use embsr_eval::{evaluate, ResultsTable};
use embsr_train::TrainConfig;

fn dataset() -> embsr_datasets::Dataset {
    let mut cfg = SyntheticConfig::tiny(DatasetPreset::JdComputers);
    cfg.num_sessions = 200;
    build_dataset(&cfg)
}

#[test]
fn nonneural_baselines_are_deterministic() {
    let data = dataset();
    for kind in [
        BaselineKind::SPop,
        BaselineKind::Sknn,
        BaselineKind::Stan,
        BaselineKind::Markov,
        BaselineKind::ItemKnn,
    ] {
        let run = || {
            let mut rec =
                build_baseline(kind, data.num_items, data.num_ops, 8, 1, &TrainConfig::fast());
            rec.fit(&data.train, &data.val);
            evaluate(rec.as_ref(), &data.test, &[10]).ranks
        };
        assert_eq!(run(), run(), "{} not deterministic", kind.name());
    }
}

#[test]
fn neural_baseline_fit_is_deterministic() {
    let data = dataset();
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::default()
    };
    let run = || {
        let mut rec =
            build_baseline(BaselineKind::Fpmc, data.num_items, data.num_ops, 8, 3, &cfg);
        rec.fit(&data.train, &data.val);
        evaluate(rec.as_ref(), &data.test, &[10]).ranks
    };
    assert_eq!(run(), run());
}

#[test]
fn results_table_markdown_roundtrip() {
    let data = dataset();
    let cfg = TrainConfig::fast();
    let mut evals = Vec::new();
    for kind in [BaselineKind::SPop, BaselineKind::Markov] {
        let mut rec = build_baseline(kind, data.num_items, data.num_ops, 8, 1, &cfg);
        rec.fit(&data.train, &data.val);
        evals.push(evaluate(rec.as_ref(), &data.test, &[5, 10]));
    }
    let table = ResultsTable::new("determinism-check", &[5, 10], evals);
    let md = table.to_markdown();
    assert!(md.contains("S-POP") && md.contains("Markov"));
    let csv = table.to_csv();
    // header + 4 metrics × 2 models
    assert_eq!(csv.lines().count(), 1 + 4 * 2);
}
