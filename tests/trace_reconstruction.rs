//! Trace-tree reconstruction invariants for the serving engine.
//!
//! Every traced engine request must reassemble offline — from nothing but
//! the emitted JSONL records — into a span tree with exactly one root, no
//! orphan spans, unique span ids and monotone timestamps, and the traced
//! phases (queue wait, batch assembly, scoring, top-k selection) must
//! account for the request's end-to-end latency (within 5% for an isolated
//! single-session request — the acceptance bound of the tracing layer).

use std::sync::{Arc, Mutex, MutexGuard};

use embsr_core::{Embsr, EmbsrConfig};
use embsr_obs::trace::{self, SpanRecord, TraceTree};
use embsr_obs::MemorySink;
use embsr_serve::{serve, EngineConfig, FrozenModel, ScoreBatch, TopK};
use embsr_sessions::{MicroBehavior, Session};
use embsr_tensor::{uniform_init, Rng, Tensor};
use embsr_train::SessionModel;

/// Serializes tests that mutate the global dispatcher and trace switch.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Minimal deterministic model: logits are the mean of the weight rows of
/// the session's items (mirrors the engine's own test model, which is not
/// visible to integration tests).
struct ToyModel {
    weight: Tensor,
    num_items: usize,
}

impl ToyModel {
    fn new(num_items: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        ToyModel {
            weight: uniform_init(&[num_items, num_items], &mut rng),
            num_items,
        }
    }
}

impl SessionModel for ToyModel {
    fn name(&self) -> &str {
        "Toy"
    }
    fn num_items(&self) -> usize {
        self.num_items
    }
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone()]
    }
    fn logits(&self, session: &Session, _training: bool, _rng: &mut Rng) -> Tensor {
        let idx: Vec<usize> = session.events.iter().map(|e| e.item as usize).collect();
        self.weight.gather_rows(&idx).mean_rows()
    }
}

fn sess(id: u64, items: &[u32]) -> Session {
    Session {
        id,
        events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
    }
}

/// Runs `f` against a traced engine and returns the validated records.
fn with_traced_engine<M: SessionModel, R>(
    frozen: &FrozenModel<M>,
    make_model: impl Fn() -> M + Sync,
    workers: usize,
    f: impl FnOnce(&embsr_serve::Client<'_>) -> R,
) -> (Vec<SpanRecord>, R) {
    let mem = MemorySink::new();
    embsr_obs::add_sink(Arc::new(mem.clone()));
    trace::set_enabled(true);
    let out = serve(
        frozen,
        make_model,
        EngineConfig {
            workers,
            max_batch: 16,
            flush_deadline_us: 200,
            ..EngineConfig::default()
        },
        f,
    );
    trace::set_enabled(false);
    embsr_obs::clear_sinks();
    let mut records = Vec::new();
    for line in mem.lines() {
        let parsed = trace::validate_line(&line).expect("every emitted line obeys the schema");
        if let Some(r) = parsed {
            records.push(r);
        }
    }
    (records, out)
}

fn request_trees(records: &[SpanRecord]) -> Vec<TraceTree> {
    trace::build_trees(records)
        .expect("emitted records satisfy the tree invariants")
        .into_iter()
        .filter(|t| t.root().name.ends_with("_request"))
        .collect()
}

#[test]
fn single_request_reconstructs_with_all_phases() {
    let _g = guard();
    let frozen = FrozenModel::freeze(ToyModel::new(24, 7), 16);
    let (records, _) = with_traced_engine(&frozen, || ToyModel::new(24, 7), 1, |client| {
        client.top_k(TopK {
            sessions: vec![sess(0, &[1, 5, 9])],
            k: 5,
        })
    });
    let trees = request_trees(&records);
    assert_eq!(trees.len(), 1, "one request, one tree");
    let tree = &trees[0];
    assert_eq!(tree.root().name, "top_k_request");
    assert_eq!(tree.root().parent, 0);
    // All four phases present, each exactly once, each a child of the root.
    for phase in ["queue_wait", "batch_assembly", "scoring", "top_k"] {
        let spans: Vec<&SpanRecord> = tree.spans.iter().filter(|s| s.name == phase).collect();
        assert_eq!(spans.len(), 1, "phase {phase} emitted once");
        assert_eq!(spans[0].parent, tree.root().span, "phase {phase} hangs off the root");
    }
    // The worker-side phases tile the enqueue→scored interval contiguously.
    let by_name = |n: &str| tree.spans.iter().find(|s| s.name == n).expect("present");
    assert_eq!(by_name("queue_wait").end_us, by_name("batch_assembly").start_us);
    assert_eq!(by_name("batch_assembly").end_us, by_name("scoring").start_us);
}

#[test]
fn phase_durations_account_for_request_latency_within_5_percent() {
    let _g = guard();
    // A full EMBSR model sized so scoring dominates the timeline: the
    // untraced slack (channel hand-offs) must be <5% of the request.
    let mut cfg = EmbsrConfig::full(2048, 4, 32);
    cfg.seed = 11;
    let frozen = FrozenModel::freeze(Embsr::new(cfg.clone()), 16);
    let session = sess(0, &[3, 99, 512, 7, 1024]);
    let (records, _) = with_traced_engine(&frozen, || Embsr::new(cfg.clone()), 1, |client| {
        // Best-of-N isolated requests: any one attempt can be preempted by
        // the OS scheduler; the bound holds for the cleanest request.
        for _ in 0..8 {
            client.top_k(TopK {
                sessions: vec![session.clone()],
                k: 10,
            });
        }
    });
    let trees = request_trees(&records);
    assert_eq!(trees.len(), 8);
    let best_err = trees
        .iter()
        .map(|t| {
            let total = t.duration_us().max(1) as f64;
            let phases: u64 = ["queue_wait", "batch_assembly", "scoring", "top_k"]
                .iter()
                .map(|p| t.total_us(p))
                .sum();
            (total - phases as f64).abs() / total
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_err <= 0.05,
        "phase durations cover only {:.1}% of the best request's latency",
        (1.0 - best_err) * 100.0
    );
}

#[test]
fn concurrent_load_preserves_tree_invariants() {
    let _g = guard();
    let frozen = FrozenModel::freeze(ToyModel::new(32, 3), 16);
    let n_threads = 4usize;
    let per_thread = 6usize;
    let (records, _) = with_traced_engine(&frozen, || ToyModel::new(32, 3), 2, |client| {
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let client = &client;
                scope.spawn(move || {
                    for r in 0..per_thread {
                        let s = sess(
                            (t * per_thread + r) as u64,
                            &[(t as u32) % 32, (r as u32) % 32, 17],
                        );
                        if r % 2 == 0 {
                            client.score(ScoreBatch {
                                sessions: vec![s],
                            });
                        } else {
                            client.top_k(TopK {
                                sessions: vec![s],
                                k: 3,
                            });
                        }
                    }
                });
            }
        });
    });
    // build_trees enforces the invariants (unique span ids, exactly one
    // root per trace, no orphans, monotone + nested timestamps) and fails
    // the test through request_trees' expect if any are violated.
    let trees = request_trees(&records);
    assert_eq!(trees.len(), n_threads * per_thread, "one tree per request");
    for tree in &trees {
        // Worker phases cover enqueue→scored for every request, even when
        // several requests share one engine batch.
        for phase in ["queue_wait", "batch_assembly", "scoring"] {
            assert_eq!(
                tree.spans.iter().filter(|s| s.name == phase).count(),
                1,
                "request {} phase {phase}",
                tree.trace
            );
        }
        // Trace ids are process-global: span ids never repeat across trees.
    }
    let mut all_ids: Vec<u64> = records.iter().map(|s| s.span).collect();
    all_ids.sort_unstable();
    all_ids.dedup();
    assert_eq!(all_ids.len(), records.len(), "span ids globally unique");
}

#[test]
fn disabled_tracing_emits_nothing() {
    let _g = guard();
    let frozen = FrozenModel::freeze(ToyModel::new(12, 5), 16);
    let mem = MemorySink::new();
    embsr_obs::add_sink(Arc::new(mem.clone()));
    trace::set_enabled(false);
    serve(
        &frozen,
        || ToyModel::new(12, 5),
        EngineConfig {
            workers: 1,
            max_batch: 8,
            flush_deadline_us: 200,
            ..EngineConfig::default()
        },
        |client| {
            client.score(ScoreBatch {
                sessions: vec![sess(0, &[1, 2])],
            });
        },
    );
    embsr_obs::clear_sinks();
    let records: Vec<SpanRecord> = mem
        .lines()
        .iter()
        .filter_map(|l| trace::validate_line(l).expect("legal lines"))
        .collect();
    assert!(records.is_empty(), "tracing off must emit no span records");
}
