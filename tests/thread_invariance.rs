//! The parallel trainer's headline guarantee: at a fixed seed, the final
//! parameters, per-epoch losses, and evaluation metrics of an EMBSR fit are
//! **bitwise identical for any `train_threads`**.
//!
//! Thread counts come from `EMBSR_INVARIANCE_THREADS` (comma-separated,
//! default `1,2,4`), so CI can pin specific counts without recompiling.

use embsr_core::{Embsr, EmbsrConfig};
use embsr_datasets::{build_dataset, DatasetPreset, SyntheticConfig};
use embsr_eval::evaluate;
use embsr_train::{
    load_train_state, save_train_state, NeuralRecommender, ParallelTrainer, TrainConfig,
};

fn tiny_dataset() -> embsr_datasets::Dataset {
    let mut cfg = SyntheticConfig::tiny(DatasetPreset::JdComputers);
    cfg.num_sessions = 180;
    build_dataset(&cfg)
}

fn train_config(threads: usize) -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 16,
        lr: 8e-3,
        patience: None,
        val_fraction: 0.3,
        train_threads: threads,
        grad_shards: 4,
        ..TrainConfig::default()
    }
}

fn model_config(data: &embsr_datasets::Dataset) -> EmbsrConfig {
    EmbsrConfig::full(data.num_items, data.num_ops, 8)
}

/// Everything the invariance claim covers, flattened to exact bits.
struct RunFingerprint {
    param_bits: Vec<u32>,
    loss_bits: Vec<(u32, u32)>,
    hit20: f64,
    mrr20: f64,
}

fn run_at(data: &embsr_datasets::Dataset, threads: usize) -> RunFingerprint {
    let mcfg = model_config(data);
    let model = Embsr::new(mcfg.clone());
    let tcfg = train_config(threads);
    let report = ParallelTrainer::new(tcfg.clone()).fit(
        &model,
        || Embsr::new(mcfg.clone()),
        &data.train,
        &data.val,
    );
    let param_bits = embsr_tensor::export_params(&embsr_train::SessionModel::parameters(&model))
        .iter()
        .map(|x| x.to_bits())
        .collect();
    let loss_bits = report
        .epochs
        .iter()
        .map(|e| (e.train_loss.to_bits(), e.val_loss.to_bits()))
        .collect();
    let rec = NeuralRecommender {
        model,
        config: tcfg,
        report: Some(report),
    };
    let eval = evaluate(&rec, &data.test, &[20]);
    RunFingerprint {
        param_bits,
        loss_bits,
        hit20: eval.hit_at(20),
        mrr20: eval.mrr_at(20),
    }
}

fn thread_counts() -> Vec<usize> {
    let spec = std::env::var("EMBSR_INVARIANCE_THREADS").unwrap_or_else(|_| "1,2,4".to_string());
    let counts: Vec<usize> = spec
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&t| t > 0)
        .collect();
    assert!(
        counts.len() >= 2,
        "EMBSR_INVARIANCE_THREADS must name at least two thread counts, got {spec:?}"
    );
    counts
}

#[test]
fn embsr_fit_is_bitwise_invariant_to_thread_count() {
    let data = tiny_dataset();
    let counts = thread_counts();
    let baseline = run_at(&data, counts[0]);
    assert!(!baseline.loss_bits.is_empty());
    for &threads in &counts[1..] {
        let run = run_at(&data, threads);
        assert_eq!(
            baseline.loss_bits, run.loss_bits,
            "epoch losses diverged between {} and {threads} threads",
            counts[0]
        );
        assert_eq!(
            baseline.param_bits, run.param_bits,
            "final parameters diverged between {} and {threads} threads",
            counts[0]
        );
        assert_eq!(
            baseline.hit20.to_bits(),
            run.hit20.to_bits(),
            "P@20 diverged between {} and {threads} threads",
            counts[0]
        );
        assert_eq!(
            baseline.mrr20.to_bits(),
            run.mrr20.to_bits(),
            "MRR@20 diverged between {} and {threads} threads",
            counts[0]
        );
    }
}

#[test]
fn checkpoint_resume_with_different_thread_count_matches_uninterrupted_run() {
    let data = tiny_dataset();
    let mcfg = model_config(&data);

    // Uninterrupted 2-epoch run at 1 thread.
    let full = Embsr::new(mcfg.clone());
    ParallelTrainer::new(train_config(1)).fit(
        &full,
        || Embsr::new(mcfg.clone()),
        &data.train,
        &data.val,
    );

    // 1 epoch at 2 threads → checkpoint to disk → resume at 4 threads.
    let part = Embsr::new(mcfg.clone());
    let half_cfg = TrainConfig {
        epochs: 1,
        ..train_config(2)
    };
    let (_, state) = ParallelTrainer::new(half_cfg).fit_from(
        &part,
        || Embsr::new(mcfg.clone()),
        &data.train,
        &data.val,
        None,
    );
    let mut path = std::env::temp_dir();
    path.push(format!("embsr_invariance_resume_{}.state", std::process::id()));
    save_train_state(&state, &path).expect("save train state");
    let restored = load_train_state(&path).expect("load train state");
    std::fs::remove_file(&path).ok();
    assert_eq!(restored.next_epoch, 1);

    let (report, _) = ParallelTrainer::new(train_config(4)).fit_from(
        &part,
        || Embsr::new(mcfg.clone()),
        &data.train,
        &data.val,
        Some(restored),
    );
    assert_eq!(report.epochs.len(), 2);

    let bits = |m: &Embsr| -> Vec<u32> {
        embsr_tensor::export_params(&embsr_train::SessionModel::parameters(m))
            .iter()
            .map(|x| x.to_bits())
            .collect()
    };
    assert_eq!(
        bits(&full),
        bits(&part),
        "resumed run (2→4 threads via disk) diverged from the uninterrupted 1-thread run"
    );
}
