//! Integration tests for the experiment harness: the machinery behind every
//! table/figure binary works end to end at smoke scale.

use embsr_baselines::BaselineKind;
use embsr_bench::{run_cell, run_table, EmbsrVariant, HarnessArgs, ModelSpec, Scale};
use embsr_datasets::{single_op_view, DatasetPreset};
use embsr_eval::{wilcoxon_signed_rank, ResultsTable};

fn args() -> HarnessArgs {
    HarnessArgs {
        scale: Scale::Tiny,
        threads: 4,
        dim: 8,
        epochs: 1,
        seed: 9,
        ..HarnessArgs::default()
    }
}

#[test]
fn run_table_fills_all_cells_in_parallel() {
    let a = args();
    let data = a.dataset(DatasetPreset::JdAppliances);
    let specs = [
        ModelSpec::Baseline(BaselineKind::SPop),
        ModelSpec::Baseline(BaselineKind::Sknn),
        ModelSpec::Embsr(EmbsrVariant::NoGnn),
    ];
    let table = run_table(&data, &specs, &[5, 10], &a);
    assert_eq!(table.evaluations.len(), 3);
    assert_eq!(table.rows().len(), 4); // H@5 H@10 M@5 M@10
    let rendered = table.render();
    assert!(rendered.contains("S-POP"));
    assert!(rendered.contains("EMBSR-NG"));
}

#[test]
fn improvement_column_matches_definition() {
    let imp = ResultsTable::improvement(&[10.0, 30.0, 33.0]);
    assert!((imp - 10.0).abs() < 1e-9);
}

#[test]
fn wilcoxon_pairs_per_session_ranks() {
    let a = args();
    let data = a.dataset(DatasetPreset::JdAppliances);
    let e1 = run_cell(ModelSpec::Baseline(BaselineKind::Sknn), &data, &[20], &a);
    let e2 = run_cell(ModelSpec::Baseline(BaselineKind::SPop), &data, &[20], &a);
    assert_eq!(e1.ranks.len(), e2.ranks.len(), "same test sessions");
    let w = wilcoxon_signed_rank(&e1.reciprocal_ranks_at(20), &e2.reciprocal_ranks_at(20));
    assert!(w.p_two_sided >= 0.0 && w.p_two_sided <= 1.0);
}

#[test]
fn single_op_view_keeps_targets_aligned_with_full_view() {
    let a = args();
    let data = a.dataset(DatasetPreset::JdComputers);
    let view = single_op_view(&data);
    assert!(!view.test.is_empty());
    assert!(view.test.len() <= data.test.len());
    // every surviving example's target exists in the full view
    let ids: std::collections::HashMap<u64, u32> =
        data.test.iter().map(|e| (e.session.id, e.target)).collect();
    for ex in &view.test {
        assert_eq!(ids[&ex.session.id], ex.target);
    }
}

#[test]
fn every_embsr_variant_runs_one_cell() {
    let a = args();
    let data = a.dataset(DatasetPreset::Trivago);
    for v in [
        EmbsrVariant::Full,
        EmbsrVariant::NoSelfAttention,
        EmbsrVariant::NoGnn,
        EmbsrVariant::NoFusion,
        EmbsrVariant::SgnnSelf,
        EmbsrVariant::SgnnSeqSelf,
        EmbsrVariant::RnnSelf,
        EmbsrVariant::SgnnAbsSelf,
        EmbsrVariant::SgnnDyadic,
        EmbsrVariant::FixedBeta(0.6),
    ] {
        let e = run_cell(ModelSpec::Embsr(v), &data, &[10], &a);
        assert!(e.hit_at(10).is_finite(), "{v:?}");
    }
}
