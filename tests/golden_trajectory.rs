//! Golden-trajectory regression test: a fixed-seed 2-epoch EMBSR fit on the
//! tiny synthetic dataset must reproduce the per-epoch losses recorded in
//! `tests/fixtures/golden_trajectory.json`.
//!
//! The fixture pins the *numerical recipe* — model init, data generation,
//! shuffling, dropout streams, gradient math, Adam — so an innocent-looking
//! refactor that silently changes training dynamics fails loudly here.
//!
//! Tolerances are deliberately explicit and loose-ish (1e-3 absolute): the
//! fixture should survive benign float reassociation (e.g. a changed
//! reduction order) while still catching real regressions, which move
//! losses by orders of magnitude more. To regenerate after an *intentional*
//! change, run with `EMBSR_PRINT_TRAJECTORY=1` and paste the printed JSON.

use embsr_core::{Embsr, EmbsrConfig};
use embsr_datasets::{build_dataset, DatasetPreset, SyntheticConfig};
use embsr_train::{TrainConfig, Trainer};

const TOLERANCE: f32 = 1e-3;
const FIXTURE: &str = include_str!("fixtures/golden_trajectory.json");

fn scenario() -> (embsr_datasets::Dataset, EmbsrConfig, TrainConfig) {
    let mut dcfg = SyntheticConfig::tiny(DatasetPreset::JdComputers);
    dcfg.num_sessions = 180;
    let data = build_dataset(&dcfg);
    let mcfg = EmbsrConfig::full(data.num_items, data.num_ops, 8);
    let tcfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        lr: 8e-3,
        patience: None,
        val_fraction: 0.3,
        ..TrainConfig::default()
    };
    (data, mcfg, tcfg)
}

#[test]
fn fixed_seed_trajectory_matches_golden_fixture() {
    let (data, mcfg, tcfg) = scenario();
    let model = Embsr::new(mcfg);
    let report = Trainer::new(tcfg).fit(&model, &data.train, &data.val);

    if std::env::var("EMBSR_PRINT_TRAJECTORY").is_ok() {
        let epochs: Vec<String> = report
            .epochs
            .iter()
            .map(|e| {
                format!(
                    "    {{ \"epoch\": {}, \"train_loss\": {:.6}, \"val_loss\": {:.6} }}",
                    e.epoch, e.train_loss, e.val_loss
                )
            })
            .collect();
        println!("{{\n  \"epochs\": [\n{}\n  ]\n}}", epochs.join(",\n"));
    }

    let fixture = embsr_obs::parse_json(FIXTURE).expect("fixture parses");
    let golden = fixture
        .get("epochs")
        .and_then(|e| e.as_array())
        .expect("fixture has an epochs array");
    assert_eq!(
        report.epochs.len(),
        golden.len(),
        "epoch count changed: expected {}, trained {}",
        golden.len(),
        report.epochs.len()
    );
    for (stats, expected) in report.epochs.iter().zip(golden) {
        let epoch = expected
            .get("epoch")
            .and_then(|v| v.as_f64())
            .expect("fixture epoch index") as usize;
        assert_eq!(stats.epoch, epoch);
        for (field, actual) in [
            ("train_loss", stats.train_loss),
            ("val_loss", stats.val_loss),
        ] {
            let want = expected
                .get(field)
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| panic!("fixture epoch {epoch} missing {field}"))
                as f32;
            assert!(
                (actual - want).abs() <= TOLERANCE,
                "epoch {epoch} {field}: trained {actual:.6}, fixture {want:.6} \
                 (tolerance {TOLERANCE}); regenerate with EMBSR_PRINT_TRAJECTORY=1 \
                 if this change is intentional"
            );
        }
    }
}
