//! The paper's central claim at its most distilled: when the next item is
//! determined by *micro-operations* and invisible in the item sequence,
//! EMBSR learns it and a macro-only model provably cannot.
//!
//! We build a deterministic corpus where sessions share the same item
//! prefix and only the operation performed on the last item selects the
//! target. SGNN-Self (no micro-behavior information) is blind to the signal
//! by construction; full EMBSR must separate the two populations.

use embsr_core::{Embsr, EmbsrConfig};
use embsr_eval::evaluate;
use embsr_sessions::{Example, Session};
use embsr_train::{NeuralRecommender, Recommender, TrainConfig};

/// op 1 on the last item => target A; op 2 => target B. Items otherwise
/// identical across sessions (with prefix variety for graph structure).
fn oracle_corpus(n: usize) -> (Vec<Example>, usize, usize) {
    let num_items = 12;
    let num_ops = 4;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let variant = i % 2;
        let filler = 4 + (i % 3) as u32; // items 4..=6 vary the prefix
        let (op, target) = if variant == 0 { (1u16, 8u32) } else { (2u16, 9u32) };
        out.push(Example {
            session: Session::from_pairs(
                i as u64,
                &[(filler, 0), (2, 0), (3, 0), (3, op)],
            ),
            target,
        });
    }
    (out, num_items, num_ops)
}

fn run(config: EmbsrConfig, train: &[Example]) -> f64 {
    let mut rec = NeuralRecommender::new(
        Embsr::new(config),
        TrainConfig {
            epochs: 12,
            batch_size: 16,
            lr: 0.01,
            patience: None,
            ..TrainConfig::default()
        },
    );
    rec.fit(train, train);
    evaluate(&rec, train, &[1]).hit_at(1)
}

#[test]
fn embsr_recovers_operation_signal_macro_model_cannot() {
    let (corpus, num_items, num_ops) = oracle_corpus(60);

    let embsr_h1 = run(EmbsrConfig::full(num_items, num_ops, 16), &corpus);
    let macro_h1 = run(EmbsrConfig::sgnn_self(num_items, num_ops, 16), &corpus);

    // The macro model sees identical inputs for both classes: it can reach
    // at most ~50% H@1 (always predicting one class).
    assert!(
        macro_h1 <= 60.0,
        "macro model cannot exceed chance on op-determined targets, got {macro_h1:.1}"
    );
    // EMBSR sees the operations and should almost solve the task.
    assert!(
        embsr_h1 >= 90.0,
        "EMBSR should recover the operation signal, got {embsr_h1:.1}"
    );
}

#[test]
fn dyadic_variant_also_recovers_signal() {
    let (corpus, num_items, num_ops) = oracle_corpus(60);
    let h1 = run(EmbsrConfig::sgnn_dyadic(num_items, num_ops, 16), &corpus);
    assert!(
        h1 >= 85.0,
        "SGNN-Dyadic should pick up the operation pair signal, got {h1:.1}"
    );
}
