//! Serving-path equivalence: the frozen, batched, tape-free scoring path
//! must be **bitwise identical** to the per-session taped
//! `Recommender::scores` path.
//!
//! Batched scoring computes `[B, d] · [d, |V|]` GEMMs whose rows are
//! independent sequential dot products — the same arithmetic, in the same
//! order, as the per-session `[1, d]` product — so equality here is exact
//! (`f32::to_bits`), not approximate. The batch sizes exercised are ragged
//! on purpose: 1, 3, 4, 5 and 32 straddle the packed-GEMM kernel tiles, so
//! both the partial-tile and full-tile code paths are held to equality.

use embsr_baselines::{Gru4Rec, Narm};
use embsr_core::{Embsr, EmbsrConfig};
use embsr_serve::FrozenModel;
use embsr_sessions::{MicroBehavior, Session};
use embsr_train::{NeuralRecommender, Recommender, SessionModel, TrainConfig};

const SEEDS: [u64; 3] = [11, 42, 1337];
const RAGGED_BATCHES: [usize; 5] = [1, 3, 4, 5, 32];

const NUM_ITEMS: usize = 40;
const NUM_OPS: usize = 6;
const DIM: usize = 16;

/// Variable-length sessions covering the ragged batch sizes with room to
/// spare; lengths vary so batches mix short and long prefixes.
fn test_sessions(seed: u64) -> Vec<Session> {
    (0..64u64)
        .map(|i| {
            let len = 1 + ((i * 7 + seed) % 9) as usize;
            Session {
                id: i,
                events: (0..len)
                    .map(|j| {
                        let item = ((i * 13 + j as u64 * 5 + seed) % NUM_ITEMS as u64) as u32;
                        let op = ((i + j as u64) % NUM_OPS as u64) as u16;
                        MicroBehavior::new(item, op)
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Asserts the frozen batched path reproduces the per-session path bit for
/// bit, across every ragged batch size.
fn assert_equivalence<M: SessionModel>(model: M, reference: M, seed: u64) {
    let max_len = TrainConfig::fast().max_session_len;
    let frozen = FrozenModel::freeze(model, max_len);
    let rec = NeuralRecommender::new(reference, TrainConfig::fast());
    let sessions = test_sessions(seed);
    for &batch in &RAGGED_BATCHES {
        for chunk in sessions.chunks(batch) {
            let batched = frozen.score_batch(chunk);
            assert_eq!(batched.len(), chunk.len());
            for (session, row) in chunk.iter().zip(&batched) {
                let single = rec.scores(session);
                assert_eq!(row.len(), single.len());
                for (i, (a, b)) in row.iter().zip(&single).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "model {} seed {seed} batch {batch} session {} item {i}: \
                         batched {a} != per-session {b}",
                        frozen.name(),
                        session.id,
                    );
                }
            }
        }
    }
}

#[test]
fn embsr_frozen_scores_are_bitwise_equal() {
    for seed in SEEDS {
        let mut cfg = EmbsrConfig::full(NUM_ITEMS, NUM_OPS, DIM);
        cfg.seed = seed;
        assert_equivalence(Embsr::new(cfg.clone()), Embsr::new(cfg), seed);
    }
}

#[test]
fn gru4rec_frozen_scores_are_bitwise_equal() {
    for seed in SEEDS {
        assert_equivalence(
            Gru4Rec::new(NUM_ITEMS, DIM, seed),
            Gru4Rec::new(NUM_ITEMS, DIM, seed),
            seed,
        );
    }
}

#[test]
fn narm_frozen_scores_are_bitwise_equal() {
    for seed in SEEDS {
        assert_equivalence(
            Narm::new(NUM_ITEMS, DIM, 0.25, seed),
            Narm::new(NUM_ITEMS, DIM, 0.25, seed),
            seed,
        );
    }
}

#[test]
fn snapshot_replicas_score_identically() {
    // The engine's worker replicas are built this way: fresh model +
    // imported snapshot. They must score exactly like the original.
    let mut cfg = EmbsrConfig::full(NUM_ITEMS, NUM_OPS, DIM);
    cfg.seed = 42;
    let frozen = FrozenModel::freeze(Embsr::new(cfg.clone()), 40);
    cfg.seed = 7; // different init: the snapshot must overwrite it
    let replica = FrozenModel::from_snapshot(Embsr::new(cfg), frozen.snapshot(), 40);
    let sessions = test_sessions(42);
    let a = frozen.score_batch(&sessions[..8]);
    let b = replica.score_batch(&sessions[..8]);
    for (ra, rb) in a.iter().zip(&b) {
        for (x, y) in ra.iter().zip(rb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn steady_state_batches_allocate_nothing() {
    // Inference-mode scoring recycles activations through the tensor buffer
    // pool: after a warm-up batch has populated the pool's free lists, a
    // same-shape batch must be served entirely from recycled buffers.
    let mut cfg = EmbsrConfig::full(NUM_ITEMS, NUM_OPS, DIM);
    cfg.seed = 11;
    let frozen = FrozenModel::freeze(Embsr::new(cfg), 40);
    let sessions = &test_sessions(11)[..8];
    let _ = frozen.score_batch(sessions); // warm-up populates the pool
    embsr_tensor::reset_pool_stats();
    let _ = frozen.score_batch(sessions);
    let stats = embsr_tensor::pool_stats();
    assert_eq!(
        stats.misses, 0,
        "steady-state batch fell through to fresh allocations: {stats:?}"
    );
    assert!(stats.hits > 0, "scoring should exercise the pool");
}
