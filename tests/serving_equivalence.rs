//! Serving-path equivalence, tiered by kernel dispatch and snapshot
//! precision (DESIGN.md §11):
//!
//! * **Within any tier**, batched scoring must be **bitwise identical**
//!   (`f32::to_bits`) to per-session scoring at the same tier: GEMM rows
//!   are independent reductions and the fused softmax/normalize kernels
//!   process rows independently, so batching changes throughput, never
//!   scores. The batch sizes exercised are ragged on purpose: 1, 3, 4, 5
//!   and 32 straddle both GEMM tiles (packed NR=8, vectorized NR=32), so
//!   partial- and full-tile code paths are held to equality.
//! * The **packed tier** (`KernelTier::Packed`) stays bitwise identical to
//!   the per-session taped `Recommender::scores` path — the historical
//!   contract, still available by `set_tier` for audit runs.
//! * The **vectorized tier** (`KernelTier::Simd`, the serving default) and
//!   the **reduced-precision snapshots** (f16/bf16) relax to an
//!   epsilon-gated score equivalence plus **exact Hit@20 / MRR@20 metric
//!   identity** against the f32 scalar-reference taped path running the
//!   deployed weights: lane-split reductions may move a logit by a few
//!   ULPs, but recommendations must not move at all. Quantization rounds
//!   the weights exactly once, at freeze — so the deployed weights for a
//!   reduced-precision snapshot *are* the quantized values, the taped
//!   reference runs those same values (`import_params` from the snapshot),
//!   and the quantization loss itself is gated separately with a
//!   precision-scaled epsilon against the pre-quantization f32 weights
//!   (rank identity against pre-quantization weights is not a meaningful
//!   contract: adjacent logits of any model can sit closer than a bf16
//!   step, so some rank flip is unavoidable and the right gate for the
//!   rounding is magnitude, not order).

use embsr_baselines::{Gru4Rec, Narm};
use embsr_core::{Embsr, EmbsrConfig};
use embsr_eval::{hit_at_k, rank_of_target, reciprocal_rank_at_k};
use embsr_serve::{FrozenModel, KernelTier, Precision, ReprCache};
use embsr_sessions::{MicroBehavior, Session};
use embsr_train::{NeuralRecommender, Recommender, SessionModel, TrainConfig};

const SEEDS: [u64; 3] = [11, 42, 1337];
const RAGGED_BATCHES: [usize; 5] = [1, 3, 4, 5, 32];

const NUM_ITEMS: usize = 40;
const NUM_OPS: usize = 6;
const DIM: usize = 16;

/// Variable-length sessions covering the ragged batch sizes with room to
/// spare; lengths vary so batches mix short and long prefixes.
fn test_sessions(seed: u64) -> Vec<Session> {
    (0..64u64)
        .map(|i| {
            let len = 1 + ((i * 7 + seed) % 9) as usize;
            Session {
                id: i,
                events: (0..len)
                    .map(|j| {
                        let item = ((i * 13 + j as u64 * 5 + seed) % NUM_ITEMS as u64) as u32;
                        let op = ((i + j as u64) % NUM_OPS as u64) as u16;
                        MicroBehavior::new(item, op)
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Asserts the packed-tier frozen batched path reproduces the per-session
/// taped path bit for bit, across every ragged batch size.
fn assert_packed_bitwise<M: SessionModel>(model: M, reference: M, seed: u64) {
    let max_len = TrainConfig::fast().max_session_len;
    let mut frozen = FrozenModel::freeze(model, max_len);
    frozen.set_tier(KernelTier::Packed);
    let rec = NeuralRecommender::new(reference, TrainConfig::fast());
    let sessions = test_sessions(seed);
    for &batch in &RAGGED_BATCHES {
        for chunk in sessions.chunks(batch) {
            let batched = frozen.score_batch(chunk);
            assert_eq!(batched.len(), chunk.len());
            for (session, row) in chunk.iter().zip(&batched) {
                let single = rec.scores(session);
                assert_eq!(row.len(), single.len());
                for (i, (a, b)) in row.iter().zip(&single).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "model {} seed {seed} batch {batch} session {} item {i}: \
                         batched {a} != per-session {b}",
                        frozen.name(),
                        session.id,
                    );
                }
            }
        }
    }
}

/// Asserts batched == single **bitwise at the frozen model's own tier**
/// (the serving default, vectorized), across every ragged batch size.
fn assert_batch_matches_single<M: SessionModel>(frozen: &FrozenModel<M>, seed: u64) {
    let sessions = test_sessions(seed);
    for &batch in &RAGGED_BATCHES {
        for chunk in sessions.chunks(batch) {
            let batched = frozen.score_batch(chunk);
            for (session, row) in chunk.iter().zip(&batched) {
                let single = frozen.score(session);
                assert_eq!(row.len(), single.len());
                for (i, (a, b)) in row.iter().zip(&single).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "model {} tier {:?} seed {seed} batch {batch} session {} item {i}: \
                         batched {a} != single {b}",
                        frozen.name(),
                        frozen.tier(),
                        session.id,
                    );
                }
            }
        }
    }
}

/// The relaxed serving contract: the taped scalar-reference path is loaded
/// with the frozen model's **deployed** weights (for full-precision freezes
/// that import is a no-op), then every served score must sit within `tol`
/// of the reference and the session-level Hit@20 / MRR@20 contributions
/// (target = the session's last item, pessimistic tie handling) must be
/// **exactly** equal — the serving stack may not move a recommendation.
fn assert_epsilon_and_metric_identity<M: SessionModel>(
    frozen: &FrozenModel<M>,
    reference: M,
    seed: u64,
    tol: f32,
    label: &str,
) {
    embsr_tensor::import_params(&reference.parameters(), frozen.snapshot());
    let rec = NeuralRecommender::new(reference, TrainConfig::fast());
    let sessions = test_sessions(seed);
    let mut hits = (0.0f64, 0.0f64);
    let mut mrrs = (0.0f64, 0.0f64);
    for chunk in sessions.chunks(8) {
        let batched = frozen.score_batch(chunk);
        for (session, row) in chunk.iter().zip(&batched) {
            let single = rec.scores(session);
            assert_eq!(row.len(), single.len());
            for (i, (a, b)) in row.iter().zip(&single).enumerate() {
                let bound = tol * b.abs().max(1.0);
                assert!(
                    (a - b).abs() <= bound,
                    "{label} model {} seed {seed} session {} item {i}: \
                     |{a} - {b}| > {bound}",
                    frozen.name(),
                    session.id,
                );
            }
            let target = session.events.last().map(|e| e.item as usize).unwrap_or(0);
            let (ra, rb) = (rank_of_target(row, target), rank_of_target(&single, target));
            assert_eq!(
                hit_at_k(ra, 20),
                hit_at_k(rb, 20),
                "{label} model {} seed {seed} session {}: Hit@20 moved (rank {ra} vs {rb})",
                frozen.name(),
                session.id,
            );
            assert_eq!(
                reciprocal_rank_at_k(ra, 20),
                reciprocal_rank_at_k(rb, 20),
                "{label} model {} seed {seed} session {}: MRR@20 moved (rank {ra} vs {rb})",
                frozen.name(),
                session.id,
            );
            hits.0 += hit_at_k(ra, 20);
            hits.1 += hit_at_k(rb, 20);
            mrrs.0 += reciprocal_rank_at_k(ra, 20);
            mrrs.1 += reciprocal_rank_at_k(rb, 20);
        }
    }
    // aggregate identity follows from per-session identity, but assert it
    // anyway — it is the number a paper table would print
    assert_eq!(hits.0.to_bits(), hits.1.to_bits(), "{label}: aggregate Hit@20");
    assert_eq!(mrrs.0.to_bits(), mrrs.1.to_bits(), "{label}: aggregate MRR@20");
}

fn embsr_pair(seed: u64) -> (Embsr, Embsr) {
    let mut cfg = EmbsrConfig::full(NUM_ITEMS, NUM_OPS, DIM);
    cfg.seed = seed;
    (Embsr::new(cfg.clone()), Embsr::new(cfg))
}

// ---------------------------------------------------------------------------
// Packed tier: bitwise with the taped path (the historical contract)
// ---------------------------------------------------------------------------

#[test]
fn embsr_packed_tier_is_bitwise_equal_to_taped() {
    for seed in SEEDS {
        let (a, b) = embsr_pair(seed);
        assert_packed_bitwise(a, b, seed);
    }
}

#[test]
fn gru4rec_packed_tier_is_bitwise_equal_to_taped() {
    for seed in SEEDS {
        assert_packed_bitwise(
            Gru4Rec::new(NUM_ITEMS, DIM, seed),
            Gru4Rec::new(NUM_ITEMS, DIM, seed),
            seed,
        );
    }
}

#[test]
fn narm_packed_tier_is_bitwise_equal_to_taped() {
    for seed in SEEDS {
        assert_packed_bitwise(
            Narm::new(NUM_ITEMS, DIM, 0.25, seed),
            Narm::new(NUM_ITEMS, DIM, 0.25, seed),
            seed,
        );
    }
}

// ---------------------------------------------------------------------------
// Vectorized tier (serving default): batched == single bitwise within tier,
// epsilon + exact metric identity against the taped f32 reference
// ---------------------------------------------------------------------------

#[test]
fn simd_tier_batches_match_single_scores_bitwise() {
    let max_len = TrainConfig::fast().max_session_len;
    for seed in SEEDS {
        let (model, _) = embsr_pair(seed);
        let frozen = FrozenModel::freeze(model, max_len);
        assert_eq!(frozen.tier(), KernelTier::Simd, "serving default tier");
        assert_batch_matches_single(&frozen, seed);
        assert_batch_matches_single(
            &FrozenModel::freeze(Gru4Rec::new(NUM_ITEMS, DIM, seed), max_len),
            seed,
        );
        assert_batch_matches_single(
            &FrozenModel::freeze(Narm::new(NUM_ITEMS, DIM, 0.25, seed), max_len),
            seed,
        );
    }
}

#[test]
fn embsr_simd_tier_keeps_epsilon_and_metrics() {
    let max_len = TrainConfig::fast().max_session_len;
    for seed in SEEDS {
        let (model, reference) = embsr_pair(seed);
        let frozen = FrozenModel::freeze(model, max_len);
        assert_epsilon_and_metric_identity(&frozen, reference, seed, 1e-4, "simd/f32");
    }
}

#[test]
fn gru4rec_simd_tier_keeps_epsilon_and_metrics() {
    let max_len = TrainConfig::fast().max_session_len;
    for seed in SEEDS {
        let frozen = FrozenModel::freeze(Gru4Rec::new(NUM_ITEMS, DIM, seed), max_len);
        assert_epsilon_and_metric_identity(
            &frozen,
            Gru4Rec::new(NUM_ITEMS, DIM, seed),
            seed,
            1e-4,
            "simd/f32",
        );
    }
}

#[test]
fn narm_simd_tier_keeps_epsilon_and_metrics() {
    let max_len = TrainConfig::fast().max_session_len;
    for seed in SEEDS {
        let frozen = FrozenModel::freeze(Narm::new(NUM_ITEMS, DIM, 0.25, seed), max_len);
        assert_epsilon_and_metric_identity(
            &frozen,
            Narm::new(NUM_ITEMS, DIM, 0.25, seed),
            seed,
            1e-4,
            "simd/f32",
        );
    }
}

// ---------------------------------------------------------------------------
// Reduced-precision snapshots: the serving stack keeps epsilon + exact
// metric identity on the deployed (quantized) weights, and the quantization
// loss itself stays within a precision-scaled epsilon of the original f32
// weights
// ---------------------------------------------------------------------------

/// Precision grids and their quantization-loss tolerances vs the original
/// f32 weights. bf16 keeps 8 significand bits (relative step 2⁻⁸), f16
/// keeps 11 (2⁻¹¹); the tolerances leave headroom for error accumulating
/// over the `d`-deep reductions and nonlinearities.
const PRECISION_GATES: [(Precision, f32); 2] = [(Precision::F16, 2e-2), (Precision::Bf16, 2e-1)];

/// Gates the quantization loss: frozen (quantized) scores must stay within
/// `tol` of the taped reference running the **original f32** weights.
fn assert_quantization_epsilon<M: SessionModel>(
    frozen: &FrozenModel<M>,
    original: M,
    seed: u64,
    tol: f32,
    label: &str,
) {
    let rec = NeuralRecommender::new(original, TrainConfig::fast());
    for chunk in test_sessions(seed).chunks(8) {
        let batched = frozen.score_batch(chunk);
        for (session, row) in chunk.iter().zip(&batched) {
            let single = rec.scores(session);
            for (i, (a, b)) in row.iter().zip(&single).enumerate() {
                let bound = tol * b.abs().max(1.0);
                assert!(
                    (a - b).abs() <= bound,
                    "{label} model {} seed {seed} session {} item {i}: \
                     quantization moved score |{a} - {b}| > {bound}",
                    frozen.name(),
                    session.id,
                );
            }
        }
    }
}

#[test]
fn embsr_reduced_precision_keeps_epsilon_and_metrics() {
    let max_len = TrainConfig::fast().max_session_len;
    for seed in SEEDS {
        for (precision, tol) in PRECISION_GATES {
            let (model, reference) = embsr_pair(seed);
            let frozen = FrozenModel::freeze_with_precision(model, max_len, precision);
            assert_epsilon_and_metric_identity(&frozen, reference, seed, 1e-4, precision.name());
            let (_, original) = embsr_pair(seed);
            assert_quantization_epsilon(&frozen, original, seed, tol, precision.name());
        }
    }
}

#[test]
fn gru4rec_reduced_precision_keeps_epsilon_and_metrics() {
    let max_len = TrainConfig::fast().max_session_len;
    for seed in SEEDS {
        for (precision, tol) in PRECISION_GATES {
            let frozen = FrozenModel::freeze_with_precision(
                Gru4Rec::new(NUM_ITEMS, DIM, seed),
                max_len,
                precision,
            );
            assert_epsilon_and_metric_identity(
                &frozen,
                Gru4Rec::new(NUM_ITEMS, DIM, seed),
                seed,
                1e-4,
                precision.name(),
            );
            assert_quantization_epsilon(
                &frozen,
                Gru4Rec::new(NUM_ITEMS, DIM, seed),
                seed,
                tol,
                precision.name(),
            );
        }
    }
}

#[test]
fn narm_reduced_precision_keeps_epsilon_and_metrics() {
    let max_len = TrainConfig::fast().max_session_len;
    for seed in SEEDS {
        for (precision, tol) in PRECISION_GATES {
            let frozen = FrozenModel::freeze_with_precision(
                Narm::new(NUM_ITEMS, DIM, 0.25, seed),
                max_len,
                precision,
            );
            assert_epsilon_and_metric_identity(
                &frozen,
                Narm::new(NUM_ITEMS, DIM, 0.25, seed),
                seed,
                1e-4,
                precision.name(),
            );
            assert_quantization_epsilon(
                &frozen,
                Narm::new(NUM_ITEMS, DIM, 0.25, seed),
                seed,
                tol,
                precision.name(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Session-repr cache: cached scoring is bitwise-identical to uncached, cold
// and warm, across every model with the repr seam
// ---------------------------------------------------------------------------

/// The cache contract at the frozen-model layer: `score_batch_cached` must
/// reproduce `score_batch` at `f32::to_bits` equality on a cold cache (all
/// misses → encoder runs, reprs inserted) AND on a warm one (hits skip the
/// encoder and replay stored reprs into the same logits GEMM) — and the
/// warm pass must actually hit, or the test is vacuous.
fn assert_cached_bitwise<M: SessionModel>(frozen: &FrozenModel<M>, seed: u64) {
    let cache = ReprCache::new(256);
    let sessions = test_sessions(seed);
    for pass in ["cold", "warm"] {
        for &batch in &RAGGED_BATCHES {
            for chunk in sessions.chunks(batch) {
                let uncached = frozen.score_batch(chunk);
                let cached = frozen.score_batch_cached(chunk, &cache, 1);
                assert_eq!(uncached.len(), cached.len());
                for (session, (u, c)) in chunk.iter().zip(uncached.iter().zip(&cached)) {
                    assert_eq!(u.len(), c.len());
                    for (i, (a, b)) in u.iter().zip(c).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "model {} seed {seed} {pass} batch {batch} session {} item {i}: \
                             uncached {a} != cached {b}",
                            frozen.name(),
                            session.id,
                        );
                    }
                }
            }
        }
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "warm pass must hit: {stats:?}");
    assert!(stats.insertions > 0, "cold pass must insert: {stats:?}");
    assert!(stats.entries > 0 && stats.bytes > 0, "cache holds state: {stats:?}");
}

#[test]
fn embsr_repr_cache_is_bitwise_equal_cold_and_warm() {
    let max_len = TrainConfig::fast().max_session_len;
    for seed in SEEDS {
        let (model, _) = embsr_pair(seed);
        assert_cached_bitwise(&FrozenModel::freeze(model, max_len), seed);
    }
}

#[test]
fn gru4rec_repr_cache_is_bitwise_equal_cold_and_warm() {
    let max_len = TrainConfig::fast().max_session_len;
    for seed in SEEDS {
        let frozen = FrozenModel::freeze(Gru4Rec::new(NUM_ITEMS, DIM, seed), max_len);
        assert_cached_bitwise(&frozen, seed);
    }
}

#[test]
fn narm_repr_cache_is_bitwise_equal_cold_and_warm() {
    let max_len = TrainConfig::fast().max_session_len;
    for seed in SEEDS {
        let frozen = FrozenModel::freeze(Narm::new(NUM_ITEMS, DIM, 0.25, seed), max_len);
        assert_cached_bitwise(&frozen, seed);
    }
}

#[test]
fn repr_cache_isolates_versions_and_packed_tier_stays_bitwise() {
    // Same sessions, two snapshot versions in one cache: neither pollutes
    // the other (the key includes the version), and the cached path holds
    // its bitwise contract on the audit (packed) tier too.
    let max_len = TrainConfig::fast().max_session_len;
    let (model_a, _) = embsr_pair(11);
    let (model_b, _) = embsr_pair(42);
    let mut frozen_a = FrozenModel::freeze(model_a, max_len);
    let mut frozen_b = FrozenModel::freeze(model_b, max_len);
    frozen_a.set_tier(KernelTier::Packed);
    frozen_b.set_tier(KernelTier::Packed);
    let cache = ReprCache::new(256);
    let sessions = &test_sessions(7)[..16];
    for _ in 0..2 {
        for (frozen, version) in [(&frozen_a, 1u64), (&frozen_b, 2u64)] {
            let uncached = frozen.score_batch(sessions);
            let cached = frozen.score_batch_cached(sessions, &cache, version);
            for (u, c) in uncached.iter().zip(&cached) {
                for (a, b) in u.iter().zip(c) {
                    assert_eq!(a.to_bits(), b.to_bits(), "version {version}");
                }
            }
        }
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "both versions warm: {stats:?}");
}

// ---------------------------------------------------------------------------
// Snapshot replication and pooling invariants
// ---------------------------------------------------------------------------

#[test]
fn snapshot_replicas_score_identically() {
    // The engine's worker replicas are built this way: fresh model +
    // imported snapshot. They must score exactly like the original.
    let mut cfg = EmbsrConfig::full(NUM_ITEMS, NUM_OPS, DIM);
    cfg.seed = 42;
    let frozen = FrozenModel::freeze(Embsr::new(cfg.clone()), 40);
    cfg.seed = 7; // different init: the snapshot must overwrite it
    let replica = FrozenModel::from_snapshot(Embsr::new(cfg), frozen.snapshot(), 40);
    let sessions = test_sessions(42);
    let a = frozen.score_batch(&sessions[..8]);
    let b = replica.score_batch(&sessions[..8]);
    for (ra, rb) in a.iter().zip(&b) {
        for (x, y) in ra.iter().zip(rb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn reduced_precision_replicas_score_identically() {
    // Quantization happens once, at freeze: a replica rebuilt from the
    // serialized reduced-precision snapshot scores bitwise like the master.
    for (precision, _) in PRECISION_GATES {
        let mut cfg = EmbsrConfig::full(NUM_ITEMS, NUM_OPS, DIM);
        cfg.seed = 42;
        let frozen = FrozenModel::freeze_with_precision(Embsr::new(cfg.clone()), 40, precision);
        cfg.seed = 7;
        let bytes = frozen.snapshot_bytes();
        let replica = FrozenModel::from_snapshot_bytes(Embsr::new(cfg), &bytes)
            .expect("snapshot bytes decode");
        assert_eq!(replica.precision(), precision);
        let sessions = test_sessions(42);
        let a = frozen.score_batch(&sessions[..8]);
        let b = replica.score_batch(&sessions[..8]);
        for (ra, rb) in a.iter().zip(&b) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits(), "{precision:?}");
            }
        }
    }
}

#[test]
fn reduced_precision_snapshots_are_half_the_size() {
    let mut cfg = EmbsrConfig::full(NUM_ITEMS, NUM_OPS, DIM);
    cfg.seed = 11;
    let full = FrozenModel::freeze(Embsr::new(cfg.clone()), 40).snapshot_bytes().len();
    for (precision, _) in PRECISION_GATES {
        let reduced = FrozenModel::freeze_with_precision(Embsr::new(cfg.clone()), 40, precision)
            .snapshot_bytes()
            .len();
        let ratio = full as f64 / reduced as f64;
        assert!(
            ratio > 1.9 && ratio < 2.1,
            "{precision:?}: {full} vs {reduced} bytes ({ratio:.2}×)"
        );
    }
}

#[test]
fn steady_state_batches_allocate_nothing() {
    // Inference-mode scoring recycles activations through the tensor buffer
    // pool: after a warm-up batch has populated the pool's free lists, a
    // same-shape batch must be served entirely from recycled buffers — on
    // the vectorized serving tier included.
    let mut cfg = EmbsrConfig::full(NUM_ITEMS, NUM_OPS, DIM);
    cfg.seed = 11;
    let frozen = FrozenModel::freeze(Embsr::new(cfg), 40);
    let sessions = &test_sessions(11)[..8];
    let _ = frozen.score_batch(sessions); // warm-up populates the pool
    embsr_tensor::reset_pool_stats();
    let _ = frozen.score_batch(sessions);
    let stats = embsr_tensor::pool_stats();
    assert_eq!(
        stats.misses, 0,
        "steady-state batch fell through to fresh allocations: {stats:?}"
    );
    assert!(stats.hits > 0, "scoring should exercise the pool");
}
