//! Checkpoint integration: a trained EMBSR model saved to disk and loaded
//! into a freshly constructed model must reproduce identical scores.

use embsr_core::{Embsr, EmbsrConfig};
use embsr_datasets::{build_dataset, DatasetPreset, SyntheticConfig};
use embsr_sessions::Session;
use embsr_train::{load_model, save_model, NeuralRecommender, Recommender, TrainConfig};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("embsr_it_ckpt_{name}_{}", std::process::id()));
    p
}

#[test]
fn trained_model_roundtrips_through_checkpoint() {
    let mut cfg = SyntheticConfig::tiny(DatasetPreset::JdAppliances);
    cfg.num_sessions = 200;
    let data = build_dataset(&cfg);

    let model_cfg = EmbsrConfig::full(data.num_items, data.num_ops, 12);
    let mut rec = NeuralRecommender::new(
        Embsr::new(model_cfg.clone()),
        TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        },
    );
    rec.fit(&data.train, &data.val);

    let probe = Session::from_pairs(1, &[(1, 0), (2, 1), (3, 2)]);
    let before = rec.scores(&probe);

    let path = tmp("roundtrip");
    save_model(&rec.model, &path).expect("save");

    // a fresh model with different seed => different weights…
    let mut fresh_cfg = model_cfg;
    fresh_cfg.seed = 12345;
    let fresh = NeuralRecommender::new(Embsr::new(fresh_cfg), TrainConfig::default());
    assert_ne!(fresh.scores(&probe), before, "fresh model should differ");

    // …until the checkpoint is loaded.
    load_model(&fresh.model, &path).expect("load");
    assert_eq!(fresh.scores(&probe), before, "checkpoint must restore scores");
    std::fs::remove_file(path).ok();
}

#[test]
fn checkpoint_rejects_differently_sized_model() {
    let model = Embsr::new(EmbsrConfig::full(10, 4, 8));
    let path = tmp("sizecheck");
    save_model(&model, &path).expect("save");

    let other = Embsr::new(EmbsrConfig::full(11, 4, 8)); // different vocab
    assert!(load_model(&other, &path).is_err());
    std::fs::remove_file(path).ok();
}
