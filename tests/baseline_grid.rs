//! Every baseline of Table III fits and scores on every dataset preset
//! without panicking, and returns well-formed evaluations.

use embsr_baselines::{build_baseline, BaselineKind};
use embsr_datasets::{build_dataset, DatasetPreset, SyntheticConfig};
use embsr_eval::evaluate;
use embsr_train::TrainConfig;

fn micro_config() -> TrainConfig {
    TrainConfig {
        epochs: 1,
        batch_size: 32,
        val_fraction: 0.2,
        ..TrainConfig::default()
    }
}

#[test]
fn all_baselines_run_on_jd_style_data() {
    let mut cfg = SyntheticConfig::tiny(DatasetPreset::JdAppliances);
    cfg.num_sessions = 200;
    let data = build_dataset(&cfg);
    for kind in BaselineKind::all() {
        let mut rec = build_baseline(kind, data.num_items, data.num_ops, 8, 5, &micro_config());
        rec.fit(&data.train, &data.val);
        let eval = evaluate(rec.as_ref(), &data.test, &[5, 20]);
        assert_eq!(eval.model, kind.name());
        assert!(eval.hit_at(20) >= eval.hit_at(5), "{}", kind.name());
        assert!(
            eval.ranks.iter().all(|&r| r >= 1 && r <= data.num_items),
            "{} produced out-of-range ranks",
            kind.name()
        );
    }
}

#[test]
fn all_baselines_run_on_trivago_style_data() {
    let mut cfg = SyntheticConfig::tiny(DatasetPreset::Trivago);
    cfg.num_sessions = 200;
    let data = build_dataset(&cfg);
    for kind in BaselineKind::all() {
        let mut rec = build_baseline(kind, data.num_items, data.num_ops, 8, 5, &micro_config());
        rec.fit(&data.train, &data.val);
        let eval = evaluate(rec.as_ref(), &data.test, &[10]);
        assert!(eval.hit_at(10) >= 0.0, "{}", kind.name());
    }
}

#[test]
fn spop_fails_when_targets_never_repeat() {
    // The paper's S-POP-on-Trivago observation, reproduced as a test: with a
    // near-zero repeat ratio S-POP's H@K collapses toward zero.
    let mut cfg = SyntheticConfig::tiny(DatasetPreset::Trivago);
    cfg.num_sessions = 400;
    cfg.repeat_ratio = 0.0;
    let data = build_dataset(&cfg);
    let mut spop = build_baseline(
        BaselineKind::SPop,
        data.num_items,
        data.num_ops,
        8,
        5,
        &micro_config(),
    );
    spop.fit(&data.train, &data.val);
    let eval = evaluate(spop.as_ref(), &data.test, &[5]);
    assert!(
        eval.hit_at(5) < 8.0,
        "S-POP should collapse without repeats, got H@5 = {:.2}",
        eval.hit_at(5)
    );
}

#[test]
fn sknn_beats_spop_on_no_repeat_data() {
    let mut cfg = SyntheticConfig::tiny(DatasetPreset::Trivago);
    cfg.num_sessions = 400;
    cfg.repeat_ratio = 0.0;
    let data = build_dataset(&cfg);
    let run = |kind: BaselineKind| {
        let mut rec = build_baseline(kind, data.num_items, data.num_ops, 8, 5, &micro_config());
        rec.fit(&data.train, &data.val);
        evaluate(rec.as_ref(), &data.test, &[20]).hit_at(20)
    };
    let sknn = run(BaselineKind::Sknn);
    let spop = run(BaselineKind::SPop);
    assert!(sknn > spop, "SKNN {sknn:.2} should beat S-POP {spop:.2}");
}
