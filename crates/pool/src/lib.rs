//! # embsr-pool
//!
//! The workspace's shared thread pool, promoted out of `embsr-eval` so the
//! experiment grid and the data-parallel trainer run on one worker
//! primitive.
//!
//! Models in this workspace are intentionally single-threaded (`Rc`-based
//! autograd), so parallelism lives at the *job* level: each job constructs,
//! trains and evaluates its own model (or model replica) entirely inside one
//! thread, returning only plain data. Two entry points cover both users:
//!
//! * [`run_parallel`] — a one-shot job list (the 13-model × 3-dataset
//!   experiment grid): results come back in original job order.
//! * [`run_with_workers`] — `N` long-lived workers plus a master closure on
//!   the calling thread (the data-parallel trainer's batch loop): the
//!   caller brings its own channel protocol, the pool brings lifecycle and
//!   panic handling.
//!
//! ## Panic semantics
//!
//! A panicking job (or worker) never poisons shared state or surfaces as a
//! confusing failure in an unrelated worker. The *first* panic payload is
//! captured, the remaining queue is drained (pending jobs are dropped
//! unexecuted), every worker is joined, and the original panic is re-raised
//! on the calling thread with its message intact. Masters can poll the
//! [`AbortSignal`] to notice a dead worker instead of blocking forever on a
//! channel that will never be written again.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// A captured panic payload, exactly as `catch_unwind` returns it.
type PanicPayload = Box<dyn Any + Send + 'static>;

/// Locks ignoring poisoning: panics are captured and re-propagated by the
/// pool itself, so a poisoned mutex carries no extra information here.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Cooperative abort flag shared between the pool and a master closure.
///
/// The pool sets it when any worker panics; a master blocked on results can
/// poll it (e.g. between `recv_timeout` attempts) and bail out instead of
/// waiting for a message that will never arrive.
pub struct AbortSignal {
    aborted: AtomicBool,
}

impl AbortSignal {
    fn new() -> Self {
        AbortSignal {
            aborted: AtomicBool::new(false),
        }
    }

    fn trigger(&self) {
        // ordering: SeqCst — the abort flag must totally order against the
        // panic-payload mutex and channel closes done around it; this fires
        // once per pool lifetime, so nothing weaker is worth reasoning out.
        self.aborted.store(true, Ordering::SeqCst);
    }

    /// True once any worker has panicked.
    pub fn is_aborted(&self) -> bool {
        // ordering: SeqCst — pairs with trigger's store; a master polling
        // this must not observe the flag after missing the panic payload.
        self.aborted.load(Ordering::SeqCst)
    }
}

/// Runs `threads` scoped worker threads alongside a master closure.
///
/// Every worker runs `worker(worker_id)` with ids `0..threads`; the master
/// runs on the calling thread, concurrently with the workers, and receives
/// the shared [`AbortSignal`]. The call returns when the master has returned
/// *and* every worker has exited (callers signal workers to stop by closing
/// their channels from the master closure).
///
/// # Panics
/// Re-raises the first worker panic (preferred — a master failure is
/// usually a downstream symptom of a dead worker), else a master panic.
pub fn run_with_workers<W, M, R>(threads: usize, worker: W, master: M) -> R
where
    W: Fn(usize) + Sync,
    M: FnOnce(&AbortSignal) -> R,
{
    let signal = AbortSignal::new();
    let first_panic: Mutex<Option<PanicPayload>> = Mutex::new(None);
    let mut master_out: Option<Result<R, PanicPayload>> = None;
    std::thread::scope(|scope| {
        for w in 0..threads.max(1) {
            let worker = &worker;
            let first_panic = &first_panic;
            let signal = &signal;
            scope.spawn(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| worker(w))) {
                    signal.trigger();
                    embsr_obs::warn!(target: "embsr_pool", "worker {w} panicked");
                    let mut slot = lock(first_panic);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            });
        }
        master_out = Some(catch_unwind(AssertUnwindSafe(|| master(&signal))));
    });
    if let Some(payload) = lock(&first_panic).take() {
        resume_unwind(payload);
    }
    match master_out {
        Some(Ok(r)) => r,
        Some(Err(payload)) => resume_unwind(payload),
        // The scope body always runs the master before the scope joins.
        None => unreachable!("master closure did not run"),
    }
}

/// Runs `jobs` on up to `threads` worker threads, returning results in the
/// original job order.
///
/// Each job is a `FnOnce` producing a `Send` result; jobs themselves must be
/// `Send` (capture only `Send` data — build non-`Send` models *inside* the
/// closure).
///
/// # Panics
/// If a job panics, the remaining queue is drained (pending jobs never
/// run), in-flight jobs on other workers finish, and the panicking job's
/// own payload is re-raised here.
pub fn run_parallel<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let queue: Mutex<Vec<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());

    run_with_workers(
        threads.max(1).min(n.max(1)),
        |_worker_id| loop {
            let job = lock(&queue).pop();
            let Some((idx, f)) = job else { break };
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(out) => lock(&results)[idx] = Some(out),
                Err(payload) => {
                    // Drain: jobs queued behind the failure never start, so
                    // the caller sees the original panic, not a cascade of
                    // "job completed" failures from unrelated workers.
                    lock(&queue).clear();
                    resume_unwind(payload);
                }
            }
        },
        |_signal| (),
    );

    let collected = match results.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    collected
        .into_iter()
        .map(|r| match r {
            Some(v) => v,
            // A missing result implies a panicked job, which re-raised above.
            None => unreachable!("job completed without a result"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;

    #[test]
    fn results_preserve_order() {
        let jobs: Vec<_> = (0..20).map(|i| move || i * i).collect();
        let out = run_parallel(jobs, 4);
        assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_works() {
        let jobs: Vec<_> = (0..5).map(|i| move || i + 1).collect();
        assert_eq!(run_parallel(jobs, 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let jobs: Vec<_> = (0..2).map(|i| move || i).collect();
        assert_eq!(run_parallel(jobs, 16), vec![0, 1]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let jobs: Vec<fn() -> usize> = Vec::new();
        assert!(run_parallel(jobs, 4).is_empty());
    }

    #[test]
    fn heavy_jobs_actually_parallelize() {
        // smoke test: no deadlock with contention
        let jobs: Vec<_> = (0..8)
            .map(|i| {
                move || {
                    let mut acc = 0u64;
                    for x in 0..200_000u64 {
                        acc = acc.wrapping_add(x ^ i);
                    }
                    acc
                }
            })
            .collect();
        let out = run_parallel(jobs, 4);
        assert_eq!(out.len(), 8);
    }

    /// Renders a captured panic payload the way the runtime would.
    fn payload_message(payload: &PanicPayload) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string payload>".to_string()
        }
    }

    #[test]
    fn panicking_job_reports_its_own_message() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom-42: the real failure")),
            Box::new(|| 3),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| run_parallel(jobs, 2)))
            .expect_err("must propagate the panic");
        let msg = payload_message(&err);
        assert!(msg.contains("boom-42"), "wrong panic surfaced: {msg}");
    }

    #[test]
    fn panic_drains_remaining_jobs() {
        static RAN_AFTER: AtomicUsize = AtomicUsize::new(0);
        // Single worker: deterministic order — the panic must prevent the
        // job queued behind it from ever starting.
        let jobs: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| panic!("first job fails")),
            Box::new(|| {
                RAN_AFTER.fetch_add(1, Ordering::SeqCst);
            }),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| run_parallel(jobs, 1)))
            .expect_err("must propagate the panic");
        assert!(payload_message(&err).contains("first job fails"));
        assert_eq!(RAN_AFTER.load(Ordering::SeqCst), 0, "queue was not drained");
    }

    #[test]
    fn first_of_two_panics_wins() {
        // One worker again for determinism: the first panic drains the queue,
        // so the second panicking job never runs and cannot race the slot.
        let jobs: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| panic!("original")),
            Box::new(|| panic!("should never run")),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| run_parallel(jobs, 1)))
            .expect_err("must propagate the panic");
        assert!(payload_message(&err).contains("original"));
    }

    #[test]
    fn workers_and_master_exchange_messages() {
        let (task_tx, task_rx) = channel::<u64>();
        let (result_tx, result_rx) = channel::<u64>();
        let task_rx = Mutex::new(Some(task_rx));
        let out = run_with_workers(
            1,
            |_w| {
                let rx = lock(&task_rx).take();
                let Some(rx) = rx else { return };
                while let Ok(x) = rx.recv() {
                    if result_tx.send(x * 2).is_err() {
                        return;
                    }
                }
            },
            |_signal| {
                let mut total = 0;
                for i in 1..=5u64 {
                    if task_tx.send(i).is_err() {
                        break;
                    }
                    total += result_rx.recv().unwrap_or(0);
                }
                drop(task_tx); // workers see a closed channel and exit
                total
            },
        );
        assert_eq!(out, 2 * (1 + 2 + 3 + 4 + 5));
    }

    #[test]
    fn worker_panic_sets_abort_signal_and_propagates() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_with_workers(
                2,
                |w| {
                    if w == 0 {
                        panic!("worker zero died");
                    }
                },
                |signal| {
                    // Workers race the master; just spin until the abort
                    // signal shows up (bounded by the test harness timeout).
                    while !signal.is_aborted() {
                        std::thread::yield_now();
                    }
                },
            )
        }))
        .expect_err("worker panic must propagate");
        assert!(payload_message(&err).contains("worker zero died"));
    }

    #[test]
    fn master_panic_propagates_when_workers_are_healthy() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_with_workers(2, |_w| {}, |_signal| panic!("master failed"))
        }))
        .expect_err("master panic must propagate");
        assert!(payload_message(&err).contains("master failed"));
    }
}
