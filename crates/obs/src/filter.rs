//! `EMBSR_LOG`-style target/level filtering.
//!
//! Syntax (comma-separated directives, later directives win ties):
//!
//! ```text
//! EMBSR_LOG="info"                              # global threshold
//! EMBSR_LOG="warn,embsr_train=debug"            # per-target override
//! EMBSR_LOG="info,embsr_tensor=off,exp=trace"   # silence one target
//! ```
//!
//! A directive's target matches an event target equal to it or nested under
//! it with `::` (module-path semantics): `embsr_train` matches
//! `embsr_train::trainer`. The most specific (longest) matching directive
//! decides the threshold.

use std::str::FromStr;

use crate::level::Level;

/// One parsed `target=level` directive (`target == ""` is the global one).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Directive {
    target: String,
    /// `None` means `off`.
    level: Option<Level>,
}

/// A parsed filter: a global default plus per-target overrides.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnvFilter {
    directives: Vec<Directive>,
}

impl EnvFilter {
    /// A filter passing events at `level` or more severe, for every target.
    pub fn level(level: Level) -> Self {
        EnvFilter {
            directives: vec![Directive {
                target: String::new(),
                level: Some(level),
            }],
        }
    }

    /// A filter that rejects everything.
    pub fn off() -> Self {
        EnvFilter {
            directives: vec![Directive {
                target: String::new(),
                level: None,
            }],
        }
    }

    /// Whether an event with `target` at `level` passes the filter.
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        let mut best_len: Option<usize> = None;
        let mut best_level: Option<Level> = None;
        for d in &self.directives {
            if !target_matches(&d.target, target) {
                continue;
            }
            // `>=` so later directives win among equal specificity.
            if best_len.is_none_or(|l| d.target.len() >= l) {
                best_len = Some(d.target.len());
                best_level = d.level;
            }
        }
        match best_level {
            Some(max) => level <= max,
            None => false,
        }
    }

    /// The most verbose level any target could pass (used as a cheap global
    /// early-out before consulting per-target directives).
    pub fn max_level(&self) -> Option<Level> {
        self.directives.iter().filter_map(|d| d.level).max()
    }
}

/// Does directive target `dir` cover event target `target`?
fn target_matches(dir: &str, target: &str) -> bool {
    if dir.is_empty() {
        return true;
    }
    match target.strip_prefix(dir) {
        Some(rest) => rest.is_empty() || rest.starts_with("::"),
        None => false,
    }
}

impl Default for EnvFilter {
    fn default() -> Self {
        EnvFilter::level(Level::Info)
    }
}

impl FromStr for EnvFilter {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut directives = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (target, level_str) = match part.split_once('=') {
                Some((t, l)) => (t.trim().to_string(), l.trim()),
                None => (String::new(), part),
            };
            let level = if level_str.eq_ignore_ascii_case("off") {
                None
            } else {
                Some(level_str.parse::<Level>()?)
            };
            directives.push(Directive { target, level });
        }
        if directives.is_empty() {
            return Err("empty filter spec".into());
        }
        Ok(EnvFilter { directives })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_level_applies_globally() {
        let f: EnvFilter = "debug".parse().unwrap();
        assert!(f.enabled("anything", Level::Debug));
        assert!(f.enabled("anything::nested", Level::Error));
        assert!(!f.enabled("anything", Level::Trace));
    }

    #[test]
    fn per_target_overrides_global() {
        let f: EnvFilter = "warn,embsr_train=debug".parse().unwrap();
        assert!(!f.enabled("embsr_eval", Level::Info));
        assert!(f.enabled("embsr_eval", Level::Warn));
        assert!(f.enabled("embsr_train", Level::Debug));
        assert!(f.enabled("embsr_train::trainer", Level::Debug));
        // prefix must respect module-path boundaries
        assert!(!f.enabled("embsr_trainer_x", Level::Debug));
    }

    #[test]
    fn longest_prefix_wins() {
        let f: EnvFilter = "info,a=off,a::b=trace".parse().unwrap();
        assert!(!f.enabled("a", Level::Error));
        assert!(!f.enabled("a::c", Level::Error));
        assert!(f.enabled("a::b", Level::Trace));
        assert!(f.enabled("a::b::c", Level::Trace));
        assert!(f.enabled("unrelated", Level::Info));
    }

    #[test]
    fn off_silences() {
        let f: EnvFilter = "off".parse().unwrap();
        assert!(!f.enabled("x", Level::Error));
        assert_eq!(f.max_level(), None);
        assert_eq!(EnvFilter::off(), f);
    }

    #[test]
    fn max_level_is_most_verbose_directive() {
        let f: EnvFilter = "warn,exp=trace,embsr_tensor=off".parse().unwrap();
        assert_eq!(f.max_level(), Some(Level::Trace));
    }

    #[test]
    fn rejects_garbage() {
        assert!("".parse::<EnvFilter>().is_err());
        assert!("loudest".parse::<EnvFilter>().is_err());
        assert!("a=shout".parse::<EnvFilter>().is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let f: EnvFilter = " info , embsr_train = debug ".parse().unwrap();
        assert!(f.enabled("embsr_train", Level::Debug));
        assert!(f.enabled("other", Level::Info));
    }
}
