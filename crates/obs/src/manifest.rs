//! Run manifests: one JSON document per (model, dataset) harness run, plus
//! the aggregate `BENCH_*.json` bench-trajectory table.
//!
//! Schema of `results/run_<name>.json` (all numbers JSON numbers; NaN
//! serializes as `null`):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "run": "table3_jd_appliances_embsr",
//!   "dataset": "JD-Appliances", "model": "EMBSR", "scale": "tiny",
//!   "dim": 16, "epochs_requested": 2, "seed": 17, "repeats": 1,
//!   "train_examples": 900, "val_examples": 120, "test_examples": 150,
//!   "num_items": 64, "num_ops": 10,
//!   "epochs": [
//!     {"epoch": 0, "train_loss": 4.1, "val_loss": 4.0,
//!      "duration_s": 0.8, "grad_norm": 2.3, "lr": 0.008}
//!   ],
//!   "best_epoch": 1, "early_stopped": false,
//!   "fit_seconds": 1.7, "eval_seconds": 0.1,
//!   "throughput_examples_per_sec": 1058.8,
//!   "cores_available": 8, "git_revision": "79ba04d…",
//!   "metrics": [{"name": "H@5", "value": 31.2}, …],
//!   "generated_unix_ms": 1754380800000
//! }
//! ```
//!
//! `BENCH_table3.json` is `{"schema_version": 1, "entries": [<manifest>, …]}`
//! keyed by `run`: re-running a cell replaces its entry, so the file tracks
//! the latest state of every cell across harness invocations.

use std::io;
use std::path::{Path, PathBuf};

use crate::json::{parse, JsonValue};
use crate::sink::unix_ms;

/// Statistics of one training epoch, as recorded by the trainer.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRecord {
    pub epoch: usize,
    pub train_loss: f64,
    pub val_loss: f64,
    pub duration_s: f64,
    /// Pre-clip global gradient norm of the epoch's last batch (NaN when
    /// not measured).
    pub grad_norm: f64,
    pub lr: f64,
}

/// One final evaluation metric, e.g. `("H@5", 31.2)`.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricRecord {
    pub name: String,
    pub value: f64,
}

/// Everything worth keeping about one (model, dataset) harness run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunManifest {
    /// Unique key, also the file name: `run_<run>.json`.
    pub run: String,
    pub dataset: String,
    pub model: String,
    pub scale: String,
    pub dim: usize,
    pub epochs_requested: usize,
    pub seed: u64,
    pub repeats: usize,
    pub train_examples: usize,
    pub val_examples: usize,
    pub test_examples: usize,
    pub num_items: usize,
    pub num_ops: usize,
    pub epochs: Vec<EpochRecord>,
    pub best_epoch: usize,
    pub early_stopped: bool,
    pub fit_seconds: f64,
    pub eval_seconds: f64,
    /// Training throughput: examples seen per wall-clock second of `fit`.
    pub throughput_examples_per_sec: f64,
    /// Logical cores the run could use (see [`cores_available`]); `0` when
    /// not recorded.
    pub cores_available: usize,
    /// Git commit the binary was built from (see [`git_revision`]);
    /// `"unknown"` or `""` when not recorded.
    pub git_revision: String,
    /// Kernel tier the run's inference used (`"scalar"` / `"packed"` /
    /// `"simd"`, as named by `embsr_tensor::kernels::KernelTier`); `""`
    /// when not recorded. Filled by the caller — this crate sits below the
    /// tensor layer and cannot detect the tier itself.
    pub kernel_tier: String,
    /// Detected f32 SIMD lane width of the build target
    /// (`embsr_tensor::kernels::simd_lanes`): 16 under AVX-512, 8 under
    /// AVX, 4 under SSE2/NEON, 1 scalar; `0` when not recorded.
    pub simd_lanes: usize,
    /// Frozen-snapshot weight precision served (`"f32"` / `"f16"` /
    /// `"bf16"`, as named by `embsr_serve::Precision`); `""` when not
    /// recorded or when the run never froze a model.
    pub snapshot_precision: String,
    pub metrics: Vec<MetricRecord>,
}

/// Logical cores available to this process (`1` when undetectable) — the
/// honest-cores figure every manifest records so throughput numbers can be
/// compared across machines.
pub fn cores_available() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The current git commit hash, read straight from `.git` (the workspace
/// has no external dependencies and shells out to nothing). Walks up from
/// the current directory to the first `.git`, follows `HEAD` through one
/// level of `ref:` indirection, and falls back to `packed-refs`. Returns
/// `"unknown"` when anything is missing.
pub fn git_revision() -> String {
    let Ok(start) = std::env::current_dir() else {
        return "unknown".to_string();
    };
    let mut dir: Option<&Path> = Some(start.as_path());
    while let Some(d) = dir {
        let git = d.join(".git");
        if git.is_dir() {
            return read_git_head(&git);
        }
        if git.is_file() {
            // Worktree: `.git` is a file `gitdir: <path>`.
            if let Ok(text) = std::fs::read_to_string(&git) {
                if let Some(target) = text.trim().strip_prefix("gitdir:") {
                    return read_git_head(&d.join(target.trim()));
                }
            }
            return "unknown".to_string();
        }
        dir = d.parent();
    }
    "unknown".to_string()
}

fn read_git_head(git_dir: &Path) -> String {
    let Ok(head) = std::fs::read_to_string(git_dir.join("HEAD")) else {
        return "unknown".to_string();
    };
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref:") else {
        // Detached HEAD: the hash itself.
        return if head.is_empty() { "unknown".to_string() } else { head.to_string() };
    };
    let refname = refname.trim();
    if let Ok(hash) = std::fs::read_to_string(git_dir.join(refname)) {
        let hash = hash.trim();
        if !hash.is_empty() {
            return hash.to_string();
        }
    }
    // Ref not unpacked: look it up in packed-refs (`<hash> <refname>`).
    if let Ok(packed) = std::fs::read_to_string(git_dir.join("packed-refs")) {
        for line in packed.lines() {
            let line = line.trim();
            if line.starts_with('#') || line.starts_with('^') {
                continue;
            }
            if let Some((hash, name)) = line.split_once(' ') {
                if name.trim() == refname {
                    return hash.trim().to_string();
                }
            }
        }
    }
    "unknown".to_string()
}

/// Lower-cases and squashes a string into a `[a-z0-9_]+` file-name key.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_us = true; // suppress leading underscores
    for c in name.chars() {
        let c = c.to_ascii_lowercase();
        if c.is_ascii_alphanumeric() {
            out.push(c);
            last_us = false;
        } else if !last_us {
            out.push('_');
            last_us = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

fn num(v: Option<&JsonValue>) -> f64 {
    v.and_then(JsonValue::as_f64).unwrap_or(f64::NAN)
}

fn text(v: Option<&JsonValue>) -> String {
    v.and_then(JsonValue::as_str).unwrap_or_default().to_string()
}

impl RunManifest {
    /// The manifest as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("schema_version", 1u64.into()),
            ("run", self.run.as_str().into()),
            ("dataset", self.dataset.as_str().into()),
            ("model", self.model.as_str().into()),
            ("scale", self.scale.as_str().into()),
            ("dim", self.dim.into()),
            ("epochs_requested", self.epochs_requested.into()),
            ("seed", self.seed.into()),
            ("repeats", self.repeats.into()),
            ("train_examples", self.train_examples.into()),
            ("val_examples", self.val_examples.into()),
            ("test_examples", self.test_examples.into()),
            ("num_items", self.num_items.into()),
            ("num_ops", self.num_ops.into()),
            (
                "epochs",
                JsonValue::Array(
                    self.epochs
                        .iter()
                        .map(|e| {
                            JsonValue::object(vec![
                                ("epoch", e.epoch.into()),
                                ("train_loss", e.train_loss.into()),
                                ("val_loss", e.val_loss.into()),
                                ("duration_s", e.duration_s.into()),
                                ("grad_norm", e.grad_norm.into()),
                                ("lr", e.lr.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("best_epoch", self.best_epoch.into()),
            ("early_stopped", self.early_stopped.into()),
            ("fit_seconds", self.fit_seconds.into()),
            ("eval_seconds", self.eval_seconds.into()),
            (
                "throughput_examples_per_sec",
                self.throughput_examples_per_sec.into(),
            ),
            ("cores_available", self.cores_available.into()),
            ("git_revision", self.git_revision.as_str().into()),
            ("kernel_tier", self.kernel_tier.as_str().into()),
            ("simd_lanes", self.simd_lanes.into()),
            ("snapshot_precision", self.snapshot_precision.as_str().into()),
            (
                "metrics",
                JsonValue::Array(
                    self.metrics
                        .iter()
                        .map(|m| {
                            JsonValue::object(vec![
                                ("name", m.name.as_str().into()),
                                ("value", m.value.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("generated_unix_ms", unix_ms().into()),
        ])
    }

    /// Compact JSON text.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Rebuilds a manifest from its JSON form (missing numeric fields come
    /// back as NaN / 0, missing strings as `""`).
    pub fn from_json_value(v: &JsonValue) -> Result<RunManifest, String> {
        if v.get("run").is_none() {
            return Err("not a run manifest: missing 'run'".into());
        }
        let epochs = v
            .get("epochs")
            .and_then(JsonValue::as_array)
            .unwrap_or_default()
            .iter()
            .map(|e| EpochRecord {
                epoch: num(e.get("epoch")) as usize,
                train_loss: num(e.get("train_loss")),
                val_loss: num(e.get("val_loss")),
                duration_s: num(e.get("duration_s")),
                grad_norm: num(e.get("grad_norm")),
                lr: num(e.get("lr")),
            })
            .collect();
        let metrics = v
            .get("metrics")
            .and_then(JsonValue::as_array)
            .unwrap_or_default()
            .iter()
            .map(|m| MetricRecord {
                name: text(m.get("name")),
                value: num(m.get("value")),
            })
            .collect();
        Ok(RunManifest {
            run: text(v.get("run")),
            dataset: text(v.get("dataset")),
            model: text(v.get("model")),
            scale: text(v.get("scale")),
            dim: num(v.get("dim")) as usize,
            epochs_requested: num(v.get("epochs_requested")) as usize,
            seed: num(v.get("seed")) as u64,
            repeats: num(v.get("repeats")) as usize,
            train_examples: num(v.get("train_examples")) as usize,
            val_examples: num(v.get("val_examples")) as usize,
            test_examples: num(v.get("test_examples")) as usize,
            num_items: num(v.get("num_items")) as usize,
            num_ops: num(v.get("num_ops")) as usize,
            epochs,
            best_epoch: num(v.get("best_epoch")) as usize,
            early_stopped: v
                .get("early_stopped")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            fit_seconds: num(v.get("fit_seconds")),
            eval_seconds: num(v.get("eval_seconds")),
            throughput_examples_per_sec: num(v.get("throughput_examples_per_sec")),
            cores_available: {
                let n = num(v.get("cores_available"));
                if n.is_nan() { 0 } else { n as usize }
            },
            git_revision: text(v.get("git_revision")),
            kernel_tier: text(v.get("kernel_tier")),
            simd_lanes: {
                let n = num(v.get("simd_lanes"));
                if n.is_nan() { 0 } else { n as usize }
            },
            snapshot_precision: text(v.get("snapshot_precision")),
            metrics,
        })
    }

    /// Writes `run_<run>.json` into `dir` (created if missing) and returns
    /// the path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("run_{}.json", sanitize(&self.run)));
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }
}

/// Inserts or replaces `manifest` in the aggregate bench table at `path`
/// (`BENCH_table3.json`-style). Entries are keyed by `run` and kept sorted
/// by `(dataset, model)` so reruns produce stable diffs.
pub fn append_bench_entry(path: &Path, manifest: &RunManifest) -> io::Result<()> {
    let mut entries: Vec<JsonValue> = match std::fs::read_to_string(path) {
        Ok(text) => parse(&text)
            .ok()
            .and_then(|v| v.get("entries").and_then(JsonValue::as_array).map(<[JsonValue]>::to_vec))
            .unwrap_or_default(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    entries.retain(|e| e.get("run").and_then(JsonValue::as_str) != Some(manifest.run.as_str()));
    entries.push(manifest.to_json_value());
    entries.sort_by_key(|e| {
        (
            text(e.get("dataset")),
            text(e.get("model")),
            text(e.get("run")),
        )
    });
    let doc = JsonValue::object(vec![
        ("schema_version", 1u64.into()),
        ("generated_unix_ms", unix_ms().into()),
        ("entries", JsonValue::Array(entries)),
    ]);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc.to_json() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(run: &str, dataset: &str, model: &str) -> RunManifest {
        RunManifest {
            run: run.into(),
            dataset: dataset.into(),
            model: model.into(),
            scale: "tiny".into(),
            dim: 16,
            epochs_requested: 2,
            seed: 17,
            repeats: 1,
            train_examples: 900,
            val_examples: 120,
            test_examples: 150,
            num_items: 64,
            num_ops: 10,
            epochs: vec![
                EpochRecord {
                    epoch: 0,
                    train_loss: 4.5,
                    val_loss: 4.25,
                    duration_s: 0.5,
                    grad_norm: 2.0,
                    lr: 0.008,
                },
                EpochRecord {
                    epoch: 1,
                    train_loss: 3.5,
                    val_loss: 3.75,
                    duration_s: 0.25,
                    grad_norm: 1.5,
                    lr: 0.008,
                },
            ],
            best_epoch: 1,
            early_stopped: false,
            fit_seconds: 0.75,
            eval_seconds: 0.125,
            throughput_examples_per_sec: 2400.0,
            cores_available: 8,
            git_revision: "0123abcd".into(),
            kernel_tier: "simd".into(),
            simd_lanes: 8,
            snapshot_precision: "bf16".into(),
            metrics: vec![
                MetricRecord {
                    name: "H@5".into(),
                    value: 31.25,
                },
                MetricRecord {
                    name: "M@5".into(),
                    value: 14.5,
                },
            ],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("embsr_obs_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = sample("t3_jd_embsr", "JD-Appliances", "EMBSR");
        let parsed = parse(&m.to_json()).unwrap();
        let back = RunManifest::from_json_value(&parsed).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn environment_helpers_report_sane_values() {
        assert!(cores_available() >= 1);
        let rev = git_revision();
        assert!(!rev.is_empty());
        // In this repo's checkout the revision should be a real hash, but
        // the helper must never fail outright elsewhere either.
        assert!(rev == "unknown" || rev.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn sanitize_flattens_names() {
        assert_eq!(sanitize("JD-Appliances EMBSR (full)"), "jd_appliances_embsr_full");
        assert_eq!(sanitize("--x--"), "x");
        assert_eq!(sanitize("SR-GNN"), "sr_gnn");
    }

    #[test]
    fn write_creates_run_file() {
        let dir = tmpdir("write");
        let m = sample("Write Test", "D", "M");
        let path = m.write(&dir).unwrap();
        assert!(path.ends_with("run_write_test.json"));
        let v = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(v.get("model").unwrap().as_str(), Some("M"));
        assert_eq!(
            v.get("epochs").unwrap().as_array().unwrap()[0]
                .get("duration_s")
                .unwrap()
                .as_f64(),
            Some(0.5)
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bench_table_upserts_by_run_key() {
        let dir = tmpdir("bench");
        let path = dir.join("BENCH_test.json");
        append_bench_entry(&path, &sample("b", "D2", "M1")).unwrap();
        append_bench_entry(&path, &sample("a", "D1", "M2")).unwrap();
        // replace entry "b" with new numbers
        let mut b2 = sample("b", "D2", "M1");
        b2.fit_seconds = 9.0;
        append_bench_entry(&path, &b2).unwrap();

        let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let entries = doc.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 2);
        // sorted by (dataset, model): D1 first
        assert_eq!(entries[0].get("dataset").unwrap().as_str(), Some("D1"));
        assert_eq!(entries[1].get("fit_seconds").unwrap().as_f64(), Some(9.0));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bench_table_survives_corrupt_file() {
        let dir = tmpdir("corrupt");
        let path = dir.join("BENCH_test.json");
        std::fs::write(&path, "not json at all").unwrap();
        append_bench_entry(&path, &sample("x", "D", "M")).unwrap();
        let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("entries").unwrap().as_array().unwrap().len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }
}
