//! Minimal micro-benchmark harness for `harness = false` bench targets.
//!
//! A self-contained stand-in for criterion with the same shape of call
//! site:
//!
//! ```no_run
//! use embsr_obs::bench::{black_box, Bench};
//!
//! fn main() {
//!     let mut bench = Bench::from_env();
//!     {
//!         let mut g = bench.group("matmul");
//!         g.bench_function("64x64", |b| b.iter(|| black_box(2 + 2)));
//!     }
//!     bench.finish();
//! }
//! ```
//!
//! Each benchmark is warmed up, then sampled in calibrated batches until a
//! wall-clock budget is spent; the report line gives mean/p50/p95 time per
//! iteration. Environment knobs:
//!
//! * `EMBSR_BENCH_TIME_MS` — sampling budget per benchmark (default 500).
//! * `EMBSR_BENCH_QUICK=1` — 50 ms budget, minimal warmup (used in CI and
//!   tests to prove the bins run).
//!
//! `cargo bench <filter>` passes the filter through: only benchmark ids
//! containing the substring run. The `--bench` flag cargo appends is
//! ignored.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state: CLI filter, time budget, run counter.
pub struct Bench {
    filter: Option<String>,
    budget: Duration,
    warmup: Duration,
    ran: usize,
    skipped: usize,
}

impl Bench {
    /// Builds a harness from `std::env::args` and `EMBSR_BENCH_*` vars.
    pub fn from_env() -> Bench {
        // cargo invokes bench bins as `<bin> --bench [filter]`; anything
        // that is not a flag is a substring filter on benchmark ids.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        let quick = std::env::var("EMBSR_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
        let default_ms = if quick { 50 } else { 500 };
        let budget_ms = std::env::var("EMBSR_BENCH_TIME_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(default_ms);
        Bench {
            filter,
            budget: Duration::from_millis(budget_ms.max(1)),
            warmup: Duration::from_millis(if quick { 5 } else { budget_ms.max(1) / 5 }),
            ran: 0,
            skipped: 0,
        }
    }

    /// Opens a named group; benchmark ids are reported as `group/id`.
    pub fn group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            bench: self,
            name: name.into(),
        }
    }

    /// Prints the closing summary line.
    pub fn finish(&self) {
        if self.skipped > 0 {
            println!(
                "bench: {} benchmark(s) run, {} filtered out",
                self.ran, self.skipped
            );
        } else {
            println!("bench: {} benchmark(s) run", self.ran);
        }
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                self.skipped += 1;
                return;
            }
        }
        let mut bencher = Bencher {
            budget: self.budget,
            warmup: self.warmup,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.ran += 1;
        bencher.report(id);
    }
}

/// A named group of benchmarks; mirrors criterion's `benchmark_group`.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
}

impl Group<'_> {
    /// Runs one benchmark. `id` may be any displayable value (criterion's
    /// `BenchmarkId` call sites pass formatted strings here).
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.bench.run_one(&full, &mut f);
        self
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    budget: Duration,
    warmup: Duration,
    /// Seconds per iteration, one entry per sampled batch.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `f`: warmup, then calibrated batches until the budget is
    /// spent. The closure's return value is black-boxed so the work is not
    /// optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup (also calibrates the batch size).
        let warmup_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warmup_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Aim for ~1 ms per batch so timer overhead stays negligible.
        let batch = ((0.001 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let start = Instant::now();
        while start.elapsed() < self.budget || self.samples.len() < 3 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() / batch as f64);
            if self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("bench {id}: no samples (closure never called iter?)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let pct = |q: f64| sorted[(((sorted.len() as f64) * q) as usize).min(sorted.len() - 1)];
        println!(
            "bench {id}: mean {}  p50 {}  p95 {}  ({} samples)",
            fmt_secs(mean),
            fmt_secs(pct(0.50)),
            fmt_secs(pct(0.95)),
            sorted.len()
        );
    }
}

/// Human-readable duration with an auto-selected unit.
fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(filter: Option<&str>) -> Bench {
        Bench {
            filter: filter.map(String::from),
            budget: Duration::from_millis(5),
            warmup: Duration::from_millis(1),
            ran: 0,
            skipped: 0,
        }
    }

    #[test]
    fn runs_and_counts_benchmarks() {
        let mut bench = quick_bench(None);
        {
            let mut g = bench.group("g");
            g.bench_function("a", |b| b.iter(|| black_box(1u64.wrapping_mul(3))));
            g.bench_function("b", |b| b.iter(|| black_box(2u64)));
        }
        assert_eq!(bench.ran, 2);
        assert_eq!(bench.skipped, 0);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut bench = quick_bench(Some("match_me"));
        {
            let mut g = bench.group("g");
            g.bench_function("match_me_1", |b| b.iter(|| black_box(0u8)));
            g.bench_function("other", |b| b.iter(|| black_box(0u8)));
        }
        assert_eq!(bench.ran, 1);
        assert_eq!(bench.skipped, 1);
    }

    #[test]
    fn sampling_produces_sane_stats() {
        let mut bencher = Bencher {
            budget: Duration::from_millis(5),
            warmup: Duration::from_millis(1),
            samples: Vec::new(),
        };
        bencher.iter(|| black_box(7u64).wrapping_mul(13));
        assert!(bencher.samples.len() >= 3);
        assert!(bencher.samples.iter().all(|&s| s > 0.0 && s < 1.0));
    }

    #[test]
    fn fmt_secs_picks_units() {
        assert!(fmt_secs(2.0).ends_with(" s"));
        assert!(fmt_secs(2e-3).ends_with(" ms"));
        assert!(fmt_secs(2e-6).ends_with(" µs"));
        assert!(fmt_secs(2e-9).ends_with(" ns"));
    }
}
