//! Request tracing: hierarchical spans with explicit ids.
//!
//! [`SpanGuard`](crate::SpanGuard) times a scope on *one* thread; a serving
//! request instead crosses threads (client submit → queue → worker batch →
//! reply), so its timeline is stitched from **trace records**: ordinary
//! events at [`Level::Trace`] with target `"trace"` whose numeric fields
//! carry the ids. Any [`Sink`](crate::Sink) can collect them; the
//! [`JsonlSink`](crate::JsonlSink) makes the timeline reconstructable
//! offline via [`parse_jsonl`] + [`build_trees`].
//!
//! # Record schema
//!
//! One JSON object per line, the standard event shape:
//!
//! ```json
//! {"ts_ms": 1700000000000, "level": "trace", "target": "trace",
//!  "message": "queue_wait",
//!  "fields": {"trace": 7, "span": 9, "parent": 8,
//!             "start_us": 1250, "dur_us": 412}}
//! ```
//!
//! * `message` — span name (`score_request`, `queue_wait`, `scoring`, …);
//! * `fields.trace` — id shared by every span of one request;
//! * `fields.span` — this span's id (unique per process run);
//! * `fields.parent` — parent span id, `0` for the request root;
//! * `fields.start_us` / `fields.dur_us` — microseconds on the
//!   process-local monotonic clock ([`now_us`]), so spans stamped on
//!   different threads share one timeline.
//!
//! Ids are drawn from one process-wide counter and stay below 2^53, so the
//! `f64` field encoding is lossless.
//!
//! # Cost when disabled
//!
//! Tracing is off by default; [`root`]/[`child`]/[`emit_span`] then reduce
//! to two relaxed atomic loads ([`enabled`] and the dispatcher's level
//! cache) and never touch the clock. Records flow only when **both**
//! [`set_enabled`]`(true)` was called and some sink accepts
//! [`Level::Trace`].

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::json;
use crate::level::Level;

/// Event target of every trace record.
pub const TRACE_TARGET: &str = "trace";

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Turns trace-record emission on or off (off by default).
pub fn set_enabled(on: bool) {
    // ordering: Relaxed — standalone flag; late observers only start (or
    // stop) emitting records a moment later.
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is the tracing switch on? (Records additionally require a sink that
/// accepts [`Level::Trace`]; see [`active`].)
#[inline]
pub fn enabled() -> bool {
    // ordering: Relaxed — best-effort gate, no data published through it.
    ENABLED.load(Ordering::Relaxed)
}

/// True when a trace record emitted now would actually reach a sink: the
/// switch is on *and* some sink accepts [`Level::Trace`]. Two relaxed
/// atomic loads; instrumentation sites gate on this.
#[inline]
pub fn active() -> bool {
    enabled() && crate::log_enabled(Level::Trace)
}

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Microseconds since the process-local trace epoch (the first call wins
/// the race to plant the anchor). Monotonic and shared by every thread, so
/// timestamps taken on different threads are directly comparable. Never
/// returns 0: callers use zero as the "not traced" sentinel in queued
/// timestamps, and the clock's first microsecond must not alias it.
pub fn now_us() -> u64 {
    u64::try_from(anchor().elapsed().as_micros())
        .unwrap_or(u64::MAX)
        .max(1)
}

fn fresh_id() -> u64 {
    // ordering: Relaxed — the RMW alone guarantees uniqueness; ids carry
    // no happens-before obligations.
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The (trace id, span id) pair a request carries across threads. `Copy`
/// so it can ride inside queue jobs; the all-zero value means "not
/// traced".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Id shared by every span of one request; `0` when tracing was off.
    pub trace: u64,
    /// The span that should become the parent of phases attributed to this
    /// context.
    pub span: u64,
}

impl TraceCtx {
    /// The untraced context: children of it are silently dropped.
    pub const NONE: TraceCtx = TraceCtx { trace: 0, span: 0 };

    /// True for [`TraceCtx::NONE`] (tracing was inactive at request start).
    pub fn is_none(&self) -> bool {
        self.trace == 0
    }

    /// Wire form for propagating the context across a process or network
    /// boundary: `{"trace": n, "span": n}`. Ids stay below 2^53 (see the
    /// module docs), so the `f64`-backed JSON numbers are lossless.
    /// [`TraceCtx::NONE`] encodes as zeros, which [`TraceCtx::from_json_value`]
    /// maps back to `NONE`.
    pub fn to_json_value(&self) -> json::JsonValue {
        json::JsonValue::object(vec![("trace", self.trace.into()), ("span", self.span.into())])
    }

    /// Inverse of [`TraceCtx::to_json_value`]. Missing or malformed fields
    /// yield [`TraceCtx::NONE`] — an untraced peer degrades to no tracing,
    /// never to an error.
    pub fn from_json_value(v: &json::JsonValue) -> TraceCtx {
        let num = |key: &str| -> u64 {
            let raw = v.get(key).and_then(json::JsonValue::as_f64).unwrap_or(0.0);
            if raw.is_finite() && raw >= 0.0 && raw.fract() == 0.0 {
                raw as u64
            } else {
                0
            }
        };
        let ctx = TraceCtx {
            trace: num("trace"),
            span: num("span"),
        };
        if ctx.trace == 0 || ctx.span == 0 {
            TraceCtx::NONE
        } else {
            ctx
        }
    }
}

fn emit(name: &str, trace: u64, span: u64, parent: u64, start_us: u64, end_us: u64) {
    crate::dispatch(
        Level::Trace,
        TRACE_TARGET,
        format_args!("{name}"),
        &[
            ("trace", trace as f64),
            ("span", span as f64),
            ("parent", parent as f64),
            ("start_us", start_us as f64),
            ("dur_us", end_us.saturating_sub(start_us) as f64),
        ],
    );
}

/// RAII guard for a traced span; emits its record on drop. Unlike
/// [`SpanGuard`](crate::SpanGuard) it is not tied to a thread-local stack —
/// parentage is explicit via [`TraceCtx`].
pub struct TraceSpan {
    ctx: TraceCtx,
    parent: u64,
    name: &'static str,
    start_us: u64,
}

impl TraceSpan {
    fn disabled() -> TraceSpan {
        TraceSpan {
            ctx: TraceCtx::NONE,
            parent: 0,
            name: "",
            start_us: 0,
        }
    }

    /// The context children of this span should carry.
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if self.ctx.trace == 0 {
            return;
        }
        emit(
            self.name,
            self.ctx.trace,
            self.ctx.span,
            self.parent,
            self.start_us,
            now_us(),
        );
    }
}

/// Opens the root span of a new trace (one per request). No-op guard when
/// tracing is [`active`]-off.
pub fn root(name: &'static str) -> TraceSpan {
    if !active() {
        return TraceSpan::disabled();
    }
    TraceSpan {
        ctx: TraceCtx {
            trace: fresh_id(),
            span: fresh_id(),
        },
        parent: 0,
        name,
        start_us: now_us(),
    }
}

/// Opens a child span under `parent` (same trace id, fresh span id). No-op
/// when tracing is off or `parent` is untraced.
pub fn child(parent: TraceCtx, name: &'static str) -> TraceSpan {
    if !active() || parent.is_none() {
        return TraceSpan::disabled();
    }
    TraceSpan {
        ctx: TraceCtx {
            trace: parent.trace,
            span: fresh_id(),
        },
        parent: parent.span,
        name,
        start_us: now_us(),
    }
}

/// Emits a completed child span from explicit [`now_us`] timestamps — the
/// cross-thread form, for phases whose start was stamped on a different
/// thread (e.g. queue wait: enqueued by the client, drained by a worker).
pub fn emit_span(parent: TraceCtx, name: &'static str, start_us: u64, end_us: u64) {
    if !active() || parent.is_none() {
        return;
    }
    emit(name, parent.trace, fresh_id(), parent.span, start_us, end_us);
}

// ---------------------------------------------------------------------------
// Offline reconstruction
// ---------------------------------------------------------------------------

/// One parsed trace record (see the module docs for the wire schema).
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    pub trace: u64,
    pub span: u64,
    /// `0` for a trace's root span.
    pub parent: u64,
    pub name: String,
    pub start_us: u64,
    pub end_us: u64,
}

impl SpanRecord {
    /// The span's duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Validates one JSONL event line against the documented schema. Every
/// line must be a JSON object carrying `ts_ms`/`level`/`target`/`message`;
/// a line with target [`TRACE_TARGET`] must additionally be at level
/// `trace` and carry the five numeric span fields. Returns the parsed
/// record for trace lines, `Ok(None)` for other (legal) event lines.
pub fn validate_line(line: &str) -> Result<Option<SpanRecord>, String> {
    let v = json::parse(line).map_err(|e| format!("invalid json: {e}"))?;
    let text = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(|x| x.as_str())
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field `{key}`"))
    };
    if v.get("ts_ms").and_then(|x| x.as_f64()).is_none() {
        return Err("missing numeric field `ts_ms`".into());
    }
    let level = text("level")?;
    let target = text("target")?;
    let message = text("message")?;
    if target != TRACE_TARGET {
        return Ok(None);
    }
    if level != Level::Trace.as_str() {
        return Err(format!("trace record at level `{level}`, expected `trace`"));
    }
    let fields = v
        .get("fields")
        .ok_or_else(|| "trace record without `fields`".to_string())?;
    let num = |key: &str| -> Result<u64, String> {
        let raw = fields
            .get(key)
            .and_then(|x| x.as_f64())
            .ok_or_else(|| format!("trace record missing numeric field `fields.{key}`"))?;
        if !(raw.is_finite() && raw >= 0.0 && raw.fract() == 0.0) {
            return Err(format!("trace field `{key}` is not a non-negative integer: {raw}"));
        }
        Ok(raw as u64)
    };
    let (trace, span) = (num("trace")?, num("span")?);
    if trace == 0 || span == 0 {
        return Err("trace and span ids must be nonzero".into());
    }
    let start_us = num("start_us")?;
    Ok(Some(SpanRecord {
        trace,
        span,
        parent: num("parent")?,
        name: message,
        start_us,
        end_us: start_us.saturating_add(num("dur_us")?),
    }))
}

/// Extracts the trace records from JSONL text, silently skipping non-trace
/// and malformed lines. Use [`validate_line`] when malformed lines should
/// be an error.
pub fn parse_jsonl(text: &str) -> Vec<SpanRecord> {
    text.lines()
        .filter_map(|l| validate_line(l).ok().flatten())
        .collect()
}

/// The reconstructed span tree of one trace.
#[derive(Clone, Debug)]
pub struct TraceTree {
    pub trace: u64,
    /// Every span of the trace, input order preserved.
    pub spans: Vec<SpanRecord>,
    root: usize,
}

impl TraceTree {
    /// The request root span.
    pub fn root(&self) -> &SpanRecord {
        &self.spans[self.root]
    }

    /// End-to-end duration of the root span.
    pub fn duration_us(&self) -> u64 {
        self.root().dur_us()
    }

    /// Direct children of the span with id `span_id`, input order.
    pub fn children_of(&self, span_id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == span_id).collect()
    }

    /// Total duration over all spans named `name`.
    pub fn total_us(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(SpanRecord::dur_us)
            .sum()
    }
}

/// Groups records by trace id and checks the structural invariants every
/// well-formed trace satisfies:
///
/// * span ids are unique within a trace;
/// * exactly one root (`parent == 0`) per trace;
/// * every non-root parent id resolves to a span of the same trace (no
///   orphans);
/// * timestamps are monotone: each span ends no earlier than it starts,
///   and each child's interval lies within its parent's.
///
/// Returns the trees sorted by trace id, or a description of the first
/// violation.
pub fn build_trees(records: &[SpanRecord]) -> Result<Vec<TraceTree>, String> {
    let mut by_trace: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    for r in records {
        if r.trace == 0 {
            return Err(format!("span {} has trace id 0", r.span));
        }
        if r.end_us < r.start_us {
            return Err(format!(
                "trace {}: span {} ({}) ends before it starts",
                r.trace, r.span, r.name
            ));
        }
        by_trace.entry(r.trace).or_default().push(r.clone());
    }
    let mut trees = Vec::with_capacity(by_trace.len());
    for (trace, spans) in by_trace {
        let mut by_id: HashMap<u64, usize> = HashMap::with_capacity(spans.len());
        for (i, s) in spans.iter().enumerate() {
            if by_id.insert(s.span, i).is_some() {
                return Err(format!("trace {trace}: duplicate span id {}", s.span));
            }
        }
        let roots: Vec<usize> = spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent == 0)
            .map(|(i, _)| i)
            .collect();
        if roots.len() != 1 {
            return Err(format!(
                "trace {trace}: expected exactly one root span, found {}",
                roots.len()
            ));
        }
        for s in &spans {
            if s.parent == 0 {
                continue;
            }
            let Some(&pi) = by_id.get(&s.parent) else {
                return Err(format!(
                    "trace {trace}: span {} ({}) has orphan parent {}",
                    s.span, s.name, s.parent
                ));
            };
            let p = &spans[pi];
            if s.start_us < p.start_us || s.end_us > p.end_us {
                return Err(format!(
                    "trace {trace}: span {} ({}) [{}, {}]us escapes parent {} ({}) [{}, {}]us",
                    s.span, s.name, s.start_us, s.end_us, p.span, p.name, p.start_us, p.end_us
                ));
            }
        }
        trees.push(TraceTree {
            trace,
            spans,
            root: roots[0],
        });
    }
    Ok(trees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{add_sink, clear_sinks, test_guard, MemorySink};
    use std::sync::Arc;

    fn rec(trace: u64, span: u64, parent: u64, name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace,
            span,
            parent,
            name: name.to_string(),
            start_us: start,
            end_us: end,
        }
    }

    #[test]
    fn disabled_tracing_emits_nothing_and_hands_out_null_ctx() {
        let _g = test_guard();
        clear_sinks();
        set_enabled(false);
        let mem = MemorySink::new();
        add_sink(Arc::new(mem.clone()));
        {
            let r = root("req");
            assert!(r.ctx().is_none());
            let c = child(r.ctx(), "phase");
            assert!(c.ctx().is_none());
            emit_span(r.ctx(), "other", 0, 5);
        }
        clear_sinks();
        assert!(mem.lines().is_empty());
    }

    #[test]
    fn spans_round_trip_through_jsonl_into_a_tree() {
        let _g = test_guard();
        clear_sinks();
        set_enabled(true);
        let mem = MemorySink::new();
        add_sink(Arc::new(mem.clone()));
        let parent_ctx;
        {
            let r = root("request");
            parent_ctx = r.ctx();
            {
                let _c = child(parent_ctx, "inner");
            }
            let t = now_us();
            emit_span(parent_ctx, "stamped", t.saturating_sub(1), t);
        }
        set_enabled(false);
        let lines = mem.lines();
        clear_sinks();

        let records = parse_jsonl(&lines.join("\n"));
        assert_eq!(records.len(), 3);
        let trees = build_trees(&records).expect("valid tree");
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.trace, parent_ctx.trace);
        assert_eq!(tree.root().name, "request");
        assert_eq!(tree.root().parent, 0);
        let kids = tree.children_of(tree.root().span);
        let names: Vec<&str> = kids.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"inner") && names.contains(&"stamped"));
        for k in kids {
            assert!(k.start_us >= tree.root().start_us);
            assert!(k.end_us <= tree.root().end_us);
        }
        assert_eq!(tree.total_us("stamped"), 1);
    }

    #[test]
    fn validate_line_enforces_the_documented_schema() {
        // Non-trace event lines pass through as None.
        let ev = r#"{"ts_ms": 1, "level": "info", "target": "embsr_train", "message": "hi"}"#;
        assert_eq!(validate_line(ev).unwrap(), None);
        // A well-formed trace record parses.
        let ok = r#"{"ts_ms": 1, "level": "trace", "target": "trace", "message": "scoring",
                     "fields": {"trace": 7, "span": 9, "parent": 8, "start_us": 10, "dur_us": 5}}"#
            .replace('\n', " ");
        let r = validate_line(&ok).unwrap().expect("trace record");
        assert_eq!((r.trace, r.span, r.parent), (7, 9, 8));
        assert_eq!((r.start_us, r.end_us), (10, 15));
        // Missing fields, wrong level, bad ids, junk: all rejected.
        let bad = r#"{"ts_ms": 1, "level": "trace", "target": "trace", "message": "m",
                      "fields": {"trace": 7, "span": 9, "parent": 8}}"#
            .replace('\n', " ");
        assert!(validate_line(&bad).is_err());
        let wrong_level = r#"{"ts_ms": 1, "level": "info", "target": "trace", "message": "m",
                              "fields": {"trace": 1, "span": 2, "parent": 0, "start_us": 0, "dur_us": 0}}"#
            .replace('\n', " ");
        assert!(validate_line(&wrong_level).is_err());
        let zero_id = r#"{"ts_ms": 1, "level": "trace", "target": "trace", "message": "m",
                          "fields": {"trace": 0, "span": 2, "parent": 0, "start_us": 0, "dur_us": 0}}"#
            .replace('\n', " ");
        assert!(validate_line(&zero_id).is_err());
        assert!(validate_line("not json").is_err());
    }

    #[test]
    fn build_trees_rejects_orphans_multiple_roots_and_escaping_children() {
        // Orphan parent.
        let orphan = vec![rec(1, 2, 0, "root", 0, 10), rec(1, 3, 99, "lost", 1, 2)];
        assert!(build_trees(&orphan).unwrap_err().contains("orphan"));
        // Two roots in one trace.
        let two_roots = vec![rec(1, 2, 0, "a", 0, 10), rec(1, 3, 0, "b", 0, 10)];
        assert!(build_trees(&two_roots).unwrap_err().contains("one root"));
        // Child interval escapes the parent's.
        let escape = vec![rec(1, 2, 0, "root", 5, 10), rec(1, 3, 2, "kid", 4, 9)];
        assert!(build_trees(&escape).unwrap_err().contains("escapes"));
        // Duplicate span ids.
        let dup = vec![rec(1, 2, 0, "root", 0, 10), rec(1, 2, 2, "kid", 1, 2)];
        assert!(build_trees(&dup).unwrap_err().contains("duplicate"));
        // Two valid traces come back sorted by trace id.
        let good = vec![
            rec(9, 20, 0, "b", 0, 4),
            rec(3, 10, 0, "a", 0, 8),
            rec(3, 11, 10, "a.kid", 2, 6),
        ];
        let trees = build_trees(&good).expect("valid");
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].trace, 3);
        assert_eq!(trees[0].children_of(10).len(), 1);
        assert_eq!(trees[1].trace, 9);
        assert_eq!(trees[1].duration_us(), 4);
    }

    #[test]
    fn now_us_is_monotone_across_threads() {
        let a = now_us();
        let b = std::thread::spawn(now_us).join().expect("clock thread");
        let c = now_us();
        assert!(b >= a && c >= b);
    }
}
