//! Latency objectives evaluated against the live metrics registry.
//!
//! An SLO binds a histogram metric to a quantile objective — "p99 of
//! `serve.request_latency_us` stays at or below 2000µs" — plus an **error
//! budget**: the fraction of samples allowed to violate the objective
//! before the SLO is considered burned. Specs use a compact string form
//! so bins can take them straight from a flag or env var:
//!
//! ```text
//! serve.request_latency_us:p99<=2000        # budget defaults to 1-q = 0.01
//! serve.request_latency_us:p99.9<=5000@0.002
//! ```
//!
//! [`evaluate`] reads the named histograms from the registry
//! ([`metrics::histogram`]) at call time — it is a point-in-time check,
//! not a monitor. Both the quantile estimate and the violation fraction
//! inherit the histogram's ~12.5% bucketing error.

use crate::json::JsonValue;
use crate::metrics;

/// One parsed latency objective.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Registry name of the histogram (recorded in microseconds).
    pub metric: String,
    /// Objective quantile in `(0, 1)`, e.g. `0.99` for p99.
    pub quantile: f64,
    /// The latency bound the quantile must not exceed, in microseconds.
    pub objective_us: u64,
    /// Allowed violating fraction in `(0, 1]`; defaults to `1 - quantile`.
    pub budget: f64,
}

impl SloSpec {
    /// Parses the compact form `metric:pQQ<=OBJECTIVE_US[@BUDGET]`.
    pub fn parse(s: &str) -> Result<SloSpec, String> {
        let err = |what: &str| format!("SLO `{s}`: {what} (expected `metric:pQQ<=objective_us[@budget]`)");
        let (metric, rest) = s.split_once(':').ok_or_else(|| err("missing `:`"))?;
        let metric = metric.trim();
        if metric.is_empty() {
            return Err(err("empty metric name"));
        }
        let (q_part, rest) = rest.split_once("<=").ok_or_else(|| err("missing `<=`"))?;
        let q_digits = q_part
            .trim()
            .strip_prefix('p')
            .ok_or_else(|| err("quantile must look like `p99`"))?;
        let percent: f64 = q_digits
            .parse()
            .map_err(|_| err("quantile is not a number"))?;
        if !(percent > 0.0 && percent < 100.0) {
            return Err(err("quantile must be in (0, 100)"));
        }
        let quantile = percent / 100.0;
        let (obj_part, budget) = match rest.split_once('@') {
            Some((o, b)) => {
                let budget: f64 = b.trim().parse().map_err(|_| err("budget is not a number"))?;
                if !(budget > 0.0 && budget <= 1.0) {
                    return Err(err("budget must be in (0, 1]"));
                }
                (o, budget)
            }
            None => (rest, 1.0 - quantile),
        };
        let objective_us: u64 = obj_part
            .trim()
            .parse()
            .map_err(|_| err("objective is not an integer microsecond count"))?;
        Ok(SloSpec {
            metric: metric.to_string(),
            quantile,
            objective_us,
            budget,
        })
    }

    /// The canonical compact form (inverse of [`SloSpec::parse`]).
    pub fn display(&self) -> String {
        format!(
            "{}:p{}<={}@{}",
            self.metric,
            trim_float(self.quantile * 100.0),
            self.objective_us,
            trim_float(self.budget)
        )
    }
}

/// Shortest-reasonable rendering of a float: six decimals, trailing zeros
/// stripped. Keeps the default budget `1 - q` from printing binary noise
/// (`0.010000000000000009`).
fn trim_float(v: f64) -> String {
    let s = format!("{v:.6}");
    let s = s.trim_end_matches('0');
    s.trim_end_matches('.').to_string()
}

/// Point-in-time verdict for one [`SloSpec`].
#[derive(Clone, Debug)]
pub struct SloReport {
    pub spec: SloSpec,
    /// Samples in the histogram at evaluation time.
    pub samples: u64,
    /// Measured quantile value in µs (`NaN` when the histogram is empty).
    pub measured_us: f64,
    /// Objective met? An empty histogram is vacuously met.
    pub met: bool,
    /// Fraction of samples above the objective.
    pub violation_fraction: f64,
    /// `violation_fraction / budget`: `>= 1.0` means the error budget is
    /// exhausted.
    pub budget_consumed: f64,
}

impl SloReport {
    /// JSON shape used by `results/profile.json`.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("slo", self.spec.display().into()),
            ("metric", self.spec.metric.as_str().into()),
            ("quantile", self.spec.quantile.into()),
            ("objective_us", self.spec.objective_us.into()),
            ("budget", self.spec.budget.into()),
            ("samples", self.samples.into()),
            ("measured_us", self.measured_us.into()),
            ("met", self.met.into()),
            ("violation_fraction", self.violation_fraction.into()),
            ("budget_consumed", self.budget_consumed.into()),
        ])
    }
}

/// Evaluates each spec against the live registry. Unknown metrics resolve
/// to empty histograms (vacuously met, zero budget consumed).
pub fn evaluate(specs: &[SloSpec]) -> Vec<SloReport> {
    specs
        .iter()
        .map(|spec| {
            let h = metrics::histogram(&spec.metric);
            let samples = h.count();
            let measured_us = h.quantile(spec.quantile);
            let violation_fraction = h.fraction_above(spec.objective_us);
            let met = samples == 0 || measured_us <= spec.objective_us as f64;
            SloReport {
                spec: spec.clone(),
                samples,
                measured_us,
                met,
                violation_fraction,
                budget_consumed: violation_fraction / spec.budget,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_and_defaults_the_budget() {
        let spec = SloSpec::parse("serve.request_latency_us:p99<=2000").expect("valid");
        assert_eq!(spec.metric, "serve.request_latency_us");
        assert_eq!(spec.quantile, 0.99);
        assert_eq!(spec.objective_us, 2000);
        assert!((spec.budget - 0.01).abs() < 1e-12);

        let spec = SloSpec::parse("m:p99.9<=5000@0.002").expect("valid");
        assert!((spec.quantile - 0.999).abs() < 1e-12);
        assert!((spec.budget - 0.002).abs() < 1e-12);
        assert_eq!(SloSpec::parse(&spec.display()).expect("round trip"), spec);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "no-colon",
            "m:99<=10",
            "m:p99<10",
            "m:p0<=10",
            "m:p100<=10",
            "m:p99<=abc",
            "m:p99<=10@0",
            "m:p99<=10@1.5",
            ":p99<=10",
        ] {
            assert!(SloSpec::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn evaluate_reads_the_live_histogram_and_accounts_the_budget() {
        let h = metrics::histogram("test.slo.latency_us");
        h.reset();
        for _ in 0..98 {
            h.record(100);
        }
        h.record(10_000);
        h.record(10_000);
        let specs = [
            SloSpec::parse("test.slo.latency_us:p50<=500").expect("spec"),
            SloSpec::parse("test.slo.latency_us:p99<=500@0.01").expect("spec"),
        ];
        let reports = evaluate(&specs);
        assert_eq!(reports.len(), 2);
        // p50 ~ 100µs: met, ~2% of samples above objective, budget 0.5.
        assert!(reports[0].met, "p50 {}", reports[0].measured_us);
        assert!((reports[0].violation_fraction - 0.02).abs() < 0.01);
        assert!(reports[0].budget_consumed < 0.1);
        // p99 ~ 10000µs: violated, budget exhausted (2% > 1%).
        assert!(!reports[1].met, "p99 {}", reports[1].measured_us);
        assert!(reports[1].budget_consumed > 1.0);
        assert_eq!(reports[1].samples, 100);
        h.reset();
    }

    #[test]
    fn empty_histogram_is_vacuously_met() {
        let spec = SloSpec::parse("test.slo.never_recorded:p99<=1").expect("spec");
        let r = &evaluate(&[spec])[0];
        assert!(r.met);
        assert_eq!(r.samples, 0);
        assert!(r.measured_us.is_nan());
        assert_eq!(r.budget_consumed, 0.0);
        let v = r.to_json_value();
        assert_eq!(v.get("met").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("samples").unwrap().as_f64(), Some(0.0));
    }
}
