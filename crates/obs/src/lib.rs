//! # embsr-obs
//!
//! The workspace's observability layer: everything the training/eval stack
//! needs to explain *what it did and how long it took*, with zero external
//! dependencies.
//!
//! * **Logging** — the [`error!`], [`warn!`], [`info!`], [`debug!`] and
//!   [`trace!`] macros emit leveled, targeted events through a set of
//!   pluggable [`Sink`]s. The console sink honors an `EMBSR_LOG`-style
//!   [`EnvFilter`] (`"info"`, `"warn,embsr_train=debug"`, …); the
//!   [`JsonlSink`] writes machine-readable JSON lines.
//! * **Spans** — [`span`] returns an RAII guard that times a scope,
//!   maintains a per-thread nesting path (`fit > epoch > batch`), records
//!   the duration into a histogram, and emits a close event.
//! * **Metrics** — [`metrics::counter`], [`metrics::gauge`] and
//!   [`metrics::histogram`] hand out `&'static` handles backed by atomics.
//!   Histograms are log-bucketed and answer p50/p95/p99 queries.
//!   Hot-path increments are gated on [`metrics::enabled`] (one relaxed
//!   atomic load when off), so instrumented inner loops cost ~nothing
//!   unless telemetry is switched on.
//! * **Tracing** — [`trace`] propagates a (trace id, span id) context
//!   across threads and emits parent/child span records through the same
//!   sinks, so a serving request's timeline (queue wait, batch assembly,
//!   scoring, top-k) is reconstructable offline from the JSONL output via
//!   [`trace::parse_jsonl`] + [`trace::build_trees`].
//! * **Profiling** — [`profile`] aggregates kernel timings into
//!   shape-bucketed rows (thread-local accumulators, one atomic load when
//!   disabled); [`profile::report`] returns them busiest-first.
//! * **SLOs** — [`slo`] parses latency objectives like
//!   `serve.request_latency_us:p99<=2000` and evaluates them against the
//!   live histograms with error-budget accounting.
//! * **Run manifests** — [`RunManifest`] serializes a whole harness run
//!   (dataset, model, config, per-epoch loss/duration, eval metrics,
//!   throughput, [`manifest::cores_available`] and
//!   [`manifest::git_revision`]) to `results/run_<name>.json`, and
//!   [`manifest::append_bench_entry`] maintains the aggregate
//!   `BENCH_table3.json` bench trajectory.
//! * **Micro-benchmarks** — [`bench`] is a tiny criterion-style harness
//!   (`harness = false` bench binaries) reporting mean/p50/p95 per
//!   iteration; it doubles as the acceptance gauge for perf PRs.
//!
//! The crate is intentionally `std`-only so every other crate in the
//! workspace (including `embsr-tensor`'s op-dispatch fast path) can depend
//! on it without pulling anything external.

pub mod bench;
mod clock;
mod filter;
mod json;
mod level;
pub mod manifest;
pub mod metrics;
pub mod profile;
mod sink;
pub mod slo;
mod span;
pub mod trace;

pub use clock::Stopwatch;
pub use filter::EnvFilter;
pub use json::{parse as parse_json, JsonValue};
pub use level::Level;
pub use manifest::{EpochRecord, MetricRecord, RunManifest};
pub use metrics::{Counter, Gauge, Histogram};
pub use sink::{
    add_sink, clear_sinks, dispatch, log_enabled, set_console_filter, ConsoleSink, Event,
    JsonlSink, MemorySink, Sink,
};
pub use span::{span, span_path, SpanGuard};
pub use trace::TraceCtx;

/// Initializes the default console sink from an environment variable
/// (conventionally `EMBSR_LOG`), falling back to `default_filter` when the
/// variable is unset or unparsable. Safe to call more than once; later
/// calls replace the console filter.
pub fn init_from_env(var: &str, default_filter: &str) {
    let spec = std::env::var(var).unwrap_or_else(|_| default_filter.to_string());
    let filter = spec
        .parse::<EnvFilter>()
        .unwrap_or_else(|_| default_filter.parse().expect("default filter parses"));
    set_console_filter(filter);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_from_env_accepts_garbage() {
        // An unparsable spec must fall back, not panic.
        std::env::set_var("EMBSR_OBS_TEST_FILTER", "===");
        init_from_env("EMBSR_OBS_TEST_FILTER", "warn");
        std::env::remove_var("EMBSR_OBS_TEST_FILTER");
    }
}
