//! Event sinks and the global dispatcher behind the log macros.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::filter::EnvFilter;
use crate::json::JsonValue;
use crate::level::Level;

/// One log event, borrowed for the duration of the dispatch.
#[derive(Debug)]
pub struct Event<'a> {
    pub level: Level,
    /// Dotted/`::` target, e.g. `embsr_train::trainer` or `exp::table3`.
    pub target: &'a str,
    pub message: &'a str,
    /// Milliseconds since the unix epoch.
    pub unix_ms: u64,
    /// `>`-joined span nesting path of the emitting thread (`""` outside
    /// any span).
    pub span_path: &'a str,
    /// Structured numeric fields (`("duration_s", 1.25)`, …).
    pub fields: &'a [(&'static str, f64)],
}

impl Event<'_> {
    /// The JSONL representation used by [`JsonlSink`].
    pub fn to_json_value(&self) -> JsonValue {
        let mut pairs = vec![
            ("ts_ms", JsonValue::Number(self.unix_ms as f64)),
            ("level", self.level.as_str().into()),
            ("target", self.target.into()),
            ("message", self.message.into()),
        ];
        if !self.span_path.is_empty() {
            pairs.push(("span", self.span_path.into()));
        }
        if !self.fields.is_empty() {
            pairs.push((
                "fields",
                JsonValue::Object(
                    self.fields
                        .iter()
                        .map(|&(k, v)| (k.to_string(), JsonValue::Number(v)))
                        .collect(),
                ),
            ));
        }
        JsonValue::object(pairs)
    }
}

/// Anything that can consume events. Implementations must be cheap to call
/// when `enabled` is false.
pub trait Sink: Send + Sync {
    /// Per-sink filtering; consulted after the global level early-out.
    fn enabled(&self, target: &str, level: Level) -> bool;

    /// Consumes one event (already known to pass `enabled`).
    fn log(&self, event: &Event<'_>);

    /// Most verbose level this sink could ever accept; feeds the global
    /// early-out cache.
    fn max_level(&self) -> Option<Level> {
        Some(Level::Trace)
    }
}

// ---------------------------------------------------------------------------
// Global dispatcher
// ---------------------------------------------------------------------------

struct Dispatcher {
    console: RwLock<Option<ConsoleSink>>,
    extra: RwLock<Vec<Arc<dyn Sink>>>,
    /// 0 = everything off; otherwise 1 + (max Level as u8).
    max_level: AtomicU8,
}

fn level_code(l: Option<Level>) -> u8 {
    match l {
        None => 0,
        Some(l) => 1 + l as u8,
    }
}

fn dispatcher() -> &'static Dispatcher {
    static D: OnceLock<Dispatcher> = OnceLock::new();
    D.get_or_init(|| {
        let spec = std::env::var("EMBSR_LOG").unwrap_or_default();
        let filter = spec.parse::<EnvFilter>().unwrap_or_default();
        let console = ConsoleSink::new(filter);
        let code = level_code(console.filter.max_level());
        Dispatcher {
            console: RwLock::new(Some(console)),
            extra: RwLock::new(Vec::new()),
            max_level: AtomicU8::new(code),
        }
    })
}

fn recompute_max_level(d: &Dispatcher) {
    let console_max = d
        .console
        .read()
        .unwrap()
        .as_ref()
        .and_then(|c| c.filter.max_level());
    let extra_max = d
        .extra
        .read()
        .unwrap()
        .iter()
        .filter_map(|s| s.max_level())
        .max();
    // ordering: Release pairs with sink registration happening under the
    // RwLock above; readers doing the Relaxed fast-path check only risk
    // evaluating one extra (or one fewer) log call during a reconfigure.
    d.max_level
        .store(level_code(console_max.max(extra_max)), Ordering::Release);
}

/// Replaces the console sink's filter (`None`-like silencing is expressed
/// with [`EnvFilter::off`]).
pub fn set_console_filter(filter: EnvFilter) {
    let d = dispatcher();
    *d.console.write().unwrap() = Some(ConsoleSink::new(filter));
    recompute_max_level(d);
}

/// Registers an additional sink (JSONL writers, test collectors).
pub fn add_sink(sink: Arc<dyn Sink>) {
    let d = dispatcher();
    d.extra.write().unwrap().push(sink);
    recompute_max_level(d);
}

/// Removes all extra sinks (tests); the console sink stays.
pub fn clear_sinks() {
    let d = dispatcher();
    d.extra.write().unwrap().clear();
    recompute_max_level(d);
}

/// Cheap global pre-check used by the log macros: one relaxed atomic load.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    // ordering: Relaxed — a pre-filter only; dispatch re-checks under the
    // sink locks, so a stale level is never a correctness problem.
    let code = dispatcher().max_level.load(Ordering::Relaxed);
    (level as u8) < code
}

/// Milliseconds since the unix epoch (0 if the clock is before 1970).
pub fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Formats and fans an event out to every interested sink. Called by the
/// macros after [`log_enabled`]; also usable directly for field-carrying
/// events.
pub fn dispatch(
    level: Level,
    target: &str,
    message: std::fmt::Arguments<'_>,
    fields: &[(&'static str, f64)],
) {
    let d = dispatcher();
    let rendered;
    let message = match message.as_str() {
        Some(s) => s,
        None => {
            rendered = message.to_string();
            &rendered
        }
    };
    let path = crate::span::span_path();
    let event = Event {
        level,
        target,
        message,
        unix_ms: unix_ms(),
        span_path: &path,
        fields,
    };
    if let Some(console) = d.console.read().unwrap().as_ref() {
        if console.enabled(target, level) {
            console.log(&event);
        }
    }
    for sink in d.extra.read().unwrap().iter() {
        if sink.enabled(target, level) {
            sink.log(&event);
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Emits an event at an explicit [`Level`].
#[macro_export]
macro_rules! log_event {
    ($level:expr, target: $target:expr, $($arg:tt)+) => {
        if $crate::log_enabled($level) {
            $crate::dispatch($level, $target, format_args!($($arg)+), &[]);
        }
    };
    ($level:expr, $($arg:tt)+) => {
        $crate::log_event!($level, target: module_path!(), $($arg)+)
    };
}

/// Emits an error-level event: `error!(target: "t", "fmt {}", x)`.
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::log_event!($crate::Level::Error, $($arg)+) };
}

/// Emits a warn-level event.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)+) => { $crate::log_event!($crate::Level::Warn, $($arg)+) };
}

/// Emits an info-level event.
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::log_event!($crate::Level::Info, $($arg)+) };
}

/// Emits a debug-level event.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::log_event!($crate::Level::Debug, $($arg)+) };
}

/// Emits a trace-level event.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::log_event!($crate::Level::Trace, $($arg)+) };
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Human-readable sink writing `LEVEL target: message` lines to stderr,
/// filtered by an [`EnvFilter`].
pub struct ConsoleSink {
    filter: EnvFilter,
}

impl ConsoleSink {
    pub fn new(filter: EnvFilter) -> Self {
        ConsoleSink { filter }
    }
}

impl Sink for ConsoleSink {
    fn enabled(&self, target: &str, level: Level) -> bool {
        self.filter.enabled(target, level)
    }

    fn log(&self, event: &Event<'_>) {
        let mut line = format!("{} {}", event.level.tag(), event.target);
        if !event.span_path.is_empty() {
            line.push_str(&format!(" [{}]", event.span_path));
        }
        line.push_str(": ");
        line.push_str(event.message);
        for (k, v) in event.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }

    fn max_level(&self) -> Option<Level> {
        self.filter.max_level()
    }
}

/// Machine-readable sink writing one JSON object per event.
pub struct JsonlSink {
    filter: EnvFilter,
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Wraps any writer; `filter` decides which events are recorded.
    pub fn new(writer: Box<dyn Write + Send>, filter: EnvFilter) -> Self {
        JsonlSink {
            filter,
            writer: Mutex::new(writer),
        }
    }

    /// Appends events to a file (created if missing).
    pub fn file(path: &std::path::Path, filter: EnvFilter) -> std::io::Result<Self> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(f)), filter))
    }
}

impl Sink for JsonlSink {
    fn enabled(&self, target: &str, level: Level) -> bool {
        self.filter.enabled(target, level)
    }

    fn log(&self, event: &Event<'_>) {
        let line = event.to_json_value().to_json();
        let mut w = self.writer.lock().unwrap();
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }

    fn max_level(&self) -> Option<Level> {
        self.filter.max_level()
    }
}

/// Test sink collecting rendered JSONL lines in memory.
#[derive(Clone, Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything logged so far, one JSON document per element.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().clone()
    }
}

impl Sink for MemorySink {
    fn enabled(&self, _target: &str, _level: Level) -> bool {
        true
    }

    fn log(&self, event: &Event<'_>) {
        self.lines
            .lock()
            .unwrap()
            .push(event.to_json_value().to_json());
    }
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    // Serializes tests that mutate the global dispatcher.
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn jsonl_lines_have_the_documented_shape() {
        let _g = test_guard();
        clear_sinks();
        let mem = MemorySink::new();
        add_sink(Arc::new(mem.clone()));

        crate::info!(target: "exp::test", "hello {}", 42);
        crate::debug!(target: "exp::test", "with spaces and \"quotes\"");
        dispatch(
            Level::Info,
            "exp::fields",
            format_args!("epoch done"),
            &[("loss", 0.5), ("duration_s", 1.25)],
        );

        let lines = mem.lines();
        clear_sinks();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = parse(line).expect("valid json line");
            assert!(v.get("ts_ms").unwrap().as_f64().unwrap() > 0.0);
            assert!(v.get("level").unwrap().as_str().is_some());
            assert!(v.get("target").unwrap().as_str().unwrap().starts_with("exp::"));
            assert!(v.get("message").unwrap().as_str().is_some());
        }
        let v = parse(&lines[0]).unwrap();
        assert_eq!(v.get("message").unwrap().as_str(), Some("hello 42"));
        let f = parse(&lines[2]).unwrap();
        let fields = f.get("fields").unwrap();
        assert_eq!(fields.get("loss").unwrap().as_f64(), Some(0.5));
        assert_eq!(fields.get("duration_s").unwrap().as_f64(), Some(1.25));
    }

    #[test]
    fn default_target_is_module_path() {
        let _g = test_guard();
        clear_sinks();
        let mem = MemorySink::new();
        add_sink(Arc::new(mem.clone()));
        crate::warn!("no explicit target");
        let lines = mem.lines();
        clear_sinks();
        let v = parse(&lines[0]).unwrap();
        assert_eq!(
            v.get("target").unwrap().as_str(),
            Some("embsr_obs::sink::tests")
        );
    }

    #[test]
    fn jsonl_sink_filters_by_level() {
        let _g = test_guard();
        clear_sinks();

        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink::new(
            Box::new(SharedBuf(buf.clone())),
            "warn".parse().unwrap(),
        );
        add_sink(Arc::new(sink));
        crate::info!(target: "t", "filtered out");
        crate::error!(target: "t", "kept");
        clear_sinks();

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("kept"));
    }
}
