//! Shape-bucketed kernel profiling.
//!
//! The GEMM/gather hot paths in `embsr-tensor` call [`record`] with the
//! operand shape and elapsed microseconds of each invocation. Samples land
//! in a **thread-local** accumulator keyed by `(site, m, k, n)` with each
//! dimension rounded up to the next power of two, so a steady-state
//! workload produces a handful of rows instead of millions — and the hot
//! path takes no lock. Per-thread tables merge into the global table when
//! a thread exits (pool workers) or via [`flush_thread`]; [`report`]
//! flushes the calling thread and returns rows busiest-first.
//!
//! # Cost when disabled
//!
//! Profiling is off by default. The instrumentation pattern at a call
//! site is
//!
//! ```ignore
//! let watch = profile::enabled().then(Stopwatch::start);
//! // ... unchanged kernel body ...
//! if let Some(w) = watch {
//!     profile::record("gemm_ab", m, k, n, w.elapsed_us(), flops);
//! }
//! ```
//!
//! which costs one relaxed atomic load when off and never alters the
//! arithmetic, so the bitwise equivalence suites are unaffected either
//! way.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::json::JsonValue;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns profiling on or off (off by default).
pub fn set_enabled(on: bool) {
    // ordering: Relaxed — a standalone flag; nothing is published through
    // it, and late observers only miss a few samples.
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is profiling on? One relaxed atomic load — the only cost a call site
/// pays when profiling is disabled.
#[inline]
pub fn enabled() -> bool {
    // ordering: Relaxed — best-effort gate; a stale read skips or adds one
    // sample, never corrupts state.
    ENABLED.load(Ordering::Relaxed)
}

type Key = (&'static str, usize, usize, usize);

#[derive(Clone, Copy, Default)]
struct Acc {
    calls: u64,
    total_us: u64,
    flops: u64,
}

impl Acc {
    fn merge(&mut self, other: &Acc) {
        self.calls += other.calls;
        self.total_us += other.total_us;
        self.flops += other.flops;
    }
}

fn global() -> MutexGuard<'static, HashMap<Key, Acc>> {
    static G: OnceLock<Mutex<HashMap<Key, Acc>>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

struct LocalBuf(RefCell<HashMap<Key, Acc>>);

impl Drop for LocalBuf {
    fn drop(&mut self) {
        // Thread exit: merge whatever this thread accumulated.
        let map = self.0.borrow();
        if !map.is_empty() {
            let mut g = global();
            for (k, a) in map.iter() {
                g.entry(*k).or_default().merge(a);
            }
        }
    }
}

thread_local! {
    static LOCAL: LocalBuf = LocalBuf(RefCell::new(HashMap::new()));
}

fn pow2_bucket(v: usize) -> usize {
    if v <= 1 {
        v
    } else {
        v.next_power_of_two()
    }
}

/// Records one timed call at `site` with operand shape `(m, k, n)` (use
/// `0` for dimensions that do not apply), `us` elapsed microseconds and
/// `flops` floating-point operations (0 when not meaningful). Dimensions
/// are bucketed up to the next power of two. No-op when disabled.
pub fn record(site: &'static str, m: usize, k: usize, n: usize, us: u64, flops: u64) {
    if !enabled() {
        return;
    }
    let key = (site, pow2_bucket(m), pow2_bucket(k), pow2_bucket(n));
    let sample = Acc {
        calls: 1,
        total_us: us,
        flops,
    };
    // `try_with` so a record during thread teardown (after the local table
    // already dropped) degrades to the global table instead of aborting.
    let local = LOCAL.try_with(|l| l.0.borrow_mut().entry(key).or_default().merge(&sample));
    if local.is_err() {
        global().entry(key).or_default().merge(&sample);
    }
}

/// Merges the calling thread's accumulator into the global table. Threads
/// that exit flush automatically; long-lived threads call this (or rely on
/// [`report`], which flushes the caller) before a snapshot is taken.
pub fn flush_thread() {
    let _ = LOCAL.try_with(|l| {
        let mut map = l.0.borrow_mut();
        if map.is_empty() {
            return;
        }
        let mut g = global();
        for (k, a) in map.iter() {
            g.entry(*k).or_default().merge(a);
        }
        map.clear();
    });
}

/// One aggregated row of the profile report.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileEntry {
    /// Call-site label (`"gemm_ab"`, `"gather_rows"`, …).
    pub site: &'static str,
    /// Power-of-two shape bucket (upper bounds of the true dimensions).
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub calls: u64,
    pub total_us: u64,
    pub flops: u64,
}

impl ProfileEntry {
    /// Achieved throughput in GFLOP/s (0 when no time or no flops were
    /// recorded).
    pub fn gflops(&self) -> f64 {
        if self.total_us == 0 || self.flops == 0 {
            0.0
        } else {
            self.flops as f64 / (self.total_us as f64 * 1e3)
        }
    }

    /// JSON shape used by `results/profile.json`.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("site", self.site.into()),
            ("m", self.m.into()),
            ("k", self.k.into()),
            ("n", self.n.into()),
            ("calls", self.calls.into()),
            ("total_us", self.total_us.into()),
            ("flops", self.flops.into()),
            ("gflops", self.gflops().into()),
        ])
    }
}

/// Flushes the calling thread and returns the aggregated rows, busiest
/// (largest `total_us`) first; ties broken by site then shape for a
/// deterministic report.
pub fn report() -> Vec<ProfileEntry> {
    flush_thread();
    let g = global();
    let mut rows: Vec<ProfileEntry> = g
        .iter()
        .map(|(&(site, m, k, n), a)| ProfileEntry {
            site,
            m,
            k,
            n,
            calls: a.calls,
            total_us: a.total_us,
            flops: a.flops,
        })
        .collect();
    drop(g);
    rows.sort_by(|a, b| {
        b.total_us
            .cmp(&a.total_us)
            .then_with(|| a.site.cmp(b.site))
            .then_with(|| (a.m, a.k, a.n).cmp(&(b.m, b.k, b.n)))
    });
    rows
}

/// Clears the global table and the calling thread's accumulator. Other
/// live threads keep their local samples until they flush or exit.
pub fn reset() {
    let _ = LOCAL.try_with(|l| l.0.borrow_mut().clear());
    global().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    // The accumulator is process-global; serialize the tests that touch it.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: TestMutex<()> = TestMutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _g = guard();
        reset();
        set_enabled(false);
        record("gemm_test_off", 8, 8, 8, 100, 1024);
        assert!(report().iter().all(|e| e.site != "gemm_test_off"));
    }

    #[test]
    fn shapes_bucket_to_powers_of_two_and_aggregate() {
        let _g = guard();
        reset();
        set_enabled(true);
        record("gemm_test_agg", 60, 100, 129, 10, 1000);
        record("gemm_test_agg", 64, 70, 200, 30, 3000);
        set_enabled(false);
        let rows = report();
        let row = rows
            .iter()
            .find(|e| e.site == "gemm_test_agg")
            .expect("aggregated row");
        assert_eq!((row.m, row.k, row.n), (64, 128, 256));
        assert_eq!(row.calls, 2);
        assert_eq!(row.total_us, 40);
        assert_eq!(row.flops, 4000);
        assert!((row.gflops() - 0.1).abs() < 1e-9, "gflops {}", row.gflops());
        reset();
    }

    #[test]
    fn worker_threads_flush_on_exit_and_report_sorts_busiest_first() {
        let _g = guard();
        reset();
        set_enabled(true);
        std::thread::spawn(|| {
            record("profile_test_worker", 4, 4, 4, 500, 0);
        })
        .join()
        .expect("worker");
        record("profile_test_main", 4, 4, 4, 20, 0);
        set_enabled(false);
        let rows = report();
        let pos = |site: &str| rows.iter().position(|e| e.site == site);
        let (w, m) = (
            pos("profile_test_worker").expect("worker row"),
            pos("profile_test_main").expect("main row"),
        );
        assert!(w < m, "busiest row first: worker(500us) before main(20us)");
        reset();
    }

    #[test]
    fn zero_dims_and_json_shape() {
        let _g = guard();
        reset();
        set_enabled(true);
        record("gather_test", 33, 16, 0, 7, 0);
        set_enabled(false);
        let rows = report();
        let row = rows.iter().find(|e| e.site == "gather_test").expect("row");
        assert_eq!((row.m, row.k, row.n), (64, 16, 0));
        let v = row.to_json_value();
        assert_eq!(v.get("site").unwrap().as_str(), Some("gather_test"));
        assert_eq!(v.get("calls").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("total_us").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("gflops").unwrap().as_f64(), Some(0.0));
        reset();
    }
}
