//! Global metrics registry: counters, gauges, and log-bucketed histograms.
//!
//! Handles are `&'static` (registered values are leaked once) so hot paths
//! can cache them in a `OnceLock` and pay only a relaxed atomic op per
//! update. All update methods are additionally gated on the global
//! [`enabled`] switch *at the call site* of the instrumented crates, so an
//! un-instrumented run costs a single atomic load per probe.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Global switch
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns hot-path metric collection on or off (off by default).
pub fn set_enabled(on: bool) {
    // ordering: Release so metrics registered before the flip are visible
    // to probes that observe it; readers that lag only miss some samples.
    ENABLED.store(on, Ordering::Release);
}

/// Whether instrumented hot paths should record (one relaxed load).
#[inline(always)]
pub fn enabled() -> bool {
    // ordering: Relaxed — the flag gates best-effort sampling only; a
    // stale read just delays when a probe notices the switch.
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Metric types
// ---------------------------------------------------------------------------

/// Monotonically increasing event count.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        // ordering: Relaxed — independent event counts; the RMW is atomic
        // and no other memory is published through the counter.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        // ordering: Relaxed — a snapshot read; counts may lag in-flight adds.
        self.value.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        // ordering: Relaxed — test/bench-only zeroing, no synchronization.
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-written floating-point value.
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub fn set(&self, v: f64) {
        // ordering: Relaxed — last-writer-wins value, no ordering contract.
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        // ordering: Relaxed — a snapshot read of a standalone value.
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub fn reset(&self) {
        self.set(0.0);
    }
}

const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS; // 4 sub-buckets per power-of-two octave
const BUCKETS: usize = 64 * SUBS; // indices 0..=255

/// Log-bucketed histogram over `u64` samples (durations in µs, sizes in
/// bytes, …). Each power-of-two octave is split into 4 sub-buckets, so
/// quantile answers are exact to within ~12.5% relative error while the
/// whole histogram is 256 fixed atomics — no allocation, no locking.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    let sub = ((v >> (octave - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    octave as usize * SUBS + sub
}

/// Midpoint of a bucket's value range (its representative for quantiles).
fn bucket_mid(idx: usize) -> f64 {
    if idx < SUBS {
        return idx as f64;
    }
    let octave = (idx / SUBS) as u32;
    let sub = (idx % SUBS) as u64;
    let width = 1u64 << (octave - SUB_BITS);
    let lower = (1u64 << octave) + sub * width;
    lower as f64 + width as f64 / 2.0
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        // ordering: Relaxed throughout — each field is an independent
        // statistic; readers tolerate tearing between them by design.
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        // ordering: Relaxed — snapshot read, may lag concurrent records.
        self.count.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return f64::NAN;
        }
        // ordering: Relaxed — sum and count may tear vs. each other; the
        // mean is a best-effort statistic, not an invariant.
        self.sum.load(Ordering::Relaxed) as f64 / n as f64
    }

    pub fn min(&self) -> Option<u64> {
        // ordering: Relaxed — snapshot read of an independent statistic.
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    pub fn max(&self) -> Option<u64> {
        // ordering: Relaxed — snapshot read of an independent statistic.
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.5` = p50) as a bucket-midpoint estimate, exact
    /// to within one sub-bucket (~12.5% relative). `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return f64::NAN;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        // ordering: Relaxed — bucket reads may interleave with writers;
        // quantiles are estimates with a documented error bound anyway.
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_mid(idx);
            }
        }
        bucket_mid(BUCKETS - 1)
    }

    /// Fraction of recorded samples above `threshold` (`0.0` when empty),
    /// judged by bucket midpoint — subject to the same ~12.5% relative
    /// bucketing error as [`Histogram::quantile`]. This is the violation
    /// rate the SLO error-budget accounting consumes.
    pub fn fraction_above(&self, threshold: u64) -> f64 {
        let mut total = 0u64;
        let mut above = 0u64;
        // ordering: Relaxed — same best-effort bucket snapshot as quantile.
        for (idx, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            total += c;
            if bucket_mid(idx) > threshold as f64 {
                above += c;
            }
        }
        if total == 0 {
            0.0
        } else {
            above as f64 / total as f64
        }
    }

    pub fn reset(&self) {
        // ordering: Relaxed — test/bench-only zeroing, no synchronization.
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum MetricRef {
    C(&'static Counter),
    G(&'static Gauge),
    H(&'static Histogram),
}

fn registry() -> &'static Mutex<HashMap<String, MetricRef>> {
    static R: OnceLock<Mutex<HashMap<String, MetricRef>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Looks up or registers the counter `name`.
///
/// # Panics
/// Panics when `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry().lock().unwrap();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| MetricRef::C(Box::leak(Box::default())))
    {
        MetricRef::C(c) => c,
        _ => panic!("metric '{name}' is not a counter"),
    }
}

/// Looks up or registers the gauge `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    gauge_owned(name.to_string())
}

/// [`gauge`] taking an owned name (avoids a copy for dynamic names).
pub fn gauge_owned(name: String) -> &'static Gauge {
    let mut reg = registry().lock().unwrap();
    match reg
        .entry(name)
        .or_insert_with(|| MetricRef::G(Box::leak(Box::default())))
    {
        MetricRef::G(g) => g,
        _ => panic!("gauge name already used by another metric kind"),
    }
}

/// Looks up or registers the histogram `name`.
pub fn histogram(name: &str) -> &'static Histogram {
    histogram_owned(name.to_string())
}

/// [`histogram`] taking an owned name (avoids a copy for dynamic names).
pub fn histogram_owned(name: String) -> &'static Histogram {
    let mut reg = registry().lock().unwrap();
    match reg
        .entry(name)
        .or_insert_with(|| MetricRef::H(Box::leak(Box::default())))
    {
        MetricRef::H(h) => h,
        _ => panic!("histogram name already used by another metric kind"),
    }
}

/// Point-in-time view of one registered metric.
pub struct MetricSnapshot {
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// Counter count, gauge value, or histogram sample count.
    pub value: f64,
    /// Histograms only: `(mean, p50, p95, p99, max)` in recorded units.
    pub quantiles: Option<(f64, f64, f64, f64, f64)>,
}

/// Snapshots every registered metric, sorted by name.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = registry().lock().unwrap();
    let mut out: Vec<MetricSnapshot> = reg
        .iter()
        .map(|(name, m)| match m {
            MetricRef::C(c) => MetricSnapshot {
                name: name.clone(),
                kind: "counter",
                value: c.get() as f64,
                quantiles: None,
            },
            MetricRef::G(g) => MetricSnapshot {
                name: name.clone(),
                kind: "gauge",
                value: g.get(),
                quantiles: None,
            },
            MetricRef::H(h) => MetricSnapshot {
                name: name.clone(),
                kind: "histogram",
                value: h.count() as f64,
                quantiles: Some((
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.max().unwrap_or(0) as f64,
                )),
            },
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Zeroes every registered metric (benches and tests).
pub fn reset_all() {
    let reg = registry().lock().unwrap();
    for m in reg.values() {
        match m {
            MetricRef::C(c) => c.reset(),
            MetricRef::G(g) => g.reset(),
            MetricRef::H(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 1000, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index not monotone at {v}");
            assert!(idx < BUCKETS);
            prev = idx;
        }
        // representative stays within 12.5% of any value in the bucket
        for v in [1u64, 9, 57, 1000, 123_456, 999_999_937] {
            let mid = bucket_mid(bucket_index(v));
            let rel = (mid - v as f64).abs() / v as f64;
            assert!(rel <= 0.125 + 1e-9, "value {v}: mid {mid} rel {rel}");
        }
    }

    #[test]
    fn quantiles_of_uniform_range_are_accurate() {
        let h = Histogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        for (q, expect) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.13, "q{q}: got {got}, want ~{expect} (rel {rel})");
        }
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(10_000));
        assert!((h.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::default();
        assert!(h.quantile(0.5).is_nan());
        h.record(42);
        // a single sample answers every quantile with its own bucket
        let rel = (h.quantile(0.0) - 42.0).abs() / 42.0;
        assert!(rel <= 0.125);
        assert_eq!(h.quantile(0.0), h.quantile(1.0));
    }

    #[test]
    fn fraction_above_tracks_the_tail() {
        let h = Histogram::default();
        assert_eq!(h.fraction_above(0), 0.0);
        for v in 1..=1_000u64 {
            h.record(v);
        }
        // ~10% of the uniform range exceeds 900, within bucketing error.
        let frac = h.fraction_above(900);
        assert!((frac - 0.10).abs() < 0.05, "fraction {frac}");
        assert_eq!(h.fraction_above(u64::MAX), 0.0);
        let all = h.fraction_above(0);
        assert!(all > 0.99, "almost everything above 0, got {all}");
    }

    #[test]
    fn zero_and_small_values_are_exact() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.01), 0.0);
        assert_eq!(h.quantile(1.0), 3.0);
    }

    #[test]
    fn registry_hands_out_stable_handles() {
        let c1 = counter("test.registry.c");
        let c2 = counter("test.registry.c");
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3);
        assert!(std::ptr::eq(c1, c2));

        let g = gauge("test.registry.g");
        g.set(2.5);
        assert_eq!(gauge("test.registry.g").get(), 2.5);
    }

    #[test]
    fn snapshot_contains_registered_metrics() {
        counter("test.snap.c").add(7);
        gauge("test.snap.g").set(1.5);
        histogram("test.snap.h").record(10);
        let snap = snapshot();
        let find = |n: &str| snap.iter().find(|m| m.name == n).unwrap();
        assert_eq!(find("test.snap.c").kind, "counter");
        assert!(find("test.snap.c").value >= 7.0);
        assert_eq!(find("test.snap.g").value, 1.5);
        let h = find("test.snap.h");
        assert_eq!(h.kind, "histogram");
        assert!(h.quantiles.is_some());
        // sorted by name
        let names: Vec<&str> = snap.iter().map(|m| m.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn enabled_flag_toggles() {
        assert!(!enabled() || enabled()); // no crash; default off unless another test enabled it
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
    }
}
