//! RAII scope timers with per-thread nesting.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use crate::level::Level;
use crate::metrics;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The `>`-joined names of the spans currently open on this thread
/// (`"fit>epoch>batch"`), or `""` when none.
pub fn span_path() -> String {
    STACK.with(|s| s.borrow().join(">"))
}

/// Opens a span: pushes `name` onto the thread's span stack and starts the
/// clock. Dropping the returned guard pops the stack, records the duration
/// into the histogram `span.<name>` (microseconds, when
/// [`metrics::enabled`]), and emits a close event at the guard's level
/// (default [`Level::Debug`]).
pub fn span(target: &'static str, name: &'static str) -> SpanGuard {
    STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard {
        target,
        name,
        start: Instant::now(),
        close_level: Level::Debug,
    }
}

/// Guard returned by [`span`]; the span closes when this drops.
pub struct SpanGuard {
    target: &'static str,
    name: &'static str,
    start: Instant,
    close_level: Level,
}

impl SpanGuard {
    /// Time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Overrides the level of the close event (e.g. [`Level::Trace`] for
    /// per-batch spans that would flood debug output).
    pub fn with_close_level(mut self, level: Level) -> Self {
        self.close_level = level;
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        // Pop before emitting so the close event carries the *outer* path.
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            debug_assert_eq!(stack.last().copied(), Some(self.name), "span stack order");
            stack.pop();
        });
        if metrics::enabled() {
            metrics::histogram_owned(format!("span.{}", self.name))
                .record(elapsed.as_micros() as u64);
        }
        if crate::log_enabled(self.close_level) {
            crate::dispatch(
                self.close_level,
                self.target,
                format_args!("{} closed", self.name),
                &[("duration_s", elapsed.as_secs_f64())],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{add_sink, clear_sinks, test_guard, MemorySink};
    use std::sync::Arc;

    #[test]
    fn paths_nest_and_unwind() {
        assert_eq!(span_path(), "");
        let _a = span("t", "fit");
        assert_eq!(span_path(), "fit");
        {
            let _b = span("t", "epoch");
            assert_eq!(span_path(), "fit>epoch");
            {
                let _c = span("t", "batch");
                assert_eq!(span_path(), "fit>epoch>batch");
            }
            assert_eq!(span_path(), "fit>epoch");
        }
        assert_eq!(span_path(), "fit");
        drop(_a);
        assert_eq!(span_path(), "");
    }

    #[test]
    fn close_event_carries_duration_and_outer_path() {
        let _g = test_guard();
        clear_sinks();
        let mem = MemorySink::new();
        add_sink(Arc::new(mem.clone()));
        {
            let _outer = span("spans", "outer");
            let inner = span("spans", "inner");
            std::thread::sleep(Duration::from_millis(2));
            assert!(inner.elapsed() >= Duration::from_millis(2));
        }
        let lines = mem.lines();
        clear_sinks();
        // inner closes first; its event is inside "outer"
        let inner = crate::json::parse(&lines[0]).unwrap();
        assert_eq!(inner.get("message").unwrap().as_str(), Some("inner closed"));
        assert_eq!(inner.get("span").unwrap().as_str(), Some("outer"));
        let dur = inner
            .get("fields")
            .unwrap()
            .get("duration_s")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(dur >= 0.002, "duration {dur}");
        // outer closes outside any span: no "span" key
        let outer = crate::json::parse(&lines[1]).unwrap();
        assert_eq!(outer.get("message").unwrap().as_str(), Some("outer closed"));
        assert!(outer.get("span").is_none());
    }

    #[test]
    fn span_histogram_records_when_metrics_enabled() {
        let _g = test_guard();
        metrics::set_enabled(true);
        {
            let _s = span("t", "histo_span_test");
        }
        metrics::set_enabled(false);
        let h = metrics::histogram("span.histo_span_test");
        assert!(h.count() >= 1);
    }
}
