//! A minimal JSON value model, writer, and parser.
//!
//! The workspace stays dependency-free, so manifests, the JSONL sink, and
//! their tests share this ~300-line implementation instead of a JSON crate.
//! It supports the full JSON data model; numbers are `f64` (adequate for
//! metrics and epoch statistics). Non-finite numbers serialize as `null`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or to-be-serialized JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    /// Sorted keys give deterministic output, which keeps manifests diffable.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(*n, out),
            JsonValue::String(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns a descriptive error on malformed input.
pub fn parse(src: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| "invalid utf-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &JsonValue) -> JsonValue {
        parse(&v.to_json()).expect("roundtrip parse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::Number(0.0),
            JsonValue::Number(-17.5),
            JsonValue::Number(3.0e20),
            JsonValue::String("héllo \"w\"\n\tworld \\ ok".into()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        assert_eq!(JsonValue::Number(42.0).to_json(), "42");
        assert_eq!(JsonValue::Number(-3.0).to_json(), "-3");
        assert_eq!(JsonValue::Number(2.5).to_json(), "2.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = JsonValue::object(vec![
            ("name", "EMBSR".into()),
            (
                "epochs",
                JsonValue::Array(vec![
                    JsonValue::object(vec![("loss", 1.25.into()), ("dur", 0.5.into())]),
                    JsonValue::object(vec![("loss", 0.75.into()), ("dur", JsonValue::Null)]),
                ]),
            ),
            ("ok", true.into()),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn parses_foreign_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\\/\" ] } ").unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(25.0));
        assert_eq!(a[2].as_str(), Some("A/"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "nul", "1 2", "\"abc"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
