//! Send-safe wall-clock timing.
//!
//! [`SpanGuard`](crate::SpanGuard) maintains a per-thread nesting path, so it
//! must not cross threads; code that needs to time an interval *across*
//! threads (e.g. a serving request that is enqueued on one thread and scored
//! on another) uses a [`Stopwatch`] instead. This module lives in `embsr-obs`
//! because the workspace lint confines `std::time::Instant` to this crate.

use std::time::{Duration, Instant};

/// A started wall clock that can be read from any thread.
///
/// Unlike a span it carries no logging, no nesting path and no histogram —
/// callers decide what to do with the measured [`Duration`] (typically
/// record it into a [`crate::metrics::histogram`]).
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed time in whole microseconds, saturating at `u64::MAX` —
    /// the unit the latency histograms record.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let w = Stopwatch::start();
        let a = w.elapsed();
        let b = w.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_crosses_threads() {
        let w = Stopwatch::start();
        let us = std::thread::spawn(move || w.elapsed_us())
            .join()
            .expect("timer thread");
        assert!(us < 60_000_000, "sane elapsed reading, got {us}us");
    }
}
