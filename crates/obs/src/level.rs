//! Log severity levels.

use std::fmt;
use std::str::FromStr;

/// Severity of a log event, ordered from most to least severe.
///
/// `Level::Error < Level::Trace` in the derived ordering, so "`lvl` passes a
/// threshold `max`" is written `lvl <= max`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Level {
    Error,
    Warn,
    Info,
    Debug,
    Trace,
}

impl Level {
    /// All levels, most severe first.
    pub const ALL: [Level; 5] = [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ];

    /// Lower-case name (`"info"`), as used by the filter syntax.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Five-character upper-case tag for aligned console output.
    pub fn tag(&self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN ",
            Level::Info => "INFO ",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!("unknown log level '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_severity_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Debug < Level::Trace);
        // threshold check idiom
        assert!(Level::Info <= Level::Debug);
        assert!(Level::Trace > Level::Info);
    }

    #[test]
    fn parse_roundtrip() {
        for l in Level::ALL {
            assert_eq!(l.as_str().parse::<Level>().unwrap(), l);
        }
        assert_eq!("WARNING".parse::<Level>().unwrap(), Level::Warn);
        assert!("loud".parse::<Level>().is_err());
    }
}
