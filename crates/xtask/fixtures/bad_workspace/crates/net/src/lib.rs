//! Fixture: a net entry point without any observability instrumentation —
//! the span-coverage ratchet extends past `crates/serve` to the networked
//! serving crate.

/// Handles a framed request without opening a span — the
/// serve-span-coverage rule must flag this (new files get no baseline
/// allowance).
pub fn handle_unobserved(payload: &[u8]) -> usize {
    payload.len()
}

/// Decoy: an instrumented entry point must NOT be flagged.
pub fn handle_observed(payload: &[u8]) -> usize {
    let _span = embsr_obs::span("fixture", "handle_observed");
    payload.len()
}
