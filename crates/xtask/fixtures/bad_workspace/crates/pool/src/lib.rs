//! Fixture: the three lock-discipline violation shapes, plus decoys.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Poison-recovering lock helper (mirrors the real pool crate's).
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Trips lock-discipline (a): an `if`-guarded Condvar wait — spurious
/// wakeups and racing predicates need a `while` re-check.
pub fn wait_once(cv: &Condvar, m: &Mutex<bool>) {
    let mut ready = lock(m);
    if !*ready {
        ready = match cv.wait(ready) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
    }
    *ready = false;
}

/// Trips lock-discipline (b): the same mutex locked again while the first
/// guard is still live (std::sync::Mutex is not reentrant).
pub fn double_lock(m: &Mutex<u32>) -> u32 {
    let a = lock(m);
    let b = lock(m);
    *a + *b
}

/// Trips lock-discipline (c): a guard held across a spawn boundary.
pub fn hold_across_scope(m: &Mutex<u32>) {
    let g = lock(m);
    std::thread::scope(|s| {
        s.spawn(|| ());
    });
    drop(g);
}

/// Decoy: the canonical loop re-check must NOT be flagged.
pub fn wait_loop(cv: &Condvar, m: &Mutex<bool>) {
    let mut ready = lock(m);
    while !*ready {
        ready = match cv.wait(ready) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
    }
}

/// Decoy: dropping the guard before re-locking must NOT be flagged.
pub fn relock_after_drop(m: &Mutex<u32>) -> u32 {
    let a = lock(m);
    let first = *a;
    drop(a);
    let b = lock(m);
    first + *b
}
