//! Fixture: ad-hoc gradient merging in crates/train that bypasses the
//! fixed-order tree reduction.

/// Trips float-reduction-order: element-wise `+=` over two indexed bases.
pub fn merge(acc: &mut [f32], shard: &[f32]) {
    for i in 0..acc.len() {
        acc[i] += shard[i];
    }
}

/// Trips float-reduction-order (the `.zip(` loop form).
pub fn merge_zip(acc: &mut [f32], shard: &[f32]) {
    for (a, s) in acc.iter_mut().zip(shard.iter()) {
        *a += *s;
    }
}

/// Decoy: a justified accumulation must NOT be flagged.
pub fn merge_justified(acc: &mut [f32], shard: &[f32]) {
    for i in 0..acc.len() {
        // reduce: fixture decoy — the index loop fixes the order
        acc[i] += shard[i];
    }
}
