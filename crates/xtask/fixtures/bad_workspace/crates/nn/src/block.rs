// Seeded lint-violation fixture (never compiled by the real workspace):
// line 5 trips nn-forward-unification — an ad-hoc `pub fn forward` in
// crates/nn instead of a `Forward` trait impl.
/// A block dodging the unified module API.
pub fn forward(x: f32) -> f32 {
    x
}
