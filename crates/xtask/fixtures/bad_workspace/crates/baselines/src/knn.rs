//! Fixture: a HashMap iteration whose hash order leaks into an f32 sum.

use std::collections::HashMap;

/// Trips map-iteration-determinism: the accumulation below follows the
/// map's per-instance hash order, so the float total is nondeterministic.
pub fn accumulate(weights: &HashMap<u32, f32>) -> f32 {
    let mut total = 0.0;
    for (_, w) in weights.iter() {
        total += w;
    }
    total
}

/// Decoy: draining into a key-sorted list must NOT be flagged (the sort in
/// the following statement launders the iteration).
pub fn sorted_pairs(weights: &HashMap<u32, f32>) -> Vec<(u32, f32)> {
    let mut pairs: Vec<(u32, f32)> = weights.iter().map(|(&k, &v)| (k, v)).collect();
    pairs.sort_unstable_by_key(|&(k, _)| k);
    pairs
}

/// Decoy: reducing to a cardinality must NOT be flagged.
pub fn size(weights: &HashMap<u32, f32>) -> usize {
    weights.keys().count()
}
