//! Fixture: a serve entry point without any observability instrumentation.

/// Scores a request without opening a span — the serve-span-coverage rule
/// must flag this (new files get no baseline allowance).
pub fn score_unobserved(xs: &[f32]) -> f32 {
    xs.iter().sum()
}

/// Decoy: an instrumented entry point must NOT be flagged.
pub fn score_observed(xs: &[f32]) -> f32 {
    let _span = embsr_obs::span("fixture", "score_observed");
    xs.iter().sum()
}
