// Seeded lint-violation fixture (never compiled by the real workspace):
// line 6 trips no-timing-outside-obs, line 7 trips no-panic-ratchet.
use std::time::Instant;

pub fn risky(v: Option<u32>) -> u32 {
    let _t = Instant::now();
    v.unwrap()
}

// These must NOT be flagged: literals and comments are stripped before
// matching, and test regions are exempt. (.unwrap() in this comment.)
pub const DECOY: &str = "x.unwrap(); panic!(boom); Instant::now()";

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}

use std::sync::atomic::{AtomicBool, Ordering};

pub static FLAG: AtomicBool = AtomicBool::new(false);

/// Trips the atomics audit: no justifying comment at all.
pub fn set_flag() {
    FLAG.store(true, Ordering::SeqCst);
}

/// Trips the atomics audit: the comment never names the strong choice.
pub fn get_flag() -> bool {
    // ordering: strongest available, just in case
    FLAG.load(Ordering::SeqCst)
}

/// Decoy: a justified relaxed load must NOT be flagged.
pub fn peek_flag() -> bool {
    // ordering: Relaxed — standalone flag, nothing published through it
    FLAG.load(Ordering::Relaxed)
}

/// Trips no-unsafe-ratchet.
pub fn first_unchecked(xs: &[f32]) -> f32 {
    unsafe { *xs.get_unchecked(0) }
}
