// Seeded lint-violation fixture (never compiled by the real workspace):
// line 6 trips no-timing-outside-obs, line 7 trips no-panic-ratchet.
use std::time::Instant;

pub fn risky(v: Option<u32>) -> u32 {
    let _t = Instant::now();
    v.unwrap()
}

// These must NOT be flagged: literals and comments are stripped before
// matching, and test regions are exempt. (.unwrap() in this comment.)
pub const DECOY: &str = "x.unwrap(); panic!(boom); Instant::now()";

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
