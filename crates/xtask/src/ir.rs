//! Item-level IR for one source file, built on [`crate::lexer::Lexed`]:
//! functions with body spans, `use` imports, and the identifiers declared
//! with determinism/concurrency-sensitive types (`HashMap`/`HashSet`,
//! `Condvar`). The extraction is token-level and deliberately shallow — it
//! tracks declarations whose type annotation or constructor is syntactically
//! visible (`x: HashMap<..>`, `x = HashMap::new()`, struct fields), not
//! types that only arrive through inference or nested generics. Rules that
//! consume the IR accept the resulting false negatives and document them.

use std::collections::BTreeSet;

use crate::lexer::Lexed;

/// One `fn` item: its name, body span, and signature line.
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// `(open, close)` char offsets of the body braces; `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the signature.
    pub line: usize,
}

/// One `use` import (text with whitespace collapsed, e.g.
/// `use std::collections::HashMap;`).
pub struct UseItem {
    pub text: String,
    /// Char offset of the `use` keyword (for test-mask checks).
    pub pos: usize,
    pub line: usize,
}

/// The IR of one file.
pub struct FileIr {
    /// Token stream + brace tree over the stripped source.
    pub lex: Lexed,
    /// `fn` items in source order.
    pub fns: Vec<FnItem>,
    /// `use` imports.
    pub uses: Vec<UseItem>,
    /// Identifiers declared as `HashMap`/`HashSet` (locals, params, fields).
    pub hash_idents: BTreeSet<String>,
    /// Identifiers declared as `Condvar` (locals, params, fields).
    pub condvar_idents: BTreeSet<String>,
}

/// Constructors whose result is bound directly (`x = HashMap::new()`).
const CTORS: [&str; 3] = ["new", "with_capacity", "default"];

impl FileIr {
    /// Builds the IR for one stripped source file.
    pub fn build(stripped: &str) -> FileIr {
        let lex = Lexed::new(stripped);
        let fns = find_fns(&lex);
        let uses = find_uses(&lex);
        let hash_idents = declared_idents(&lex, &["HashMap", "HashSet"]);
        let condvar_idents = declared_idents(&lex, &["Condvar"]);
        FileIr {
            lex,
            fns,
            uses,
            hash_idents,
            condvar_idents,
        }
    }

    /// The innermost `fn` whose body contains `pos`.
    pub fn enclosing_fn(&self, pos: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| matches!(f.body, Some((o, c)) if o < pos && pos < c))
            .max_by_key(|f| f.body.map(|(o, _)| o))
    }

    /// True when `pos` sits inside a `loop`/`while` block *within* its
    /// enclosing function (the canonical Condvar re-check shape). Blocks
    /// are classified by scanning their header — the text between the
    /// previous `;`/`{`/`}` and the open brace — for the loop keyword.
    pub fn in_loop(&self, pos: usize) -> bool {
        let Some(f) = self.enclosing_fn(pos) else {
            return false;
        };
        let Some((fn_open, _)) = f.body else {
            return false;
        };
        for (open, _) in self.lex.enclosing_braces(pos) {
            if open <= fn_open {
                continue; // the fn body itself, or something outside it
            }
            let header_start = self.lex.statement_start(open.saturating_sub(1));
            let header = self.lex.text(header_start, open);
            let header_lex = Lexed::new(&header);
            if header_lex
                .tokens
                .iter()
                .any(|t| matches!(t.ident(), "loop" | "while"))
            {
                return true;
            }
        }
        false
    }
}

/// Extracts `fn` items: the `fn` keyword followed by a name; the body is
/// the first `{` after the signature (a `;` first means no body).
fn find_fns(lex: &Lexed) -> Vec<FnItem> {
    let mut out = Vec::new();
    for (i, t) in lex.tokens.iter().enumerate() {
        if t.ident() != "fn" {
            continue;
        }
        let Some(name_tok) = lex.tokens.get(i + 1) else {
            continue;
        };
        let name = name_tok.ident();
        if name.is_empty() {
            continue; // `fn(usize) -> T` fn-pointer type
        }
        let mut body = None;
        let mut j = name_tok.end;
        while j < lex.chars.len() {
            match lex.chars[j] {
                '{' => {
                    body = Some((j, lex.close_of(j)));
                    break;
                }
                ';' => break,
                _ => j += 1,
            }
        }
        out.push(FnItem {
            name: name.to_string(),
            body,
            line: lex.line_of(t.start),
        });
    }
    out
}

/// Extracts `use` statements as collapsed text.
fn find_uses(lex: &Lexed) -> Vec<UseItem> {
    let mut out = Vec::new();
    for t in &lex.tokens {
        if t.ident() != "use" {
            continue;
        }
        let end = lex.statement_end(t.start);
        let text: String = lex
            .text(t.start, end)
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ");
        out.push(UseItem {
            text,
            pos: t.start,
            line: lex.line_of(t.start),
        });
    }
    out
}

/// Identifiers declared with one of `types`, via either a visible type
/// annotation (`name: [&][mut] Type<..>` — locals, params, struct fields)
/// or a direct constructor binding (`name = Type::new(..)`).
fn declared_idents(lex: &Lexed, types: &[&str]) -> BTreeSet<String> {
    let toks = &lex.tokens;
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !types.contains(&t.ident()) {
            continue;
        }
        // Case A: `name : [&] [mut] Type` — walk back over `&`/`mut`, then
        // require a single `:` (not `::`) preceded by the name.
        let mut j = i;
        while j > 0 && (toks[j - 1].is_punct('&') || toks[j - 1].ident() == "mut") {
            j -= 1;
        }
        if j >= 2
            && toks[j - 1].is_punct(':')
            && !toks[j - 2].is_punct(':')
            && !toks[j - 2].ident().is_empty()
        {
            out.insert(toks[j - 2].ident().to_string());
            continue;
        }
        // Case B: `name = Type::new(..)` — constructor on the rhs.
        let is_ctor = i + 3 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && CTORS.contains(&toks[i + 3].ident());
        if is_ctor && i >= 2 && toks[i - 1].is_punct('=') && !toks[i - 2].ident().is_empty() {
            out.insert(toks[i - 2].ident().to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ir(src: &str) -> FileIr {
        FileIr::build(src)
    }

    #[test]
    fn fns_have_names_and_bodies() {
        let f = ir("fn a() { x(); }\npub fn b(v: u32) -> u32 { v }\ntrait T { fn c(&self); }");
        let names: Vec<&str> = f.fns.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert!(f.fns[0].body.is_some());
        assert!(f.fns[1].body.is_some());
        assert!(f.fns[2].body.is_none(), "trait decl has no body");
        assert_eq!(f.fns[1].line, 2);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let f = ir("fn go(cb: fn(usize) -> usize) { cb(1); }");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "go");
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = "fn outer() { fn inner() { mark(); } }";
        let f = ir(src);
        let pos = src.find("mark").expect("mark");
        assert_eq!(f.enclosing_fn(pos).map(|x| x.name.as_str()), Some("inner"));
    }

    #[test]
    fn declared_map_idents_are_tracked() {
        let src = "struct S { index: HashMap<u32, f32> }\n\
                   fn f(q: &HashSet<u32>) { let mut co: HashMap<u32, u32> = HashMap::new();\n\
                   let seen = HashSet::new(); let v: Vec<u32> = Vec::new(); co.len(); }";
        let f = ir(src);
        assert!(f.hash_idents.contains("index"));
        assert!(f.hash_idents.contains("q"));
        assert!(f.hash_idents.contains("co"));
        assert!(f.hash_idents.contains("seen"));
        assert!(!f.hash_idents.contains("v"));
    }

    #[test]
    fn use_paths_are_not_declarations() {
        let f = ir("use std::collections::HashMap;\nfn f() {}");
        assert!(f.hash_idents.is_empty());
        assert_eq!(f.uses.len(), 1);
        assert_eq!(f.uses[0].text, "use std::collections::HashMap;");
    }

    #[test]
    fn nested_generic_wrappers_are_not_tracked() {
        // `OnceLock<Mutex<HashMap<..>>>` statics resolve through accessors
        // the token scan cannot follow; they must not produce a bogus name.
        let f = ir("static G: OnceLock<Mutex<HashMap<u32, u32>>> = OnceLock::new();");
        assert!(f.hash_idents.is_empty());
    }

    #[test]
    fn condvar_declarations_are_tracked() {
        let f = ir("struct Shared { arrivals: Condvar }\nfn w(cv: &Condvar) {}");
        assert!(f.condvar_idents.contains("arrivals"));
        assert!(f.condvar_idents.contains("cv"));
    }

    #[test]
    fn in_loop_sees_while_and_loop_but_not_if() {
        let src = "fn f() { loop { if q { w.wait(); } } }\n\
                   fn g() { if q { w.wait(); } }\n\
                   fn h() { while go { w.wait(); } }";
        let f = ir(src);
        let hits: Vec<usize> = {
            let mut v = Vec::new();
            let mut from = 0;
            while let Some(p) = src[from..].find("w.wait") {
                v.push(from + p);
                from += p + 6;
            }
            v
        };
        assert_eq!(hits.len(), 3);
        assert!(f.in_loop(hits[0]), "loop{{if{{..}}}} counts");
        assert!(!f.in_loop(hits[1]), "bare if does not");
        assert!(f.in_loop(hits[2]), "while counts");
    }
}
