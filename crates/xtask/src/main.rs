//! embsr-analyze: the in-tree determinism & concurrency static-analysis
//! pass (an in-tree lexer + brace-tree IR, no `syn`).
//!
//! ```text
//! cargo run -p xtask -- lint                     # run all rules, exit 1 on violation
//! cargo run -p xtask -- lint --json              # machine-readable findings on stdout
//! cargo run -p xtask -- lint --update-baseline   # rewrite crates/xtask/baselines.txt
//! cargo run -p xtask -- lint --root <dir>        # lint another workspace (tests/fixtures)
//! ```
//!
//! Rules (all dependency-free, built on the stripped-source token stream):
//!
//! * `no-panic-ratchet` — no `.unwrap()`/`.expect()`/`panic!`/`todo!`/
//!   `unimplemented!` in production code, ratcheted per file;
//! * `no-external-deps` — every manifest dependency is an in-tree path;
//! * `no-timing-outside-obs` — wall-clock reads only in `crates/obs`;
//! * `gradcheck-coverage` — every `crates/tensor/src/ops/*.rs` has a
//!   finite-difference entry in the gradcheck registry;
//! * `nn-forward-unification` — no new ad-hoc `pub fn forward` in
//!   `crates/nn`; forward passes implement the `Forward` trait;
//! * `doc-public-items` — public items in `tensor`/`nn` carry doc comments;
//! * `serve-span-coverage` — public entry points in the serving-path
//!   crates (`crates/serve`, `crates/net`) open an obs span (or record
//!   trace/metrics), ratcheted per file;
//! * `map-iteration-determinism` — HashMap/HashSet iteration in production
//!   code must sort, rebuild into a BTree container, reduce to a
//!   cardinality, or justify with `// det:`; ratcheted per file;
//! * `float-reduction-order` — element-wise f32 accumulation in
//!   `crates/train` routes through the fixed-order `tree_reduce` (escape:
//!   `// reduce:`);
//! * `lock-discipline` — Condvar waits re-check in a `loop`/`while`; no
//!   double-lock of one mutex while its guard is live; no guard held
//!   across a pool worker/spawn boundary (escape: `// lock:`);
//! * `atomics-ordering-audit` — every `Ordering::` site carries a
//!   justifying `// ordering:` comment; `SeqCst` must be named in it;
//! * `no-unsafe-ratchet` — the workspace is pinned at zero of the keyword
//!   this rule bans;
//! * `crate-layering` — manifest deps and `embsr_*` source references obey
//!   the DESIGN.md layer DAG (`depgraph::LAYERS`); cycles are rejected.
//!
//! The three ratcheted rules share one checked-in baseline,
//! `crates/xtask/baselines.txt` (`<rule> <count> <path>` lines), rewritten
//! as a whole by `--update-baseline`.

mod baseline;
mod depgraph;
mod ir;
mod lexer;
mod rules;
mod scanner;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use embsr_obs::JsonValue;
use ir::FileIr;
use rules::{Finding, SourceFile};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}

/// Entry point; returns `Ok(true)` when the lint passes.
fn run(args: &[String]) -> Result<bool, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Err(
            "usage: cargo run -p xtask -- lint [--update-baseline] [--json] [--root <dir>]".into(),
        );
    };
    if cmd != "lint" {
        return Err(format!("unknown command `{cmd}`; the only command is `lint`"));
    }
    let mut update_baseline = false;
    let mut json = false;
    let mut root_override: Option<PathBuf> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--update-baseline" => update_baseline = true,
            "--json" => json = true,
            "--root" => {
                let dir = it.next().ok_or("--root takes a directory")?;
                root_override = Some(PathBuf::from(dir));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let root = match root_override {
        Some(r) => r,
        None => find_workspace_root()?,
    };
    lint(&root, update_baseline, json)
}

/// Walks up from the current directory to the manifest containing
/// `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let content = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if content.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root (Cargo.toml with [workspace]) above cwd".into());
        }
    }
}

/// Runs every rule over the workspace at `root`; prints findings and
/// returns `Ok(true)` when no errors were found.
fn lint(root: &Path, update_baseline: bool, json: bool) -> Result<bool, String> {
    let mut rs_files = Vec::new();
    let mut manifests = vec!["Cargo.toml".to_string()];
    collect(root, Path::new(""), &mut rs_files, &mut manifests)?;
    rs_files.sort();
    manifests.sort();

    let mut sources = Vec::with_capacity(rs_files.len());
    for rel in &rs_files {
        sources.push(SourceFile::load(root, rel)?);
    }
    let irs: Vec<FileIr> = sources.iter().map(|s| FileIr::build(&s.stripped)).collect();

    if update_baseline {
        let panics = rules::panic_counts(&sources);
        let spans = rules::span_counts(&sources);
        let maps = rules::map_iteration_counts(&sources, &irs);
        baseline::save(
            root,
            &[
                ("no-panic-ratchet", &panics),
                ("serve-span-coverage", &spans),
                ("map-iteration-determinism", &maps),
            ],
        )?;
        println!(
            "xtask: baseline rewritten: {} panic / {} span / {} map-iteration entries",
            panics.len(),
            spans.len(),
            maps.len()
        );
    }
    let baselines = baseline::load(root)?;
    let panic_base = baseline::for_rule(&baselines, "no-panic-ratchet");
    let span_base = baseline::for_rule(&baselines, "serve-span-coverage");
    let map_base = baseline::for_rule(&baselines, "map-iteration-determinism");

    let mut findings: Vec<Finding> = Vec::new();
    findings.extend(rules::rule_no_panic_ratchet(&sources, &panic_base));
    findings.extend(rules::rule_no_external_deps(root, &manifests));
    findings.extend(rules::rule_no_timing_outside_obs(&sources));
    findings.extend(rules::rule_gradcheck_coverage(root));
    findings.extend(rules::rule_nn_forward_unification(&sources));
    findings.extend(rules::rule_doc_public_items(&sources));
    findings.extend(rules::rule_serve_span_coverage(&sources, &span_base));
    findings.extend(rules::rule_map_iteration_determinism(&sources, &irs, &map_base));
    findings.extend(rules::rule_float_reduction_order(&sources, &irs));
    findings.extend(rules::rule_lock_discipline(&sources, &irs));
    findings.extend(rules::rule_atomics_ordering_audit(&sources, &irs));
    findings.extend(rules::rule_no_unsafe_ratchet(&sources));
    findings.extend(rules::rule_crate_layering(root, &manifests, &sources, &irs));

    let errors = findings.iter().filter(|f| f.is_error).count();
    if json {
        println!(
            "{}",
            findings_json(&findings, sources.len(), manifests.len(), errors).to_json()
        );
        return Ok(errors == 0);
    }
    for f in &findings {
        if f.is_error {
            println!("{f}");
        } else {
            eprintln!("{f}");
        }
    }
    println!(
        "xtask lint: {} file(s), {} manifest(s), {} error(s), {} note(s)",
        sources.len(),
        manifests.len(),
        errors,
        findings.len() - errors
    );
    Ok(errors == 0)
}

/// The `--json` payload: every finding plus summary counts, rendered with
/// the in-tree JSON writer (BTreeMap-backed objects keep it diffable).
fn findings_json(
    findings: &[Finding],
    files: usize,
    manifests: usize,
    errors: usize,
) -> JsonValue {
    let rows: Vec<JsonValue> = findings
        .iter()
        .map(|f| {
            JsonValue::object(vec![
                ("rule", JsonValue::String(f.rule.to_string())),
                ("file", JsonValue::String(f.path.clone())),
                ("line", JsonValue::Number(f.line as f64)),
                (
                    "level",
                    JsonValue::String(if f.is_error { "error" } else { "note" }.to_string()),
                ),
                ("message", JsonValue::String(f.message.clone())),
            ])
        })
        .collect();
    JsonValue::object(vec![
        ("findings", JsonValue::Array(rows)),
        (
            "summary",
            JsonValue::object(vec![
                ("files", JsonValue::Number(files as f64)),
                ("manifests", JsonValue::Number(manifests as f64)),
                ("errors", JsonValue::Number(errors as f64)),
                ("notes", JsonValue::Number((findings.len() - errors) as f64)),
            ]),
        ),
    ])
}

/// Recursively collects `.rs` files and `Cargo.toml` manifests, skipping
/// build output, VCS metadata, and lint fixtures.
fn collect(
    root: &Path,
    rel: &Path,
    rs_files: &mut Vec<String>,
    manifests: &mut Vec<String>,
) -> Result<(), String> {
    let dir = root.join(rel);
    let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let sub = if rel.as_os_str().is_empty() {
            PathBuf::from(&name)
        } else {
            rel.join(&name)
        };
        let path = root.join(&sub);
        if path.is_dir() {
            if matches!(name.as_str(), "target" | ".git" | "fixtures" | "results" | "node_modules") {
                continue;
            }
            collect(root, &sub, rs_files, manifests)?;
        } else if name.ends_with(".rs") {
            rs_files.push(sub.to_string_lossy().replace('\\', "/"));
        } else if name == "Cargo.toml" && !rel.as_os_str().is_empty() {
            manifests.push(sub.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}
