//! embsr-check layer 2: the in-tree workspace lint.
//!
//! ```text
//! cargo run -p xtask -- lint                     # run all rules, exit 1 on violation
//! cargo run -p xtask -- lint --update-baseline   # rewrite the panic-ratchet baseline
//! cargo run -p xtask -- lint --root <dir>        # lint another workspace (tests/fixtures)
//! ```
//!
//! Rules (all dependency-free, token-level — no `syn`):
//!
//! * `no-panic-ratchet` — no `.unwrap()`/`.expect()`/`panic!`/`todo!`/
//!   `unimplemented!` in production code, ratcheted per file via a
//!   checked-in baseline that may only go down;
//! * `no-external-deps` — every manifest dependency is an in-tree path;
//! * `no-timing-outside-obs` — wall-clock reads only in `crates/obs`;
//! * `gradcheck-coverage` — every `crates/tensor/src/ops/*.rs` has a
//!   finite-difference entry in the gradcheck registry;
//! * `nn-forward-unification` — no new ad-hoc `pub fn forward` in
//!   `crates/nn`; forward passes implement the `Forward` trait (or use a
//!   named method like `attend`/`readout`);
//! * `doc-public-items` — public items in `tensor`/`nn` carry doc comments;
//! * `serve-span-coverage` — public entry points in `crates/serve` open an
//!   obs span (or record trace/metrics), ratcheted per file via a second
//!   checked-in baseline that may only go down.

mod baseline;
mod rules;
mod scanner;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rules::{Finding, SourceFile};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}

/// Entry point; returns `Ok(true)` when the lint passes.
fn run(args: &[String]) -> Result<bool, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Err("usage: cargo run -p xtask -- lint [--update-baseline] [--root <dir>]".into());
    };
    if cmd != "lint" {
        return Err(format!("unknown command `{cmd}`; the only command is `lint`"));
    }
    let mut update_baseline = false;
    let mut root_override: Option<PathBuf> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--update-baseline" => update_baseline = true,
            "--root" => {
                let dir = it.next().ok_or("--root takes a directory")?;
                root_override = Some(PathBuf::from(dir));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let root = match root_override {
        Some(r) => r,
        None => find_workspace_root()?,
    };
    lint(&root, update_baseline)
}

/// Walks up from the current directory to the manifest containing
/// `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let content = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if content.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root (Cargo.toml with [workspace]) above cwd".into());
        }
    }
}

/// Runs every rule over the workspace at `root`; prints findings and
/// returns `Ok(true)` when no errors were found.
fn lint(root: &Path, update_baseline: bool) -> Result<bool, String> {
    let mut rs_files = Vec::new();
    let mut manifests = vec!["Cargo.toml".to_string()];
    collect(root, Path::new(""), &mut rs_files, &mut manifests)?;
    rs_files.sort();
    manifests.sort();

    let mut sources = Vec::with_capacity(rs_files.len());
    for rel in &rs_files {
        sources.push(SourceFile::load(root, rel)?);
    }

    if update_baseline {
        let counts = rules::panic_counts(&sources);
        baseline::save(root, baseline::BASELINE_REL, baseline::PANIC_HEADER, &counts)?;
        println!(
            "xtask: baseline rewritten: {} file(s), {} panic construct(s) total",
            counts.len(),
            counts.values().sum::<usize>()
        );
        let spans = rules::span_counts(&sources);
        baseline::save(root, baseline::SPAN_BASELINE_REL, baseline::SPAN_HEADER, &spans)?;
        println!(
            "xtask: span baseline rewritten: {} file(s), {} uninstrumented fn(s) total",
            spans.len(),
            spans.values().sum::<usize>()
        );
    }
    let base = baseline::load(root, baseline::BASELINE_REL)?;
    let span_base = baseline::load(root, baseline::SPAN_BASELINE_REL)?;

    let mut findings: Vec<Finding> = Vec::new();
    findings.extend(rules::rule_no_panic_ratchet(&sources, &base));
    findings.extend(rules::rule_no_external_deps(root, &manifests));
    findings.extend(rules::rule_no_timing_outside_obs(&sources));
    findings.extend(rules::rule_gradcheck_coverage(root));
    findings.extend(rules::rule_nn_forward_unification(&sources));
    findings.extend(rules::rule_doc_public_items(&sources));
    findings.extend(rules::rule_serve_span_coverage(&sources, &span_base));

    let errors = findings.iter().filter(|f| f.is_error).count();
    for f in &findings {
        if f.is_error {
            println!("{f}");
        } else {
            eprintln!("{f}");
        }
    }
    println!(
        "xtask lint: {} file(s), {} manifest(s), {} error(s), {} note(s)",
        sources.len(),
        manifests.len(),
        errors,
        findings.len() - errors
    );
    Ok(errors == 0)
}

/// Recursively collects `.rs` files and `Cargo.toml` manifests, skipping
/// build output, VCS metadata, and lint fixtures.
fn collect(
    root: &Path,
    rel: &Path,
    rs_files: &mut Vec<String>,
    manifests: &mut Vec<String>,
) -> Result<(), String> {
    let dir = root.join(rel);
    let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let sub = if rel.as_os_str().is_empty() {
            PathBuf::from(&name)
        } else {
            rel.join(&name)
        };
        let path = root.join(&sub);
        if path.is_dir() {
            if matches!(name.as_str(), "target" | ".git" | "fixtures" | "results" | "node_modules") {
                continue;
            }
            collect(root, &sub, rs_files, manifests)?;
        } else if name.ends_with(".rs") {
            rs_files.push(sub.to_string_lossy().replace('\\', "/"));
        } else if name == "Cargo.toml" && !rel.as_os_str().is_empty() {
            manifests.push(sub.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}
