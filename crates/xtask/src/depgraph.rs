//! The workspace crate-dependency graph, read straight from the
//! `crates/*/Cargo.toml` manifests (the workspace has no external deps, so
//! every edge is in-tree). The graph feeds the `crate-layering` rule: each
//! crate sits on a named layer of the DESIGN.md DAG, dependency edges must
//! point strictly downward, and cycles are rejected outright.

use std::collections::{BTreeMap, BTreeSet};

/// The architecture layers, lowest first. A crate may only depend on
/// crates with a strictly smaller layer number. New crates must be added
/// here before they lint clean (a deliberate speed bump: placing a crate
/// in the DAG is an architecture decision).
pub const LAYERS: &[(&str, u8)] = &[
    ("embsr-obs", 0),       // telemetry: depends on nothing
    ("embsr-pool", 1),      // worker pool
    ("embsr-tensor", 1),    // autograd tensors
    ("embsr-sessions", 1),  // session data model
    ("embsr-nn", 2),        // neural layers on tensor
    ("embsr-datasets", 2),  // generators/preprocessing
    ("embsr-train", 3),     // training loop + recommender trait
    ("embsr-core", 4),      // the EMBSR model
    ("embsr-baselines", 4), // Table III baselines
    ("embsr-eval", 4),      // metrics + significance tests
    ("embsr-serve", 4),     // batched inference engine
    ("embsr-net", 5),       // networked serving on top of the engine
    ("embsr-bench", 6),     // experiment harness (may use everything)
    ("xtask", 6),           // this lint
];

/// The layer of a crate, or `None` for crates missing from [`LAYERS`].
pub fn layer_of(name: &str) -> Option<u8> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|&(_, l)| l)
}

/// One parsed crate manifest.
pub struct CrateInfo {
    /// The `[package] name`.
    pub name: String,
    /// Workspace-relative manifest path.
    pub manifest_rel: String,
    /// `(dep name, manifest line)` from `[dependencies]` and
    /// `[build-dependencies]`. Dev-dependencies are exempt from layering
    /// (tests may reach sideways, e.g. model crates pulling datasets).
    pub deps: Vec<(String, usize)>,
}

/// Parses one manifest; `None` when it has no `[package]` section (the
/// virtual workspace root).
pub fn parse_manifest(rel: &str, content: &str) -> Option<CrateInfo> {
    let mut name = None;
    let mut deps = Vec::new();
    let mut section = "";
    for (idx, raw_line) in content.lines().enumerate() {
        let line = raw_line.trim();
        if line.starts_with('[') {
            section = match line {
                "[package]" => "package",
                "[dependencies]" | "[build-dependencies]" => "deps",
                _ => "",
            };
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        match section {
            "package" if key == "name" => {
                name = Some(value.trim().trim_matches('"').to_string());
            }
            "deps" => {
                // `foo = {..}` or `foo.workspace = true`
                let dep = key.trim_end_matches(".workspace").trim();
                deps.push((dep.to_string(), idx + 1));
            }
            _ => {}
        }
    }
    Some(CrateInfo {
        name: name?,
        manifest_rel: rel.to_string(),
        deps,
    })
}

/// Finds a dependency cycle among `crates` (edges restricted to crates in
/// the set), returned as a `a -> b -> ... -> a` path; `None` when acyclic.
pub fn find_cycle(crates: &[CrateInfo]) -> Option<Vec<String>> {
    let edges: BTreeMap<&str, Vec<&str>> = crates
        .iter()
        .map(|c| {
            (
                c.name.as_str(),
                c.deps.iter().map(|(d, _)| d.as_str()).collect(),
            )
        })
        .collect();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for start in edges.keys() {
        if done.contains(start) {
            continue;
        }
        // Iterative DFS with an explicit path stack.
        let mut path: Vec<&str> = vec![start];
        let mut iters: Vec<usize> = vec![0];
        while !path.is_empty() {
            let top = path.len() - 1;
            let node = path[top];
            let next = edges.get(node).and_then(|ds| ds.get(iters[top]).copied());
            match next {
                Some(dep) => {
                    iters[top] += 1;
                    if !edges.contains_key(dep) || done.contains(dep) {
                        continue;
                    }
                    if let Some(at) = path.iter().position(|&p| p == dep) {
                        let mut cycle: Vec<String> =
                            path[at..].iter().map(|s| s.to_string()).collect();
                        cycle.push(dep.to_string());
                        return Some(cycle);
                    }
                    path.push(dep);
                    iters.push(0);
                }
                None => {
                    done.insert(node);
                    path.pop();
                    iters.pop();
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(name: &str, deps: &[&str]) -> CrateInfo {
        CrateInfo {
            name: name.to_string(),
            manifest_rel: format!("crates/{name}/Cargo.toml"),
            deps: deps.iter().map(|d| (d.to_string(), 1)).collect(),
        }
    }

    #[test]
    fn manifest_parsing_reads_name_and_dep_sections() {
        let toml = "[package]\nname = \"embsr-serve\"\n\n[dependencies]\n\
                    embsr-obs = { workspace = true }\nembsr-pool.workspace = true\n\n\
                    [dev-dependencies]\nembsr-datasets = { workspace = true }\n";
        let c = parse_manifest("crates/serve/Cargo.toml", toml).expect("package section");
        assert_eq!(c.name, "embsr-serve");
        let deps: Vec<&str> = c.deps.iter().map(|(d, _)| d.as_str()).collect();
        assert_eq!(deps, ["embsr-obs", "embsr-pool"], "dev-deps are exempt");
    }

    #[test]
    fn virtual_workspace_roots_are_skipped() {
        assert!(parse_manifest("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n").is_none());
    }

    #[test]
    fn layer_table_covers_the_workspace() {
        assert_eq!(layer_of("embsr-obs"), Some(0));
        assert_eq!(layer_of("embsr-net"), Some(5));
        assert_eq!(layer_of("embsr-bench"), Some(6));
        assert_eq!(layer_of("left-pad"), None);
    }

    #[test]
    fn cycles_are_found_and_reported_as_paths() {
        let crates = vec![info("a", &["b"]), info("b", &["c"]), info("c", &["a"])];
        let cycle = find_cycle(&crates).expect("cycle exists");
        assert_eq!(cycle.first(), cycle.last());
        assert_eq!(cycle.len(), 4);
        let acyclic = vec![info("a", &["b"]), info("b", &["c"]), info("c", &[])];
        assert!(find_cycle(&acyclic).is_none());
    }
}
