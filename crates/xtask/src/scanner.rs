//! A token-level Rust source scanner, deliberately built without `syn` (the
//! workspace is dependency-free). It does two things the lint rules need:
//!
//! * [`strip_comments_and_strings`] — a length-preserving copy of the source
//!   with every comment and string/char literal blanked to spaces, so
//!   substring rules cannot match inside literals or docs;
//! * [`test_region_mask`] — a per-byte mask marking `#[cfg(test)]` /
//!   `#[test]` items (found by brace matching on the stripped source), so
//!   rules can exempt test code.

/// Length-preserving copy of `src` with comments, string literals (plain,
/// raw, byte) and char literals replaced by spaces. Newlines are kept so
/// byte offsets and line numbers survive the transformation.
pub fn strip_comments_and_strings(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out: Vec<char> = Vec::with_capacity(n);
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    let mut i = 0;
    while i < n {
        let c = b[i];
        // line comment (also covers doc comments)
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // block comment, nested
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1usize;
            out.push(' ');
            out.push(' ');
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // raw (and raw byte) strings: r"..", r#".."#, br#".."#
        let prev_is_ident = i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_');
        if !prev_is_ident && (c == 'r' || (c == 'b' && i + 1 < n && b[i + 1] == 'r')) {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                // emit blanks for the prefix and opening quote
                out.extend(std::iter::repeat_n(' ', j - i + 1));
                i = j + 1;
                // scan to closing `"` followed by `hashes` hash marks
                'raw: while i < n {
                    if b[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            out.extend(std::iter::repeat_n(' ', hashes + 1));
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // plain and byte strings
        if c == '"' || (c == 'b' && !prev_is_ident && i + 1 < n && b[i + 1] == '"') {
            if c == 'b' {
                out.push(' ');
                i += 1;
            }
            out.push(' '); // opening quote
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    // keep escaped newlines (string continuations) so line
                    // numbers survive
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                }
                out.push(blank(b[i]));
                i += 1;
            }
            continue;
        }
        // char literal vs lifetime: 'x' or '\n' is a literal, 'static is not
        if c == '\'' && i + 1 < n {
            let is_escape = b[i + 1] == '\\';
            let closes = i + 2 < n && b[i + 2] == '\'';
            if is_escape || closes {
                out.push(' ');
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        out.push(' ');
                        out.push(blank(b[i + 1]));
                        i += 2;
                        continue;
                    }
                    if b[i] == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out.into_iter().collect()
}

/// Per-character mask over `stripped` (the output of
/// [`strip_comments_and_strings`]): `true` marks characters belonging to a
/// test region — an item annotated `#[test]`, or a `#[cfg(test)]` item
/// (typically `mod tests { ... }`).
pub fn test_region_mask(stripped: &str) -> Vec<bool> {
    let b: Vec<char> = stripped.chars().collect();
    let n = b.len();
    let mut mask = vec![false; n];
    for start in find_test_attrs(&b) {
        // From the end of the attribute, skip whitespace and further
        // attributes, then mask through the item's balanced `{ ... }` block
        // (or to the terminating `;` for block-less items).
        let mut i = skip_attr(&b, start);
        loop {
            while i < n && b[i].is_whitespace() {
                i += 1;
            }
            if i < n && b[i] == '#' {
                i = skip_attr(&b, i);
                continue;
            }
            break;
        }
        let mut end = i;
        while end < n && b[end] != '{' && b[end] != ';' {
            end += 1;
        }
        if end < n && b[end] == '{' {
            let mut depth = 0usize;
            while end < n {
                if b[end] == '{' {
                    depth += 1;
                } else if b[end] == '}' {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                end += 1;
            }
        }
        for m in mask.iter_mut().take((end + 1).min(n)).skip(start) {
            *m = true;
        }
    }
    mask
}

/// Start offsets of `#[test]`, `#[cfg(test)]` and `#[should_panic` attributes.
fn find_test_attrs(b: &[char]) -> Vec<usize> {
    let hay: String = b.iter().collect();
    let mut found = Vec::new();
    for pat in ["#[test]", "#[cfg(test)]", "#[should_panic"] {
        let mut from = 0usize;
        while let Some(pos) = hay[from..].find(pat) {
            // byte offset == char offset: the stripped source is ASCII-blank
            // in literals, but identifiers/paths can still be multi-byte, so
            // convert defensively.
            let byte_pos = from + pos;
            found.push(hay[..byte_pos].chars().count());
            from = byte_pos + pat.len();
        }
    }
    found.sort_unstable();
    found.dedup();
    found
}

/// Returns the offset just past an attribute starting at `i` (`#[ ... ]`
/// with balanced brackets).
fn skip_attr(b: &[char], i: usize) -> usize {
    let n = b.len();
    let mut j = i;
    while j < n && b[j] != '[' {
        j += 1;
    }
    let mut depth = 0usize;
    while j < n {
        if b[j] == '[' {
            depth += 1;
        } else if b[j] == ']' {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    n
}

/// 1-based line number of character offset `pos` in `text`.
pub fn line_of(text: &str, pos: usize) -> usize {
    text.chars().take(pos).filter(|&c| c == '\n').count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"panic!(\"; // panic!()\nlet y = 1; /* .unwrap() */";
        let s = strip_comments_and_strings(src);
        assert!(!s.contains("panic!"));
        assert!(!s.contains("unwrap"));
        assert!(s.contains("let y = 1;"));
        assert_eq!(s.chars().filter(|&c| c == '\n').count(), 1);
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_but_lifetimes_survive() {
        let src = "let p = r#\"x.unwrap()\"#; let c = '\\n'; fn f<'a>(x: &'a str) {}";
        let s = strip_comments_and_strings(src);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("fn f<'a>(x: &'a str) {}"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn live() {}";
        let s = strip_comments_and_strings(src);
        assert!(!s.contains("outer") && !s.contains("inner") && !s.contains("still"));
        assert!(s.contains("fn live() {}"));
    }

    #[test]
    fn test_mod_is_masked_but_production_code_is_not() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { y.unwrap(); }\n}\n";
        let stripped = strip_comments_and_strings(src);
        let mask = test_region_mask(&stripped);
        let chars: Vec<char> = stripped.chars().collect();
        let prod_pos = stripped.find("x.unwrap").unwrap();
        let test_pos = stripped.find("y.unwrap").unwrap();
        assert!(!mask[prod_pos], "production code must stay unmasked");
        assert!(mask[test_pos], "test body must be masked");
        assert_eq!(chars.len(), mask.len());
    }

    #[test]
    fn line_numbers_are_one_based() {
        let text = "a\nb\nc";
        assert_eq!(line_of(text, 0), 1);
        assert_eq!(line_of(text, 2), 2);
        assert_eq!(line_of(text, 4), 3);
    }
}
