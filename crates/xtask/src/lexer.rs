//! A tiny Rust lexer + bracket tree over the *stripped* source (the output
//! of [`crate::scanner::strip_comments_and_strings`]), still with no `syn`:
//! the stripped text has every comment and literal blanked, so a
//! whitespace/ident/punct tokenizer plus brace matching is enough structure
//! for the static-analysis rules (statement spans, enclosing blocks, call
//! chains, loop headers).
//!
//! Offsets are always *char* offsets into the stripped source, which line
//! up one-to-one with the raw source because stripping is
//! length-preserving.

use std::collections::BTreeMap;

/// Token classes the rules care about. Everything that is not an
/// identifier or a number is a single-char punct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `let`, `HashMap`, ...).
    Ident(String),
    /// Numeric literal (`0`, `1.5e3`, `0x_ff`).
    Number,
    /// Any other non-whitespace char (`{`, `.`, `&`, ...).
    Punct(char),
}

/// One token with its `[start, end)` char span.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
}

impl Token {
    /// The identifier text, or `""` for non-ident tokens.
    pub fn ident(&self) -> &str {
        match &self.kind {
            TokenKind::Ident(s) => s,
            _ => "",
        }
    }

    /// True when the token is the single punct `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Tokenized stripped source plus a brace tree.
pub struct Lexed {
    /// The stripped source as chars (offsets index into this).
    pub chars: Vec<char>,
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// `{` offset → matching `}` offset.
    brace_match: BTreeMap<usize, usize>,
    /// Char offsets where each line starts (line `i+1` starts at `starts[i]`).
    line_starts: Vec<usize>,
}

impl Lexed {
    /// Tokenizes the stripped source and matches its braces.
    pub fn new(stripped: &str) -> Lexed {
        let chars: Vec<char> = stripped.chars().collect();
        let mut tokens = Vec::new();
        let mut line_starts = vec![0usize];
        let mut i = 0usize;
        let n = chars.len();
        while i < n {
            let c = chars[i];
            if c == '\n' {
                line_starts.push(i + 1);
                i += 1;
                continue;
            }
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    start,
                    end: i,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.') {
                    // Stop a range like `0..n` from being eaten as one number.
                    if chars[i] == '.' && i + 1 < n && chars[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    start,
                    end: i,
                });
                continue;
            }
            tokens.push(Token {
                kind: TokenKind::Punct(c),
                start: i,
                end: i + 1,
            });
            i += 1;
        }
        let mut brace_match = BTreeMap::new();
        let mut stack = Vec::new();
        for (pos, &c) in chars.iter().enumerate() {
            if c == '{' {
                stack.push(pos);
            } else if c == '}' {
                if let Some(open) = stack.pop() {
                    brace_match.insert(open, pos);
                }
            }
        }
        Lexed {
            chars,
            tokens,
            brace_match,
            line_starts,
        }
    }

    /// 1-based line of char offset `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= pos)
    }

    /// Matching `}` offset for the `{` at `open` (source end if unbalanced).
    pub fn close_of(&self, open: usize) -> usize {
        self.brace_match.get(&open).copied().unwrap_or(self.chars.len())
    }

    /// `(open, close)` brace pairs enclosing `pos`, outermost first.
    pub fn enclosing_braces(&self, pos: usize) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = self
            .brace_match
            .iter()
            .filter(|&(&o, &c)| o < pos && pos < c)
            .map(|(&o, &c)| (o, c))
            .collect();
        out.sort_unstable();
        out
    }

    /// Index of the first token whose span starts at or after `pos`.
    pub fn token_at(&self, pos: usize) -> usize {
        self.tokens.partition_point(|t| t.start < pos)
    }

    /// The stripped text of `[start, end)` as a `String`.
    pub fn text(&self, start: usize, end: usize) -> String {
        self.chars[start.min(self.chars.len())..end.min(self.chars.len())]
            .iter()
            .collect()
    }

    /// Matching `)` offset for the `(` at `open` (source end if unbalanced).
    pub fn close_paren(&self, open: usize) -> usize {
        let mut depth = 0i32;
        for i in open..self.chars.len() {
            match self.chars[i] {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.chars.len()
    }

    /// End offset (exclusive) of the statement containing/starting at
    /// `from`: scans forward to the `;` at the statement's own nesting
    /// level, treating a top-level `{ ... }` (match arm list, loop body,
    /// struct literal) as part of the statement. A block not followed by
    /// `;` (a `for`/`if`/block statement) ends the statement at its `}`.
    pub fn statement_end(&self, from: usize) -> usize {
        let n = self.chars.len();
        let mut i = from;
        // Signed depth: a hit can sit inside parens that close before the
        // statement does.
        let mut pdepth = 0i32;
        while i < n {
            match self.chars[i] {
                '(' | '[' => pdepth += 1,
                ')' | ']' => pdepth -= 1,
                ';' if pdepth <= 0 => return i + 1,
                '}' if pdepth <= 0 => return i, // enclosing block closed
                '{' if pdepth <= 0 => {
                    let close = self.close_of(i);
                    let mut j = close + 1;
                    while j < n && self.chars[j].is_whitespace() {
                        j += 1;
                    }
                    if j < n && self.chars[j] == ';' {
                        return j + 1;
                    }
                    return close + 1;
                }
                _ => {}
            }
            i += 1;
        }
        n
    }

    /// Start offset of the statement containing `pos`: scans backward to
    /// the previous `;`, `{` or `}` at the statement's nesting level,
    /// then past any leading whitespace.
    pub fn statement_start(&self, pos: usize) -> usize {
        let mut i = pos;
        let mut pdepth = 0i32;
        let mut start = 0usize;
        while i > 0 {
            i -= 1;
            match self.chars[i] {
                ')' | ']' => pdepth += 1,
                '(' | '[' => pdepth -= 1,
                ';' | '{' | '}' if pdepth <= 0 => {
                    start = i + 1;
                    break;
                }
                _ => {}
            }
        }
        while start < pos && self.chars[start].is_whitespace() {
            start += 1;
        }
        start
    }

    /// `(start, end)` of the statement *after* the one ending at `end`
    /// (exclusive); returns an empty span at `end` if the enclosing block
    /// closes first.
    pub fn next_statement(&self, end: usize) -> (usize, usize) {
        let n = self.chars.len();
        let mut i = end;
        while i < n && self.chars[i].is_whitespace() {
            i += 1;
        }
        if i >= n || self.chars[i] == '}' {
            return (i, i);
        }
        (i, self.statement_end(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> Lexed {
        Lexed::new(src)
    }

    #[test]
    fn tokens_have_kinds_and_spans() {
        let l = lex("let x = a.b(1);");
        let idents: Vec<&str> = l.tokens.iter().map(|t| t.ident()).filter(|s| !s.is_empty()).collect();
        assert_eq!(idents, ["let", "x", "a", "b"]);
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::Number));
        assert!(l.tokens.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn ranges_do_not_eat_the_dots() {
        let l = lex("for i in 0..n {}");
        assert!(l.tokens.iter().any(|t| t.ident() == "n"));
        let dots = l.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn brace_pairs_nest() {
        let src = "fn f() { if x { y(); } }";
        let l = lex(src);
        let inner_open = src.find("{ y").expect("inner");
        let pairs = l.enclosing_braces(inner_open + 2);
        assert_eq!(pairs.len(), 2, "fn body and if body");
        assert!(pairs[0].0 < pairs[1].0, "outermost first");
    }

    #[test]
    fn statement_end_handles_blocks_and_semicolons() {
        let src = "let a = f(x, y);\nfor i in v { g(i); }\nlet b = 1;";
        let l = lex(src);
        let e1 = l.statement_end(0);
        assert_eq!(l.text(0, e1), "let a = f(x, y);");
        let for_pos = src.find("for").expect("for");
        let e2 = l.statement_end(for_pos);
        assert_eq!(l.text(for_pos, e2), "for i in v { g(i); }");
        let (s3, e3) = l.next_statement(e2);
        assert_eq!(l.text(s3, e3), "let b = 1;");
    }

    #[test]
    fn statement_end_keeps_match_blocks_with_trailing_semicolon() {
        let src = "let g = match m.lock() { Ok(g) => g, Err(p) => p.into_inner(), };";
        let l = lex(src);
        assert_eq!(l.text(0, l.statement_end(0)), src);
    }

    #[test]
    fn statement_start_scans_back() {
        let src = "a();\nlet q = w.iter().sum();";
        let l = lex(src);
        let pos = src.find("iter").expect("iter");
        assert_eq!(l.statement_start(pos), src.find("let").expect("let"));
    }

    #[test]
    fn line_of_is_one_based() {
        let l = lex("a\nbb\nccc");
        assert_eq!(l.line_of(0), 1);
        assert_eq!(l.line_of(3), 2);
        assert_eq!(l.line_of(6), 3);
    }

    #[test]
    fn semicolons_inside_parens_do_not_end_statements() {
        let src = "let v = m.map(|x| { x; x + 1 }).sum();";
        let l = lex(src);
        assert_eq!(l.text(0, l.statement_end(0)), src);
    }
}
