//! The lint rules. Every rule returns [`Finding`]s; the driver fails the
//! run when any finding is an error.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::depgraph;
use crate::ir::FileIr;
use crate::lexer::Lexed;
use crate::scanner::{line_of, strip_comments_and_strings, test_region_mask};

/// One rule violation (or advisory note).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable rule name, e.g. `no-panic-ratchet`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the first offending token (0 for file-level findings).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Errors fail the lint; notes do not.
    pub is_error: bool,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = if self.is_error { "error" } else { "note" };
        write!(
            f,
            "{kind}[{}]: {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// A workspace source file loaded for linting.
pub struct SourceFile {
    /// Path relative to the workspace root (`/`-separated).
    pub rel: String,
    /// Raw content.
    pub raw: String,
    /// Content with comments/strings blanked.
    pub stripped: String,
    /// Per-char test-region mask over `stripped`.
    pub test_mask: Vec<bool>,
    /// True when the whole file is test/example/bench scaffolding.
    pub all_test: bool,
}

impl SourceFile {
    /// Loads and pre-scans one file. `rel` must use `/` separators.
    pub fn load(root: &Path, rel: &str) -> Result<SourceFile, String> {
        let raw = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("{rel}: {e}"))?;
        let stripped = strip_comments_and_strings(&raw);
        let test_mask = test_region_mask(&stripped);
        let all_test = rel.split('/').any(|part| {
            part == "tests" || part == "examples" || part == "benches" || part == "fixtures"
        }) || rel.ends_with("build.rs");
        Ok(SourceFile {
            rel: rel.to_string(),
            raw,
            stripped,
            test_mask,
            all_test,
        })
    }

    /// Char offsets of `pat` in the stripped source, excluding test regions
    /// (and everything, when the whole file is test scaffolding).
    fn production_hits(&self, pat: &str) -> Vec<usize> {
        if self.all_test {
            return Vec::new();
        }
        let mut hits = Vec::new();
        let mut from = 0usize;
        while let Some(pos) = self.stripped[from..].find(pat) {
            let byte_pos = from + pos;
            let char_pos = self.stripped[..byte_pos].chars().count();
            if !self.test_mask.get(char_pos).copied().unwrap_or(false) {
                hits.push(char_pos);
            }
            from = byte_pos + pat.len();
        }
        hits
    }
}

/// Per-file `(count, first offending line)` maps produced by the ratcheted
/// rules (only files with a nonzero count appear).
pub type Counts = BTreeMap<String, (usize, usize)>;

/// Shared ratchet logic: per-file counts may only go *down* relative to
/// the checked-in baseline; files absent from the baseline get an
/// allowance of zero. Counts below their allowance produce an advisory
/// note (ratchet down), as do baseline entries for deleted files.
fn apply_ratchet(
    rule: &'static str,
    counts: &Counts,
    baseline: &BTreeMap<String, usize>,
    files: &[SourceFile],
    over_message: &dyn Fn(usize, usize) -> String,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (rel, &(count, first_line)) in counts {
        let allowed = baseline.get(rel).copied().unwrap_or(0);
        if count > allowed {
            findings.push(Finding {
                rule,
                path: rel.clone(),
                line: first_line,
                message: over_message(count, allowed),
                is_error: true,
            });
        }
    }
    for (rel, &allowed) in baseline {
        let count = counts.get(rel).map(|&(c, _)| c).unwrap_or(0);
        if count >= allowed {
            continue;
        }
        let message = if files.iter().any(|f| &f.rel == rel) {
            format!(
                "improved: {count} hit(s), baseline allows {allowed}; run \
                 `cargo run -p xtask -- lint --update-baseline` to ratchet down"
            )
        } else {
            "baseline entry for a file that no longer exists; \
             run --update-baseline to drop it"
                .to_string()
        };
        findings.push(Finding {
            rule,
            path: rel.clone(),
            line: 0,
            message,
            is_error: false,
        });
    }
    findings
}

/// Returns true when the raw source lines from `lookback` lines above
/// `line` through `line` itself (1-based) contain `marker` — the shared
/// shape of the justification-comment escape hatches (`// det:`,
/// `// reduce:`, `// lock:`, `// ordering:`).
fn justified(raw: &str, line: usize, lookback: usize, marker: &str) -> bool {
    raw.lines()
        .skip(line.saturating_sub(lookback + 1))
        .take(lookback + 1)
        .any(|l| l.contains(marker))
}

// ---------------------------------------------------------------------------
// Rule 1: no-panic-ratchet
// ---------------------------------------------------------------------------

/// Panicking constructs forbidden in production code. Each entry is split so
/// this file's own source never contains the contiguous pattern.
fn panic_patterns() -> [(&'static str, String); 5] {
    [
        ("unwrap", [".unwr", "ap()"].concat()),
        ("expect", [".expe", "ct("].concat()),
        ("panic!", ["pani", "c!("].concat()),
        ("todo!", ["tod", "o!("].concat()),
        ("unimplemented!", ["unimplemen", "ted!("].concat()),
    ]
}

/// Counts panicking constructs per file in production (non-test) code.
pub fn panic_counts(files: &[SourceFile]) -> Counts {
    let pats = panic_patterns();
    let mut counts = BTreeMap::new();
    for f in files {
        let mut count = 0usize;
        let mut first_line = 0usize;
        for (_, p) in &pats {
            for pos in f.production_hits(p) {
                count += 1;
                let line = line_of(&f.stripped, pos);
                if first_line == 0 || line < first_line {
                    first_line = line;
                }
            }
        }
        if count > 0 {
            counts.insert(f.rel.clone(), (count, first_line));
        }
    }
    counts
}

/// The panic ratchet: per-file counts may only go down relative to the
/// checked-in baseline. New files start at an allowance of zero.
pub fn rule_no_panic_ratchet(
    files: &[SourceFile],
    baseline: &BTreeMap<String, usize>,
) -> Vec<Finding> {
    apply_ratchet(
        "no-panic-ratchet",
        &panic_counts(files),
        baseline,
        files,
        &|count, allowed| {
            format!(
                "{count} panicking construct(s) in production code, baseline allows {allowed} \
                 (convert to Result, or run `cargo run -p xtask -- lint --update-baseline` \
                 if this regression is intentional)"
            )
        },
    )
}

// ---------------------------------------------------------------------------
// Rule 1b: serve-span-coverage
// ---------------------------------------------------------------------------

/// Markers that count as observability instrumentation inside a function
/// body: an obs span, trace propagation, a metrics hook, or a stopwatch.
const SPAN_MARKERS: [&str; 4] = ["span(", "trace::", "metrics::", "Stopwatch::start"];

/// Char offset just past the matching `}` of the body opened at `open`,
/// or the source end when braces never re-balance (malformed input).
fn body_end(chars: &[char], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &c) in chars.iter().enumerate().skip(open) {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    chars.len()
}

/// Counts public entry points in the serving-path crates (`crates/serve`,
/// `crates/net`) whose body carries no observability marker, per file.
/// Bodyless declarations (trait methods ending in `;`) are skipped.
pub fn span_counts(files: &[SourceFile]) -> Counts {
    let mut counts = BTreeMap::new();
    for f in files {
        let hits = uninstrumented_pub_fns(f);
        if let Some(&first) = hits.first() {
            counts.insert(
                f.rel.clone(),
                (hits.len(), line_of(&f.stripped, first)),
            );
        }
    }
    counts
}

/// Char offsets (in the stripped source) of `pub fn`s in a serving-path
/// source file whose body has no [`SPAN_MARKERS`] hit.
fn uninstrumented_pub_fns(f: &SourceFile) -> Vec<usize> {
    if !f.rel.starts_with("crates/serve/src/") && !f.rel.starts_with("crates/net/src/") {
        return Vec::new();
    }
    let chars: Vec<char> = f.stripped.chars().collect();
    let mut out = Vec::new();
    for pos in f.production_hits("pub fn ") {
        // Find the body: the first `{` after the signature. A `;` first
        // means a bodyless trait-method declaration — nothing to lint.
        let mut open = None;
        for (i, &c) in chars.iter().enumerate().skip(pos) {
            match c {
                '{' => {
                    open = Some(i);
                    break;
                }
                ';' => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let end = body_end(&chars, open);
        let body: String = chars[open..end].iter().collect();
        if !SPAN_MARKERS.iter().any(|m| body.contains(m)) {
            out.push(pos);
        }
    }
    out
}

/// The span-coverage ratchet: every public entry point in the serving-path
/// crates should open an obs span (or record trace/metrics); per-file counts of
/// uninstrumented `pub fn`s may only go down relative to the checked-in
/// baseline. New files start at an allowance of zero.
pub fn rule_serve_span_coverage(
    files: &[SourceFile],
    baseline: &BTreeMap<String, usize>,
) -> Vec<Finding> {
    apply_ratchet(
        "serve-span-coverage",
        &span_counts(files),
        baseline,
        files,
        &|count, allowed| {
            format!(
                "{count} public fn(s) without an obs span/trace/metrics hook, baseline \
                 allows {allowed} (open an `embsr_obs::span(...)` in the body, or run \
                 `cargo run -p xtask -- lint --update-baseline` if the fn is genuinely \
                 not worth tracing)"
            )
        },
    )
}

// ---------------------------------------------------------------------------
// Rule 2: no-external-deps
// ---------------------------------------------------------------------------

/// Every dependency in every manifest must be an in-tree path (directly or
/// via `workspace = true` resolving to `[workspace.dependencies]` paths).
pub fn rule_no_external_deps(root: &Path, manifests: &[String]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rel in manifests {
        let content = match std::fs::read_to_string(root.join(rel)) {
            Ok(c) => c,
            Err(e) => {
                findings.push(Finding {
                    rule: "no-external-deps",
                    path: rel.clone(),
                    line: 0,
                    message: format!("unreadable manifest: {e}"),
                    is_error: true,
                });
                continue;
            }
        };
        let mut in_dep_section = false;
        for (idx, raw_line) in content.lines().enumerate() {
            let line = raw_line.trim();
            if line.starts_with('[') {
                in_dep_section = line == "[dependencies]"
                    || line == "[dev-dependencies]"
                    || line == "[build-dependencies]"
                    || line == "[workspace.dependencies]";
                continue;
            }
            if !in_dep_section || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((name, spec)) = line.split_once('=') else {
                continue;
            };
            let name = name.trim();
            let spec = spec.trim();
            let hermetic = spec.contains("path =")
                || spec.contains("path=")
                || spec.contains("workspace = true")
                || spec.contains("workspace=true")
                || name.ends_with(".workspace");
            if !hermetic {
                findings.push(Finding {
                    rule: "no-external-deps",
                    path: rel.clone(),
                    line: idx + 1,
                    message: format!(
                        "dependency `{name}` is not an in-tree path; the workspace is \
                         deliberately dependency-free (see the root Cargo.toml)"
                    ),
                    is_error: true,
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 3: no-timing-outside-obs
// ---------------------------------------------------------------------------

/// Wall-clock reads are confined to `crates/obs` so every timing goes
/// through the span/metrics layer (and stays mockable and greppable).
pub fn rule_no_timing_outside_obs(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if f.rel.starts_with("crates/obs/") {
            continue;
        }
        for pat in ["Instant::now", "SystemTime::now"] {
            for pos in f.production_hits(pat) {
                findings.push(Finding {
                    rule: "no-timing-outside-obs",
                    path: f.rel.clone(),
                    line: line_of(&f.stripped, pos),
                    message: format!(
                        "`{pat}` outside crates/obs; use `embsr_obs::span(...)` and \
                         `SpanGuard::elapsed()` instead"
                    ),
                    is_error: true,
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 4: gradcheck-coverage
// ---------------------------------------------------------------------------

/// Every op file under `crates/tensor/src/ops/` must have at least one
/// entry in the gradcheck registry (`verify.rs`, `file: "<stem>"`).
pub fn rule_gradcheck_coverage(root: &Path) -> Vec<Finding> {
    let ops_dir = root.join("crates/tensor/src/ops");
    let registry_rel = "crates/tensor/src/verify.rs";
    let registry = std::fs::read_to_string(root.join(registry_rel)).unwrap_or_default();
    let mut findings = Vec::new();
    if registry.is_empty() {
        findings.push(Finding {
            rule: "gradcheck-coverage",
            path: registry_rel.to_string(),
            line: 0,
            message: "gradcheck registry missing or unreadable".to_string(),
            is_error: true,
        });
        return findings;
    }
    let entries = match std::fs::read_dir(&ops_dir) {
        Ok(e) => e,
        Err(e) => {
            findings.push(Finding {
                rule: "gradcheck-coverage",
                path: "crates/tensor/src/ops".to_string(),
                line: 0,
                message: format!("cannot list ops directory: {e}"),
                is_error: true,
            });
            return findings;
        }
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(stem) = name.strip_suffix(".rs") else {
            continue;
        };
        if stem == "mod" {
            continue;
        }
        let marker = format!("file: \"{stem}\"");
        if !registry.contains(&marker) {
            findings.push(Finding {
                rule: "gradcheck-coverage",
                path: format!("crates/tensor/src/ops/{name}"),
                line: 0,
                message: format!(
                    "no gradcheck registry entry with `{marker}` in {registry_rel}; \
                     every op file needs finite-difference coverage"
                ),
                is_error: true,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 5: nn-forward-unification
// ---------------------------------------------------------------------------

/// All forward passes in `crates/nn` go through the `Forward` trait (or a
/// named inherent method like `attend`/`readout`); new ad-hoc
/// `pub fn forward` methods fragment the module API and are rejected.
/// `module.rs` itself — where the trait lives — is exempt.
pub fn rule_nn_forward_unification(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !f.rel.starts_with("crates/nn/src/") || f.rel == "crates/nn/src/module.rs" {
            continue;
        }
        for pos in f.production_hits("pub fn forward") {
            findings.push(Finding {
                rule: "nn-forward-unification",
                path: f.rel.clone(),
                line: line_of(&f.stripped, pos),
                message: "ad-hoc `pub fn forward` in crates/nn; implement the `Forward` \
                          trait from module.rs (callers use `.apply(x)` / `.forward(x, ctx)`) \
                          or expose a named method (`attend`, `readout`, ...) instead"
                    .to_string(),
                is_error: true,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 6: doc-public-items
// ---------------------------------------------------------------------------

/// Item keywords that, following `pub `, introduce an API item we require
/// docs on.
const DOC_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "unsafe",
];

/// Public items in `crates/tensor` and `crates/nn` must carry a doc comment
/// (`pub use` re-exports and `pub(crate)`/`pub(super)` items are exempt).
pub fn rule_doc_public_items(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        let in_scope = f.rel.starts_with("crates/tensor/src/") || f.rel.starts_with("crates/nn/src/");
        if !in_scope || f.all_test {
            continue;
        }
        let stripped_lines: Vec<&str> = f.stripped.lines().collect();
        let raw_lines: Vec<&str> = f.raw.lines().collect();
        let mut char_offset = 0usize;
        for (i, line) in stripped_lines.iter().enumerate() {
            let line_start = char_offset;
            char_offset += line.chars().count() + 1;
            let trimmed = line.trim_start();
            if !trimmed.starts_with("pub ") {
                continue;
            }
            let rest = &trimmed[4..];
            let is_item = DOC_KEYWORDS
                .iter()
                .any(|k| rest.starts_with(k) && rest[k.len()..].starts_with([' ', '<']));
            if !is_item {
                continue; // pub use, pub(crate), struct fields, etc.
            }
            if f.test_mask.get(line_start).copied().unwrap_or(false) {
                continue;
            }
            // Walk upward in the RAW source (doc comments are blanked in the
            // stripped copy): attributes may sit between the docs and the item.
            let mut j = i;
            let mut documented = false;
            while j > 0 {
                j -= 1;
                let above = raw_lines.get(j).map_or("", |l| l.trim_start());
                if above.starts_with("#[") || above.starts_with("#![") {
                    continue;
                }
                documented = above.starts_with("///") || above.starts_with("/**");
                break;
            }
            if !documented {
                findings.push(Finding {
                    rule: "doc-public-items",
                    path: f.rel.clone(),
                    line: i + 1,
                    message: format!(
                        "undocumented public item `{}`",
                        trimmed.chars().take(60).collect::<String>().trim_end()
                    ),
                    is_error: true,
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 7: map-iteration-determinism
// ---------------------------------------------------------------------------

/// Methods whose result order is the map's per-instance hash order.
const ORDER_LEAKING_METHODS: [&str; 13] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
];

/// Substrings that launder an iteration when they appear in the hit's own
/// statement or the one immediately after it: sorting, rebuilding into an
/// ordered container, or reducing to a cardinality.
const LAUNDERING: [&str; 4] = [".sort", "BTreeMap", "BTreeSet", ".count()"];

/// Char offsets of HashMap/HashSet iterations in production code whose
/// hash order can escape: a `for .. in map` header or an order-leaking
/// method call on a tracked identifier, not laundered by a sort/BTree
/// rebuild in the statement window and not justified by a `// det:`
/// comment on or near the line.
fn map_iteration_hits(f: &SourceFile, ir: &FileIr) -> Vec<usize> {
    if f.all_test || ir.hash_idents.is_empty() {
        return Vec::new();
    }
    let toks = &ir.lex.tokens;
    let mut hits = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        let name = t.ident();
        if name.is_empty() || !ir.hash_idents.contains(name) {
            continue;
        }
        if f.test_mask.get(t.start).copied().unwrap_or(false) {
            continue;
        }
        // (a) `map.iter()` / `.keys()` / `.drain(..)` / set algebra.
        let method_hit = i + 3 < toks.len()
            && toks[i + 1].is_punct('.')
            && ORDER_LEAKING_METHODS.contains(&toks[i + 2].ident())
            && toks[i + 3].is_punct('(');
        // (b) `for x in [&][mut] [self.] map` — direct IntoIterator use.
        // `map[key]` indexes a *value* (possibly an ordered one), so a
        // following `[` disqualifies; a following `.` is either case (a)
        // or a non-iterating method.
        let mut j = i;
        while j > 0
            && (toks[j - 1].is_punct('&')
                || toks[j - 1].is_punct('.')
                || toks[j - 1].ident() == "mut"
                || toks[j - 1].ident() == "self")
        {
            j -= 1;
        }
        let next_blocks = i + 1 < toks.len()
            && (toks[i + 1].is_punct('.') || toks[i + 1].is_punct('['));
        let for_hit = j > 0 && toks[j - 1].ident() == "in" && !next_blocks;
        if !(method_hit || for_hit) {
            continue;
        }
        let line = ir.lex.line_of(t.start);
        if justified(&f.raw, line, 2, "det:") {
            continue;
        }
        let stmt_end = ir.lex.statement_end(t.start);
        let (_, next_end) = ir.lex.next_statement(stmt_end);
        let window = ir.lex.text(t.start, next_end.max(stmt_end));
        if LAUNDERING.iter().any(|p| window.contains(p)) {
            continue;
        }
        hits.insert(t.start);
    }
    hits.into_iter().collect()
}

/// Per-file counts of unlaundered map iterations (for the ratchet).
pub fn map_iteration_counts(files: &[SourceFile], irs: &[FileIr]) -> Counts {
    let mut counts = BTreeMap::new();
    for (f, ir) in files.iter().zip(irs) {
        let hits = map_iteration_hits(f, ir);
        if let Some(&first) = hits.first() {
            counts.insert(f.rel.clone(), (hits.len(), ir.lex.line_of(first)));
        }
    }
    counts
}

/// HashMap/HashSet iteration order is a per-process random function; on
/// score/gradient/metric paths it breaks the bitwise contract. Iterations
/// must sort, rebuild into a BTree container, reduce to a cardinality, or
/// carry a `// det:` justification; everything else is ratcheted.
pub fn rule_map_iteration_determinism(
    files: &[SourceFile],
    irs: &[FileIr],
    baseline: &BTreeMap<String, usize>,
) -> Vec<Finding> {
    apply_ratchet(
        "map-iteration-determinism",
        &map_iteration_counts(files, irs),
        baseline,
        files,
        &|count, allowed| {
            format!(
                "{count} HashMap/HashSet iteration(s) whose hash order can leak into \
                 results, baseline allows {allowed} (sort the items, use a \
                 BTreeMap/BTreeSet, add a `// det:` justification, or run \
                 `cargo run -p xtask -- lint --update-baseline`)"
            )
        },
    )
}

// ---------------------------------------------------------------------------
// Rule 8: float-reduction-order
// ---------------------------------------------------------------------------

/// Distinct identifiers indexed with `[` inside `[start, end)`.
fn indexed_bases(lex: &Lexed, start: usize, end: usize) -> usize {
    let mut names = BTreeSet::new();
    let toks = &lex.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.start < start || t.ident().is_empty() {
            continue;
        }
        if t.start >= end {
            break;
        }
        if i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            names.insert(t.ident().to_string());
        }
    }
    names.len()
}

/// f32 accumulation order is part of the bitwise training contract, so
/// gradient merging in `crates/train` must route through the fixed-order
/// `tree_reduce` in embsr-tensor. Flags `a[i] += b[i]`-shaped statements
/// (two-plus distinct indexed bases) and `.zip(`-driven `+=` loops unless
/// the statement mentions `tree_reduce` or carries a `// reduce:`
/// justification.
pub fn rule_float_reduction_order(files: &[SourceFile], irs: &[FileIr]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (f, ir) in files.iter().zip(irs) {
        if !f.rel.starts_with("crates/train/src/") {
            continue;
        }
        for pos in f.production_hits("+=") {
            let start = ir.lex.statement_start(pos);
            let end = ir.lex.statement_end(start);
            let stmt = ir.lex.text(start, end);
            if stmt.contains("tree_reduce") || indexed_bases(&ir.lex, start, end) < 2 {
                continue;
            }
            let line = ir.lex.line_of(pos);
            if justified(&f.raw, line, 2, "reduce:") {
                continue;
            }
            findings.push(Finding {
                rule: "float-reduction-order",
                path: f.rel.clone(),
                line,
                message: "ad-hoc element-wise f32 accumulation on a train reduce path; \
                          route the merge through embsr_tensor's fixed-order `tree_reduce` \
                          or justify with a `// reduce:` comment"
                    .to_string(),
                is_error: true,
            });
        }
        if f.all_test {
            continue;
        }
        for t in &ir.lex.tokens {
            if t.ident() != "for" || f.test_mask.get(t.start).copied().unwrap_or(false) {
                continue;
            }
            // The loop body is the first `{` outside parens after `for`.
            let mut open = None;
            let mut pdepth = 0i32;
            let mut j = t.start;
            while j < ir.lex.chars.len() {
                match ir.lex.chars[j] {
                    '(' | '[' => pdepth += 1,
                    ')' | ']' => pdepth -= 1,
                    '{' if pdepth <= 0 => {
                        open = Some(j);
                        break;
                    }
                    ';' if pdepth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = open else { continue };
            let header = ir.lex.text(t.start, open);
            if !header.contains(".zip(") {
                continue;
            }
            let body = ir.lex.text(open, ir.lex.close_of(open));
            if !body.contains("+=") {
                continue;
            }
            let line = ir.lex.line_of(t.start);
            if justified(&f.raw, line, 2, "reduce:") {
                continue;
            }
            findings.push(Finding {
                rule: "float-reduction-order",
                path: f.rel.clone(),
                line,
                message: "`.zip(`-driven `+=` accumulation loop in crates/train; route \
                          the merge through embsr_tensor's fixed-order `tree_reduce` or \
                          justify with a `// reduce:` comment"
                    .to_string(),
                is_error: true,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 9: lock-discipline
// ---------------------------------------------------------------------------

/// Method calls on a freshly acquired lock result that still yield the
/// guard (poison recovery and friends). Anything else after `.lock()`
/// means the guard is a statement-scoped temporary, not a live binding.
const GUARD_PRESERVING: [&str; 4] = ["unwrap", "expect", "unwrap_or_else", "into_inner"];

/// Worker/spawn boundary markers a `MutexGuard` must not be held across:
/// the pool primitives plus raw scoped threads.
const BOUNDARY_CALLS: [&str; 4] = [
    ".spawn(",
    "run_with_workers(",
    "run_parallel(",
    "thread::scope(",
];

/// A lock call site inside one statement: the token index of the `lock`
/// ident and the char offsets of its argument parens.
struct LockSite {
    lock_tok: usize,
    open: usize,
    close: usize,
    /// True for the `lock(x)` helper-fn form, false for `.lock()`.
    helper: bool,
}

/// Finds `.lock(` / `lock(` call sites with token start in `[from, to)`.
fn lock_sites(lex: &Lexed, from: usize, to: usize) -> Vec<LockSite> {
    let toks = &lex.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.ident() != "lock" || t.start < from || t.start >= to {
            continue;
        }
        if !(i + 1 < toks.len() && toks[i + 1].is_punct('(')) {
            continue;
        }
        let helper = !(i > 0 && toks[i - 1].is_punct('.'));
        let open = toks[i + 1].start;
        out.push(LockSite {
            lock_tok: i,
            open,
            close: lex.close_paren(open),
            helper,
        });
    }
    out
}

/// Normalized (whitespace-free, `&`/`mut`-stripped) text of the mutex a
/// lock site locks: the receiver chain for `.lock()`, the first argument
/// for the `lock(x)` helper.
fn lock_target(lex: &Lexed, site: &LockSite) -> String {
    let toks = &lex.tokens;
    let text_of = |start: usize, end: usize| -> String {
        lex.text(start, end)
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect()
    };
    if site.helper {
        let inner = text_of(site.open + 1, site.close);
        return inner
            .trim_start_matches('&')
            .trim_start_matches("mut")
            .to_string();
    }
    // Walk the receiver chain back from the `.` before `lock`: idents,
    // `.`, and `(..)` call suffixes, stopping at keywords/operators.
    let dot = site.lock_tok - 1;
    let mut j = dot;
    loop {
        if j == 0 {
            break;
        }
        let prev = &toks[j - 1];
        if prev.is_punct(')') {
            // Scan back to the matching `(` token.
            let mut depth = 0i32;
            let mut k = j - 1;
            loop {
                if toks[k].is_punct(')') {
                    depth += 1;
                } else if toks[k].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            j = k;
            continue;
        }
        let id = prev.ident();
        if !id.is_empty() {
            if matches!(id, "match" | "let" | "return" | "if" | "else" | "in" | "while") {
                break;
            }
            j -= 1;
            if j > 0 && toks[j - 1].is_punct('.') {
                j -= 1;
                continue;
            }
            break;
        }
        break;
    }
    text_of(toks[j].start, toks[dot].start)
}

/// True when every method call in `[from, to)` tail text keeps the lock
/// result a guard (see [`GUARD_PRESERVING`]); `[` indexing or any other
/// `.method(` means the guard is consumed within the statement.
fn tail_keeps_guard(lex: &Lexed, from: usize, to: usize) -> bool {
    let toks = &lex.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.start < from {
            continue;
        }
        if t.start >= to {
            break;
        }
        if t.is_punct('[') {
            return false;
        }
        if t.is_punct('.')
            && i + 2 < toks.len()
            && !toks[i + 1].ident().is_empty()
            && toks[i + 2].is_punct('(')
            && !GUARD_PRESERVING.contains(&toks[i + 1].ident())
        {
            return false;
        }
    }
    true
}

/// Concurrency shape checks on Mutex/Condvar use:
///
/// * a `Condvar` wait must sit inside a `loop`/`while` re-check (spurious
///   wakeups and racing predicates make a bare `if`-guarded wait a bug);
/// * a statement-bound `MutexGuard` must not still be live at a second
///   lock of the same mutex (self-deadlock: `std::sync::Mutex` is not
///   reentrant);
/// * a live `MutexGuard` must not be held across a pool worker-callback /
///   spawn boundary (workers contending on it serialize or deadlock).
///
/// Escape hatch: a `// lock:` justification on or near the line.
pub fn rule_lock_discipline(files: &[SourceFile], irs: &[FileIr]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (f, ir) in files.iter().zip(irs) {
        if f.all_test {
            continue;
        }
        let toks = &ir.lex.tokens;
        let masked = |pos: usize| f.test_mask.get(pos).copied().unwrap_or(false);
        // (a) Condvar waits re-check in a loop.
        for (i, t) in toks.iter().enumerate() {
            let name = t.ident();
            if name.is_empty() || !ir.condvar_idents.contains(name) || masked(t.start) {
                continue;
            }
            let is_wait = i + 2 < toks.len()
                && toks[i + 1].is_punct('.')
                && toks[i + 2].ident().starts_with("wait");
            if !is_wait || ir.in_loop(t.start) {
                continue;
            }
            let line = ir.lex.line_of(t.start);
            if justified(&f.raw, line, 2, "lock:") {
                continue;
            }
            findings.push(Finding {
                rule: "lock-discipline",
                path: f.rel.clone(),
                line,
                message: format!(
                    "Condvar wait on `{name}` is not inside a `loop`/`while` re-check; \
                     spurious wakeups and racing predicates require \
                     `while !ready {{ guard = {name}.wait(guard); }}` (or justify with \
                     a `// lock:` comment)"
                ),
                is_error: true,
            });
        }
        // (b)+(c) live guard bindings: `let g = <mutex>.lock()...;`
        for (i, t) in toks.iter().enumerate() {
            if t.ident() != "let" || masked(t.start) {
                continue;
            }
            let Some(name_tok) = toks[i + 1..]
                .iter()
                .take(2)
                .find(|x| !x.ident().is_empty() && x.ident() != "mut")
            else {
                continue;
            };
            let binding = name_tok.ident().to_string();
            let stmt_end = ir.lex.statement_end(t.start);
            let Some(site) = lock_sites(&ir.lex, t.start, stmt_end).into_iter().last() else {
                continue;
            };
            if !tail_keeps_guard(&ir.lex, site.close + 1, stmt_end) {
                continue; // temporary, dropped at the end of the statement
            }
            let target = lock_target(&ir.lex, &site);
            let let_line = ir.lex.line_of(t.start);
            if justified(&f.raw, let_line, 2, "lock:") {
                continue;
            }
            // The guard lives to the end of its block, or to `drop(g)`.
            let mut scope_end = ir
                .lex
                .enclosing_braces(t.start)
                .last()
                .map(|&(_, c)| c)
                .unwrap_or(ir.lex.chars.len());
            for (k, d) in toks.iter().enumerate() {
                if d.start <= stmt_end || d.start >= scope_end || d.ident() != "drop" {
                    continue;
                }
                if k + 2 < toks.len()
                    && toks[k + 1].is_punct('(')
                    && toks[k + 2].ident() == binding
                {
                    scope_end = d.start;
                    break;
                }
            }
            for later in lock_sites(&ir.lex, stmt_end, scope_end) {
                if masked(later.open) {
                    continue;
                }
                if lock_target(&ir.lex, &later) == target {
                    findings.push(Finding {
                        rule: "lock-discipline",
                        path: f.rel.clone(),
                        line: ir.lex.line_of(later.open),
                        message: format!(
                            "`{target}` locked again while guard `{binding}` from line \
                             {let_line} is still live; std::sync::Mutex is not reentrant, \
                             this self-deadlocks (drop the guard first, or justify with \
                             a `// lock:` comment)"
                        ),
                        is_error: true,
                    });
                }
            }
            let scope_text = ir.lex.text(stmt_end, scope_end);
            if let Some(pat) = BOUNDARY_CALLS.iter().find(|p| scope_text.contains(*p)) {
                findings.push(Finding {
                    rule: "lock-discipline",
                    path: f.rel.clone(),
                    line: let_line,
                    message: format!(
                        "MutexGuard `{binding}` (locking `{target}`) is live across a \
                         `{pat}` worker boundary; workers contending on the mutex \
                         serialize or deadlock — drop the guard before dispatching \
                         (or justify with a `// lock:` comment)"
                    ),
                    is_error: true,
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 10: atomics-ordering-audit
// ---------------------------------------------------------------------------

/// The memory-ordering variants (filters out `cmp::Ordering::Less` etc.).
const MEM_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Every atomic memory-ordering choice is a claim about which reorderings
/// are safe; the claim must be written down. Each `Ordering::<X>` site
/// needs an `// ordering:` comment between the head of its enclosing
/// function (minus three lines, so the comment may sit on the fn's doc
/// block) and the site itself; `SeqCst` — the "I could not prove anything
/// weaker" ordering — additionally requires the justification to mention
/// SeqCst explicitly.
pub fn rule_atomics_ordering_audit(files: &[SourceFile], irs: &[FileIr]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (f, ir) in files.iter().zip(irs) {
        for pos in f.production_hits("Ordering::") {
            let after = pos + "Ordering::".chars().count();
            let idx = ir.lex.token_at(after);
            let Some(tok) = ir.lex.tokens.get(idx) else { continue };
            let variant = tok.ident();
            if tok.start != after || !MEM_ORDERINGS.contains(&variant) {
                continue;
            }
            let line = ir.lex.line_of(pos);
            let (fn_line, fn_name) = ir
                .enclosing_fn(pos)
                .map(|x| (x.line, x.name.as_str()))
                .unwrap_or((line, "<no fn>"));
            let lookback = line.saturating_sub(fn_line.saturating_sub(3));
            let window: String = f
                .raw
                .lines()
                .skip(line.saturating_sub(lookback + 1))
                .take(lookback + 1)
                .collect::<Vec<_>>()
                .join("\n");
            // The site line itself always spells `Ordering::SeqCst`; scrub
            // the token so only *prose* mentions satisfy the SeqCst check.
            let scrubbed = window.replace("Ordering::SeqCst", "");
            if !window.contains("ordering:") {
                findings.push(Finding {
                    rule: "atomics-ordering-audit",
                    path: f.rel.clone(),
                    line,
                    message: format!(
                        "`Ordering::{variant}` in `{fn_name}` without a justifying \
                         `// ordering:` comment between the enclosing fn and the site; \
                         write down which reorderings the choice rules out"
                    ),
                    is_error: true,
                });
            } else if variant == "SeqCst" && !scrubbed.to_lowercase().contains("seqcst") {
                findings.push(Finding {
                    rule: "atomics-ordering-audit",
                    path: f.rel.clone(),
                    line,
                    message: "`Ordering::SeqCst` whose `// ordering:` justification never \
                              mentions SeqCst; explain why nothing weaker suffices (or \
                              weaken the ordering)"
                        .to_string(),
                    is_error: true,
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 11: no-unsafe-ratchet
// ---------------------------------------------------------------------------

/// The workspace is presently free of the keyword this rule bans (split so
/// this file never contains it contiguously); pin it at zero. No baseline,
/// no escape comment: a future genuine need (SIMD intrinsics) must come
/// with its own rule change and review.
pub fn rule_no_unsafe_ratchet(files: &[SourceFile]) -> Vec<Finding> {
    let kw = ["uns", "afe"].concat();
    let mut findings = Vec::new();
    for f in files {
        for pos in f.production_hits(&kw) {
            // Whole-word check: identifiers may embed the keyword.
            let chars: Vec<char> = f.stripped.chars().collect();
            let before_ok = pos == 0
                || !(chars[pos - 1].is_alphanumeric() || chars[pos - 1] == '_');
            let after = pos + kw.chars().count();
            let after_ok = after >= chars.len()
                || !(chars[after].is_alphanumeric() || chars[after] == '_');
            if !(before_ok && after_ok) {
                continue;
            }
            findings.push(Finding {
                rule: "no-unsafe-ratchet",
                path: f.rel.clone(),
                line: line_of(&f.stripped, pos),
                message: format!(
                    "`{kw}` in production code; the workspace is pinned at zero `{kw}` \
                     blocks — express the operation safely or bring the block with a \
                     rule change that documents its proof obligations"
                ),
                is_error: true,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 12: crate-layering
// ---------------------------------------------------------------------------

/// Enforces the DESIGN.md dependency DAG via [`depgraph::LAYERS`]: every
/// `crates/*/Cargo.toml` belongs to a named layer, `[dependencies]` /
/// `[build-dependencies]` edges must point strictly downward
/// (dev-dependencies may reach sideways for test scaffolding), cycles are
/// rejected, and production `use embsr_*` references in source are checked
/// against the same table (so a path dependency can't be smuggled in
/// through a re-export).
pub fn rule_crate_layering(
    root: &Path,
    manifests: &[String],
    files: &[SourceFile],
    irs: &[FileIr],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut crates = Vec::new();
    for rel in manifests {
        let is_crate_manifest = rel.starts_with("crates/")
            && rel.ends_with("/Cargo.toml")
            && rel.matches('/').count() == 2;
        if !is_crate_manifest {
            continue;
        }
        let Ok(content) = std::fs::read_to_string(root.join(rel)) else {
            continue; // unreadable manifests are no-external-deps' problem
        };
        if let Some(info) = depgraph::parse_manifest(rel, &content) {
            crates.push(info);
        }
    }
    for c in &crates {
        let Some(layer) = depgraph::layer_of(&c.name) else {
            findings.push(Finding {
                rule: "crate-layering",
                path: c.manifest_rel.clone(),
                line: 0,
                message: format!(
                    "crate `{}` is missing from the layer table; add it to LAYERS in \
                     crates/xtask/src/depgraph.rs (placing a crate in the DAG is an \
                     architecture decision, not a default)",
                    c.name
                ),
                is_error: true,
            });
            continue;
        };
        for (dep, line) in &c.deps {
            let Some(dep_layer) = depgraph::layer_of(dep) else {
                if dep.starts_with("embsr-") || dep == "xtask" {
                    findings.push(Finding {
                        rule: "crate-layering",
                        path: c.manifest_rel.clone(),
                        line: *line,
                        message: format!(
                            "dependency `{dep}` is missing from the layer table in \
                             crates/xtask/src/depgraph.rs"
                        ),
                        is_error: true,
                    });
                }
                continue;
            };
            if dep_layer >= layer {
                findings.push(Finding {
                    rule: "crate-layering",
                    path: c.manifest_rel.clone(),
                    line: *line,
                    message: format!(
                        "`{}` (layer {layer}) depends on `{dep}` (layer {dep_layer}); \
                         edges must point strictly down the DESIGN.md DAG",
                        c.name
                    ),
                    is_error: true,
                });
            }
        }
    }
    if let Some(cycle) = depgraph::find_cycle(&crates) {
        let path = crates
            .iter()
            .find(|c| Some(&c.name) == cycle.first())
            .map(|c| c.manifest_rel.clone())
            .unwrap_or_else(|| "Cargo.toml".to_string());
        findings.push(Finding {
            rule: "crate-layering",
            path,
            line: 0,
            message: format!("dependency cycle: {}", cycle.join(" -> ")),
            is_error: true,
        });
    }
    // Source-level check: `embsr_*` references in production code.
    for (f, ir) in files.iter().zip(irs) {
        if f.all_test {
            continue;
        }
        let Some(rest) = f.rel.strip_prefix("crates/") else { continue };
        let Some((dir, tail)) = rest.split_once('/') else { continue };
        if !tail.starts_with("src/") {
            continue;
        }
        let me = if dir == "xtask" {
            "xtask".to_string()
        } else {
            format!("embsr-{dir}")
        };
        let Some(my_layer) = depgraph::layer_of(&me) else { continue };
        let mut reported: BTreeSet<String> = BTreeSet::new();
        // Imports first (precise `use` lines), then a token-scan backstop
        // for fully qualified `embsr_x::` paths used without an import.
        for u in &ir.uses {
            let Some(rest) = u.text.strip_prefix("use ") else { continue };
            let dep_ident: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !dep_ident.starts_with("embsr_")
                || f.test_mask.get(u.pos).copied().unwrap_or(false)
            {
                continue;
            }
            let dep = dep_ident.replace('_', "-");
            if dep == me || reported.contains(&dep) {
                continue;
            }
            let Some(dep_layer) = depgraph::layer_of(&dep) else { continue };
            if dep_layer >= my_layer {
                reported.insert(dep.clone());
                findings.push(Finding {
                    rule: "crate-layering",
                    path: f.rel.clone(),
                    line: u.line,
                    message: format!(
                        "`{me}` (layer {my_layer}) imports `{dep}` (layer {dep_layer}) \
                         via `{}`; edges must point strictly down the DESIGN.md DAG",
                        u.text
                    ),
                    is_error: true,
                });
            }
        }
        for t in &ir.lex.tokens {
            let id = t.ident();
            if !id.starts_with("embsr_") || f.test_mask.get(t.start).copied().unwrap_or(false) {
                continue;
            }
            let dep = id.replace('_', "-");
            if dep == me || reported.contains(&dep) {
                continue;
            }
            let Some(dep_layer) = depgraph::layer_of(&dep) else { continue };
            if dep_layer >= my_layer {
                reported.insert(dep.clone());
                findings.push(Finding {
                    rule: "crate-layering",
                    path: f.rel.clone(),
                    line: ir.lex.line_of(t.start),
                    message: format!(
                        "`{me}` (layer {my_layer}) references `{dep}` (layer {dep_layer}) \
                         in production code; edges must point strictly down the \
                         DESIGN.md DAG"
                    ),
                    is_error: true,
                });
            }
        }
    }
    findings
}
