//! The lint rules. Every rule returns [`Finding`]s; the driver fails the
//! run when any finding is an error.

use std::collections::BTreeMap;
use std::path::Path;

use crate::scanner::{line_of, strip_comments_and_strings, test_region_mask};

/// One rule violation (or advisory note).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable rule name, e.g. `no-panic-ratchet`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the first offending token (0 for file-level findings).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Errors fail the lint; notes do not.
    pub is_error: bool,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = if self.is_error { "error" } else { "note" };
        write!(
            f,
            "{kind}[{}]: {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// A workspace source file loaded for linting.
pub struct SourceFile {
    /// Path relative to the workspace root (`/`-separated).
    pub rel: String,
    /// Raw content.
    pub raw: String,
    /// Content with comments/strings blanked.
    pub stripped: String,
    /// Per-char test-region mask over `stripped`.
    pub test_mask: Vec<bool>,
    /// True when the whole file is test/example/bench scaffolding.
    pub all_test: bool,
}

impl SourceFile {
    /// Loads and pre-scans one file. `rel` must use `/` separators.
    pub fn load(root: &Path, rel: &str) -> Result<SourceFile, String> {
        let raw = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("{rel}: {e}"))?;
        let stripped = strip_comments_and_strings(&raw);
        let test_mask = test_region_mask(&stripped);
        let all_test = rel.split('/').any(|part| {
            part == "tests" || part == "examples" || part == "benches" || part == "fixtures"
        }) || rel.ends_with("build.rs");
        Ok(SourceFile {
            rel: rel.to_string(),
            raw,
            stripped,
            test_mask,
            all_test,
        })
    }

    /// Char offsets of `pat` in the stripped source, excluding test regions
    /// (and everything, when the whole file is test scaffolding).
    fn production_hits(&self, pat: &str) -> Vec<usize> {
        if self.all_test {
            return Vec::new();
        }
        let mut hits = Vec::new();
        let mut from = 0usize;
        while let Some(pos) = self.stripped[from..].find(pat) {
            let byte_pos = from + pos;
            let char_pos = self.stripped[..byte_pos].chars().count();
            if !self.test_mask.get(char_pos).copied().unwrap_or(false) {
                hits.push(char_pos);
            }
            from = byte_pos + pat.len();
        }
        hits
    }
}

// ---------------------------------------------------------------------------
// Rule 1: no-panic-ratchet
// ---------------------------------------------------------------------------

/// Panicking constructs forbidden in production code. Each entry is split so
/// this file's own source never contains the contiguous pattern.
fn panic_patterns() -> [(&'static str, String); 5] {
    [
        ("unwrap", [".unwr", "ap()"].concat()),
        ("expect", [".expe", "ct("].concat()),
        ("panic!", ["pani", "c!("].concat()),
        ("todo!", ["tod", "o!("].concat()),
        ("unimplemented!", ["unimplemen", "ted!("].concat()),
    ]
}

/// Counts panicking constructs per file in production (non-test) code.
pub fn panic_counts(files: &[SourceFile]) -> BTreeMap<String, usize> {
    let pats = panic_patterns();
    let mut counts = BTreeMap::new();
    for f in files {
        let total: usize = pats.iter().map(|(_, p)| f.production_hits(p).len()).sum();
        if total > 0 {
            counts.insert(f.rel.clone(), total);
        }
    }
    counts
}

/// The panic ratchet: per-file counts may only go down relative to the
/// checked-in baseline. New files start at an allowance of zero.
pub fn rule_no_panic_ratchet(
    files: &[SourceFile],
    baseline: &BTreeMap<String, usize>,
) -> Vec<Finding> {
    let pats = panic_patterns();
    let mut findings = Vec::new();
    for f in files {
        let mut count = 0usize;
        let mut first_line = 0usize;
        for (_, p) in &pats {
            for pos in f.production_hits(p) {
                count += 1;
                let line = line_of(&f.stripped, pos);
                if first_line == 0 || line < first_line {
                    first_line = line;
                }
            }
        }
        let allowed = baseline.get(&f.rel).copied().unwrap_or(0);
        if count > allowed {
            findings.push(Finding {
                rule: "no-panic-ratchet",
                path: f.rel.clone(),
                line: first_line,
                message: format!(
                    "{count} panicking construct(s) in production code, baseline allows {allowed} \
                     (convert to Result, or run `cargo run -p xtask -- lint --update-baseline` \
                     if this regression is intentional)"
                ),
                is_error: true,
            });
        } else if count < allowed {
            findings.push(Finding {
                rule: "no-panic-ratchet",
                path: f.rel.clone(),
                line: 0,
                message: format!(
                    "improved: {count} panicking construct(s), baseline allows {allowed}; \
                     run `cargo run -p xtask -- lint --update-baseline` to ratchet down"
                ),
                is_error: false,
            });
        }
    }
    // Stale baseline entries for deleted files are advisory only.
    for rel in baseline.keys() {
        if !files.iter().any(|f| &f.rel == rel) {
            findings.push(Finding {
                rule: "no-panic-ratchet",
                path: rel.clone(),
                line: 0,
                message: "baseline entry for a file that no longer exists; \
                          run --update-baseline to drop it"
                    .to_string(),
                is_error: false,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 1b: serve-span-coverage
// ---------------------------------------------------------------------------

/// Markers that count as observability instrumentation inside a function
/// body: an obs span, trace propagation, a metrics hook, or a stopwatch.
const SPAN_MARKERS: [&str; 4] = ["span(", "trace::", "metrics::", "Stopwatch::start"];

/// Char offset just past the matching `}` of the body opened at `open`,
/// or the source end when braces never re-balance (malformed input).
fn body_end(chars: &[char], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &c) in chars.iter().enumerate().skip(open) {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    chars.len()
}

/// Counts public entry points in `crates/serve/src/` whose body carries no
/// observability marker, per file. Bodyless declarations (trait methods
/// ending in `;`) are skipped.
pub fn span_counts(files: &[SourceFile]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for f in files {
        let n = uninstrumented_pub_fns(f).len();
        if n > 0 {
            counts.insert(f.rel.clone(), n);
        }
    }
    counts
}

/// Char offsets (in the stripped source) of `pub fn`s in a serve source
/// file whose body has no [`SPAN_MARKERS`] hit.
fn uninstrumented_pub_fns(f: &SourceFile) -> Vec<usize> {
    if !f.rel.starts_with("crates/serve/src/") {
        return Vec::new();
    }
    let chars: Vec<char> = f.stripped.chars().collect();
    let mut out = Vec::new();
    for pos in f.production_hits("pub fn ") {
        // Find the body: the first `{` after the signature. A `;` first
        // means a bodyless trait-method declaration — nothing to lint.
        let mut open = None;
        for (i, &c) in chars.iter().enumerate().skip(pos) {
            match c {
                '{' => {
                    open = Some(i);
                    break;
                }
                ';' => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let end = body_end(&chars, open);
        let body: String = chars[open..end].iter().collect();
        if !SPAN_MARKERS.iter().any(|m| body.contains(m)) {
            out.push(pos);
        }
    }
    out
}

/// The span-coverage ratchet: every public entry point in `crates/serve`
/// should open an obs span (or record trace/metrics); per-file counts of
/// uninstrumented `pub fn`s may only go down relative to the checked-in
/// baseline. New files start at an allowance of zero.
pub fn rule_serve_span_coverage(
    files: &[SourceFile],
    baseline: &BTreeMap<String, usize>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        let hits = uninstrumented_pub_fns(f);
        let count = hits.len();
        let first_line = hits
            .first()
            .map(|&pos| line_of(&f.stripped, pos))
            .unwrap_or(0);
        let allowed = baseline.get(&f.rel).copied().unwrap_or(0);
        if count > allowed {
            findings.push(Finding {
                rule: "serve-span-coverage",
                path: f.rel.clone(),
                line: first_line,
                message: format!(
                    "{count} public fn(s) without an obs span/trace/metrics hook, baseline \
                     allows {allowed} (open an `embsr_obs::span(...)` in the body, or run \
                     `cargo run -p xtask -- lint --update-baseline` if the fn is genuinely \
                     not worth tracing)"
                ),
                is_error: true,
            });
        } else if count < allowed {
            findings.push(Finding {
                rule: "serve-span-coverage",
                path: f.rel.clone(),
                line: 0,
                message: format!(
                    "improved: {count} uninstrumented public fn(s), baseline allows {allowed}; \
                     run `cargo run -p xtask -- lint --update-baseline` to ratchet down"
                ),
                is_error: false,
            });
        }
    }
    for rel in baseline.keys() {
        if !files.iter().any(|f| &f.rel == rel) {
            findings.push(Finding {
                rule: "serve-span-coverage",
                path: rel.clone(),
                line: 0,
                message: "baseline entry for a file that no longer exists; \
                          run --update-baseline to drop it"
                    .to_string(),
                is_error: false,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 2: no-external-deps
// ---------------------------------------------------------------------------

/// Every dependency in every manifest must be an in-tree path (directly or
/// via `workspace = true` resolving to `[workspace.dependencies]` paths).
pub fn rule_no_external_deps(root: &Path, manifests: &[String]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rel in manifests {
        let content = match std::fs::read_to_string(root.join(rel)) {
            Ok(c) => c,
            Err(e) => {
                findings.push(Finding {
                    rule: "no-external-deps",
                    path: rel.clone(),
                    line: 0,
                    message: format!("unreadable manifest: {e}"),
                    is_error: true,
                });
                continue;
            }
        };
        let mut in_dep_section = false;
        for (idx, raw_line) in content.lines().enumerate() {
            let line = raw_line.trim();
            if line.starts_with('[') {
                in_dep_section = line == "[dependencies]"
                    || line == "[dev-dependencies]"
                    || line == "[build-dependencies]"
                    || line == "[workspace.dependencies]";
                continue;
            }
            if !in_dep_section || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((name, spec)) = line.split_once('=') else {
                continue;
            };
            let name = name.trim();
            let spec = spec.trim();
            let hermetic = spec.contains("path =")
                || spec.contains("path=")
                || spec.contains("workspace = true")
                || spec.contains("workspace=true")
                || name.ends_with(".workspace");
            if !hermetic {
                findings.push(Finding {
                    rule: "no-external-deps",
                    path: rel.clone(),
                    line: idx + 1,
                    message: format!(
                        "dependency `{name}` is not an in-tree path; the workspace is \
                         deliberately dependency-free (see the root Cargo.toml)"
                    ),
                    is_error: true,
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 3: no-timing-outside-obs
// ---------------------------------------------------------------------------

/// Wall-clock reads are confined to `crates/obs` so every timing goes
/// through the span/metrics layer (and stays mockable and greppable).
pub fn rule_no_timing_outside_obs(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if f.rel.starts_with("crates/obs/") {
            continue;
        }
        for pat in ["Instant::now", "SystemTime::now"] {
            for pos in f.production_hits(pat) {
                findings.push(Finding {
                    rule: "no-timing-outside-obs",
                    path: f.rel.clone(),
                    line: line_of(&f.stripped, pos),
                    message: format!(
                        "`{pat}` outside crates/obs; use `embsr_obs::span(...)` and \
                         `SpanGuard::elapsed()` instead"
                    ),
                    is_error: true,
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 4: gradcheck-coverage
// ---------------------------------------------------------------------------

/// Every op file under `crates/tensor/src/ops/` must have at least one
/// entry in the gradcheck registry (`verify.rs`, `file: "<stem>"`).
pub fn rule_gradcheck_coverage(root: &Path) -> Vec<Finding> {
    let ops_dir = root.join("crates/tensor/src/ops");
    let registry_rel = "crates/tensor/src/verify.rs";
    let registry = std::fs::read_to_string(root.join(registry_rel)).unwrap_or_default();
    let mut findings = Vec::new();
    if registry.is_empty() {
        findings.push(Finding {
            rule: "gradcheck-coverage",
            path: registry_rel.to_string(),
            line: 0,
            message: "gradcheck registry missing or unreadable".to_string(),
            is_error: true,
        });
        return findings;
    }
    let entries = match std::fs::read_dir(&ops_dir) {
        Ok(e) => e,
        Err(e) => {
            findings.push(Finding {
                rule: "gradcheck-coverage",
                path: "crates/tensor/src/ops".to_string(),
                line: 0,
                message: format!("cannot list ops directory: {e}"),
                is_error: true,
            });
            return findings;
        }
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(stem) = name.strip_suffix(".rs") else {
            continue;
        };
        if stem == "mod" {
            continue;
        }
        let marker = format!("file: \"{stem}\"");
        if !registry.contains(&marker) {
            findings.push(Finding {
                rule: "gradcheck-coverage",
                path: format!("crates/tensor/src/ops/{name}"),
                line: 0,
                message: format!(
                    "no gradcheck registry entry with `{marker}` in {registry_rel}; \
                     every op file needs finite-difference coverage"
                ),
                is_error: true,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 5: nn-forward-unification
// ---------------------------------------------------------------------------

/// All forward passes in `crates/nn` go through the `Forward` trait (or a
/// named inherent method like `attend`/`readout`); new ad-hoc
/// `pub fn forward` methods fragment the module API and are rejected.
/// `module.rs` itself — where the trait lives — is exempt.
pub fn rule_nn_forward_unification(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !f.rel.starts_with("crates/nn/src/") || f.rel == "crates/nn/src/module.rs" {
            continue;
        }
        for pos in f.production_hits("pub fn forward") {
            findings.push(Finding {
                rule: "nn-forward-unification",
                path: f.rel.clone(),
                line: line_of(&f.stripped, pos),
                message: "ad-hoc `pub fn forward` in crates/nn; implement the `Forward` \
                          trait from module.rs (callers use `.apply(x)` / `.forward(x, ctx)`) \
                          or expose a named method (`attend`, `readout`, ...) instead"
                    .to_string(),
                is_error: true,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Rule 6: doc-public-items
// ---------------------------------------------------------------------------

/// Item keywords that, following `pub `, introduce an API item we require
/// docs on.
const DOC_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "unsafe",
];

/// Public items in `crates/tensor` and `crates/nn` must carry a doc comment
/// (`pub use` re-exports and `pub(crate)`/`pub(super)` items are exempt).
pub fn rule_doc_public_items(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        let in_scope = f.rel.starts_with("crates/tensor/src/") || f.rel.starts_with("crates/nn/src/");
        if !in_scope || f.all_test {
            continue;
        }
        let stripped_lines: Vec<&str> = f.stripped.lines().collect();
        let raw_lines: Vec<&str> = f.raw.lines().collect();
        let mut char_offset = 0usize;
        for (i, line) in stripped_lines.iter().enumerate() {
            let line_start = char_offset;
            char_offset += line.chars().count() + 1;
            let trimmed = line.trim_start();
            if !trimmed.starts_with("pub ") {
                continue;
            }
            let rest = &trimmed[4..];
            let is_item = DOC_KEYWORDS
                .iter()
                .any(|k| rest.starts_with(k) && rest[k.len()..].starts_with([' ', '<']));
            if !is_item {
                continue; // pub use, pub(crate), struct fields, etc.
            }
            if f.test_mask.get(line_start).copied().unwrap_or(false) {
                continue;
            }
            // Walk upward in the RAW source (doc comments are blanked in the
            // stripped copy): attributes may sit between the docs and the item.
            let mut j = i;
            let mut documented = false;
            while j > 0 {
                j -= 1;
                let above = raw_lines.get(j).map_or("", |l| l.trim_start());
                if above.starts_with("#[") || above.starts_with("#![") {
                    continue;
                }
                documented = above.starts_with("///") || above.starts_with("/**");
                break;
            }
            if !documented {
                findings.push(Finding {
                    rule: "doc-public-items",
                    path: f.rel.clone(),
                    line: i + 1,
                    message: format!(
                        "undocumented public item `{}`",
                        trimmed.chars().take(60).collect::<String>().trim_end()
                    ),
                    is_error: true,
                });
            }
        }
    }
    findings
}
