//! End-to-end tests for `cargo run -p xtask -- lint`: the real workspace
//! must pass clean, and the seeded violation fixture must fail with named
//! rules and file:line locations.

use std::path::PathBuf;
use std::process::Command;

fn xtask() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
}

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn lint_passes_on_the_real_workspace() {
    let root = manifest_dir().join("../..");
    let out = xtask()
        .args(["lint", "--root"])
        .arg(&root)
        .output()
        .expect("xtask binary must run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "lint must pass on the workspace:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

#[test]
fn lint_fails_on_seeded_violations_with_rule_and_location() {
    let fixture = manifest_dir().join("fixtures/bad_workspace");
    let out = xtask()
        .args(["lint", "--root"])
        .arg(&fixture)
        .output()
        .expect("xtask binary must run");
    assert!(
        !out.status.success(),
        "lint must fail on the violation fixture"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);

    // Each violation is reported with its rule name and file:line.
    assert!(
        stdout.contains("error[no-panic-ratchet]: pkg/src/lib.rs:7"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error[no-timing-outside-obs]: pkg/src/lib.rs:6"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error[no-external-deps]: pkg/Cargo.toml:8"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error[nn-forward-unification]: crates/nn/src/block.rs:5"),
        "{stdout}"
    );
    // The uninstrumented serve entry point is flagged; the instrumented
    // decoy in the same file must not add a second count.
    assert!(
        stdout.contains("error[serve-span-coverage]: crates/serve/src/lib.rs:5"),
        "{stdout}"
    );
    assert!(
        stdout.contains("1 public fn(s) without an obs span"),
        "{stdout}"
    );
    // The ratchet covers the networked-serving crate too: its seeded
    // uninstrumented entry point is flagged, its instrumented decoy is not.
    assert!(
        stdout.contains("error[serve-span-coverage]: crates/net/src/lib.rs:8"),
        "{stdout}"
    );
    assert_eq!(stdout.matches("error[serve-span-coverage]").count(), 2, "{stdout}");
    // Decoys (string literal, comment, #[cfg(test)] body) must not add
    // extra panic findings: exactly one panic construct is counted.
    assert!(stdout.contains("1 panicking construct(s)"), "{stdout}");

    // --- the determinism & concurrency rules ---

    // Hash-order iteration leaks; the sorted-drain and `.count()` decoys
    // in the same file must not add to the count.
    assert!(
        stdout.contains("error[map-iteration-determinism]: crates/baselines/src/knn.rs:9"),
        "{stdout}"
    );
    assert!(stdout.contains("1 HashMap/HashSet iteration(s)"), "{stdout}");

    // Both ad-hoc accumulation shapes; the `// reduce:`-justified decoy
    // must not produce a third finding.
    assert!(
        stdout.contains("error[float-reduction-order]: crates/train/src/reduce.rs:7"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error[float-reduction-order]: crates/train/src/reduce.rs:13"),
        "{stdout}"
    );
    assert_eq!(stdout.matches("error[float-reduction-order]").count(), 2, "{stdout}");

    // The three lock-discipline shapes; the loop re-check and
    // drop-before-relock decoys must stay silent.
    assert!(
        stdout.contains("error[lock-discipline]: crates/pool/src/lib.rs:18"),
        "{stdout}"
    );
    assert!(stdout.contains("Condvar wait on `cv`"), "{stdout}");
    assert!(
        stdout.contains("error[lock-discipline]: crates/pool/src/lib.rs:30"),
        "{stdout}"
    );
    assert!(
        stdout.contains("`m` locked again while guard `a` from line 29"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error[lock-discipline]: crates/pool/src/lib.rs:36"),
        "{stdout}"
    );
    assert!(stdout.contains("live across a `.spawn(` worker boundary"), "{stdout}");
    assert_eq!(stdout.matches("error[lock-discipline]").count(), 3, "{stdout}");

    // Atomics audit: one un-justified SeqCst, one justification that never
    // names SeqCst; the justified Relaxed decoy stays silent.
    assert!(
        stdout.contains("error[atomics-ordering-audit]: pkg/src/lib.rs:29"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error[atomics-ordering-audit]: pkg/src/lib.rs:35"),
        "{stdout}"
    );
    assert!(stdout.contains("never mentions SeqCst"), "{stdout}");
    assert_eq!(stdout.matches("error[atomics-ordering-audit]").count(), 2, "{stdout}");

    // The keyword ratchet has no baseline and no escape comment.
    assert!(
        stdout.contains("error[no-unsafe-ratchet]: pkg/src/lib.rs:46"),
        "{stdout}"
    );

    // Layering: one upward manifest edge plus the cycle it completes.
    assert!(
        stdout.contains("error[crate-layering]: crates/sessions/Cargo.toml:9"),
        "{stdout}"
    );
    assert!(
        stdout.contains("`embsr-sessions` (layer 1) depends on `embsr-train` (layer 3)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("dependency cycle: embsr-sessions -> embsr-train -> embsr-sessions"),
        "{stdout}"
    );
}

#[test]
fn json_output_is_machine_readable() {
    let fixture = manifest_dir().join("fixtures/bad_workspace");
    let out = xtask()
        .args(["lint", "--json", "--root"])
        .arg(&fixture)
        .output()
        .expect("xtask binary must run");
    assert!(!out.status.success(), "fixture must still fail in --json mode");
    let stdout = String::from_utf8_lossy(&out.stdout);

    let doc = embsr_obs::parse_json(&stdout).expect("stdout must be valid JSON");
    let findings = doc
        .get("findings")
        .and_then(|f| f.as_array())
        .expect("findings array");
    assert!(!findings.is_empty());
    let summary = doc.get("summary").expect("summary object");
    let errors = summary.get("errors").and_then(|e| e.as_f64()).expect("errors");
    assert_eq!(errors as usize, findings.len(), "fixture findings are all errors");

    // Every finding row carries the fields CI annotations consume.
    for f in findings {
        assert!(f.get("rule").and_then(|v| v.as_str()).is_some(), "rule");
        assert!(f.get("file").and_then(|v| v.as_str()).is_some(), "file");
        assert!(f.get("line").and_then(|v| v.as_f64()).is_some(), "line");
        assert_eq!(f.get("level").and_then(|v| v.as_str()), Some("error"));
        assert!(f.get("message").and_then(|v| v.as_str()).is_some(), "message");
    }
    // Spot-check one known finding end to end.
    assert!(
        findings.iter().any(|f| {
            f.get("rule").and_then(|v| v.as_str()) == Some("map-iteration-determinism")
                && f.get("file").and_then(|v| v.as_str())
                    == Some("crates/baselines/src/knn.rs")
                && f.get("line").and_then(|v| v.as_f64()) == Some(9.0)
        }),
        "{stdout}"
    );
}

#[test]
fn json_output_on_clean_workspace_has_zero_errors() {
    let root = manifest_dir().join("../..");
    let out = xtask()
        .args(["lint", "--json", "--root"])
        .arg(&root)
        .output()
        .expect("xtask binary must run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    let doc = embsr_obs::parse_json(&String::from_utf8_lossy(&out.stdout))
        .expect("valid JSON");
    let errors = doc
        .get("summary")
        .and_then(|s| s.get("errors"))
        .and_then(|e| e.as_f64())
        .expect("summary.errors");
    assert_eq!(errors, 0.0);
}

#[test]
fn unknown_command_is_a_usage_error() {
    let out = xtask().arg("frobnicate").output().expect("must run");
    assert_eq!(out.status.code(), Some(2));
}
