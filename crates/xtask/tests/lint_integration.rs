//! End-to-end tests for `cargo run -p xtask -- lint`: the real workspace
//! must pass clean, and the seeded violation fixture must fail with named
//! rules and file:line locations.

use std::path::PathBuf;
use std::process::Command;

fn xtask() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
}

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn lint_passes_on_the_real_workspace() {
    let root = manifest_dir().join("../..");
    let out = xtask()
        .args(["lint", "--root"])
        .arg(&root)
        .output()
        .expect("xtask binary must run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "lint must pass on the workspace:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

#[test]
fn lint_fails_on_seeded_violations_with_rule_and_location() {
    let fixture = manifest_dir().join("fixtures/bad_workspace");
    let out = xtask()
        .args(["lint", "--root"])
        .arg(&fixture)
        .output()
        .expect("xtask binary must run");
    assert!(
        !out.status.success(),
        "lint must fail on the violation fixture"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);

    // Each violation is reported with its rule name and file:line.
    assert!(
        stdout.contains("error[no-panic-ratchet]: pkg/src/lib.rs:7"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error[no-timing-outside-obs]: pkg/src/lib.rs:6"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error[no-external-deps]: pkg/Cargo.toml:8"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error[nn-forward-unification]: crates/nn/src/block.rs:5"),
        "{stdout}"
    );
    // The uninstrumented serve entry point is flagged; the instrumented
    // decoy in the same file must not add a second count.
    assert!(
        stdout.contains("error[serve-span-coverage]: crates/serve/src/lib.rs:5"),
        "{stdout}"
    );
    assert!(
        stdout.contains("1 public fn(s) without an obs span"),
        "{stdout}"
    );
    // Decoys (string literal, comment, #[cfg(test)] body) must not add
    // extra panic findings: exactly one panic construct is counted.
    assert!(stdout.contains("1 panicking construct(s)"), "{stdout}");
}

#[test]
fn unknown_command_is_a_usage_error() {
    let out = xtask().arg("frobnicate").output().expect("must run");
    assert_eq!(out.status.code(), Some(2));
}
