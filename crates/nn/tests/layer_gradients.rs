//! Finite-difference gradient checks through whole layers.
//!
//! The unit tests inside each module verify shapes and qualitative behavior;
//! these tests verify the *calculus*: the analytic gradient of a scalar loss
//! through each composite layer matches central differences.

use embsr_nn::{
    Ffn, Forward, FusionGate, FusionMode, GgnnCell, Gru, Highway, NormalizedScorer,
    OpAwareSelfAttention, StarAttention, StarGate,
};
use embsr_tensor::testing::check_gradient;
use embsr_tensor::{Rng, Tensor};

fn input(vals: &[f32], dims: &[usize]) -> Tensor {
    Tensor::from_vec(vals.to_vec(), dims).requires_grad()
}

#[test]
fn gru_full_sequence_gradcheck() {
    let gru = Gru::new(3, 3, &mut Rng::seed_from_u64(0));
    let x = input(&[0.1, -0.2, 0.3, 0.4, 0.0, -0.5], &[2, 3]);
    check_gradient(&x, |t| gru.last_state(t).square().sum(), 1e-3, 5e-2);
}

#[test]
fn ggnn_cell_gradcheck_wrt_aggregate() {
    let cell = GgnnCell::new(2, &mut Rng::seed_from_u64(1));
    let agg = input(&[0.3, -0.1, 0.2, 0.4], &[1, 4]);
    let prev = Tensor::from_vec(vec![0.5, -0.5], &[1, 2]);
    check_gradient(&agg, |a| cell.update(a, &prev).square().sum(), 1e-3, 5e-2);
}

#[test]
fn star_layers_gradcheck() {
    let mut rng = Rng::seed_from_u64(2);
    let gate = StarGate::new(2, &mut rng);
    let attn = StarAttention::new(2, &mut rng);
    let sats = input(&[0.2, 0.6, -0.4, 0.1], &[2, 2]);
    let star = Tensor::from_vec(vec![0.3, -0.2], &[2]);
    check_gradient(
        &sats,
        |s| {
            let gated = gate.propagate(s, &star);
            attn.attend(&gated, &star).square().sum()
        },
        1e-3,
        5e-2,
    );
}

#[test]
fn highway_gradcheck() {
    let hw = Highway::new(3, &mut Rng::seed_from_u64(3));
    let before = input(&[0.1, 0.5, -0.3], &[1, 3]);
    let after = Tensor::from_vec(vec![-0.2, 0.4, 0.7], &[1, 3]);
    check_gradient(&before, |b| hw.blend(b, &after).square().sum(), 1e-3, 5e-2);
}

#[test]
fn op_aware_attention_gradcheck() {
    let att = OpAwareSelfAttention::new(3, 2, 4, true, &mut Rng::seed_from_u64(4));
    let x = input(&[0.1, -0.2, 0.3, 0.0, 0.4, -0.1], &[2, 3]);
    check_gradient(&x, |t| att.attend(t, &[0, 1]).square().sum(), 1e-3, 8e-2);
}

#[test]
fn ffn_gradcheck() {
    let ffn = Ffn::new(4, 0.0, &mut Rng::seed_from_u64(5));
    let x = input(&[0.2, -0.6, 0.9, 0.1], &[1, 4]);
    let mut rng = Rng::seed_from_u64(6);
    check_gradient(
        &x,
        |t| {
            let w = Tensor::from_vec(vec![1.0, 0.5, -0.5, 2.0], &[1, 4]);
            ffn.apply(t).mul(&w).sum()
        },
        1e-3,
        8e-2,
    );
    let _ = &mut rng;
}

#[test]
fn fusion_gate_gradcheck() {
    let fg = FusionGate::new(3, FusionMode::Gated, &mut Rng::seed_from_u64(7));
    let z = input(&[0.3, -0.4, 0.2], &[3]);
    let x_t = Tensor::from_vec(vec![0.1, 0.6, -0.2], &[3]);
    check_gradient(&z, |t| fg.fuse(t, &x_t).square().sum(), 1e-3, 5e-2);
}

#[test]
fn normalized_scorer_gradcheck() {
    let scorer = NormalizedScorer::new(12.0);
    let items = Tensor::from_vec(
        vec![0.5, 0.1, -0.3, 0.8, 0.2, -0.6, 0.4, 0.9, -0.1],
        &[3, 3],
    );
    let m = input(&[0.7, -0.2, 0.4], &[3]);
    check_gradient(&m, |t| scorer.logits(t, &items).cross_entropy_single(1), 1e-3, 5e-2);
}
