//! Normalized scoring layer (paper eq. 19).
//!
//! Following NISER, both the session representation and the item embeddings
//! are L2-normalized and the cosine scores are scaled by `w_k` (the paper
//! sets `w_k = 12`) before the softmax cross-entropy. This keeps training
//! stable and counteracts popularity bias.

use embsr_tensor::Tensor;

/// Computes scaled-cosine logits over the full item vocabulary.
#[derive(Clone, Copy, Debug)]
pub struct NormalizedScorer {
    /// The normalization weight `w_k` (12 in the paper).
    pub w_k: f32,
}

impl NormalizedScorer {
    /// Creates a scorer with scale `w_k`.
    pub fn new(w_k: f32) -> Self {
        assert!(w_k > 0.0, "w_k must be positive");
        NormalizedScorer { w_k }
    }

    /// Logits for session representation `m` (`[d]`) against the item table
    /// `items` (`[|V|, d]`): `ŷ = w_k · L2(m) · L2(items)ᵀ`, shape `[|V|]`.
    pub fn logits(&self, m: &Tensor, items: &Tensor) -> Tensor {
        let d = m.len();
        self.logits_rows(&m.reshape(&[1, d]), items)
            .reshape(&[items.rows()])
    }

    /// Batched form of [`Self::logits`]: session representations `ms`
    /// (`[B, d]`) against the item table `items` (`[|V|, d]`), producing one
    /// logit row per session (`[B, |V|]`).
    ///
    /// The item table is normalized **once per batch** rather than once per
    /// session — this amortization is where batched serving gets most of its
    /// throughput. Each output row is bitwise-identical to the corresponding
    /// single-session [`Self::logits`] call because row normalization and
    /// matmul rows are computed independently in the same element order.
    ///
    /// Two fusions keep the hot path lean, both bitwise-identical to the
    /// ops they replace (see `embsr_tensor::ops::fused` / `matmul_nt`):
    /// the session side normalizes and scales in one pass, and the logits
    /// GEMM consumes the normalized item table in row-major form directly —
    /// the `A·Bᵀ` kernel transpose-packs panels on the fly, so the old
    /// per-call `[|V|,d]` transpose materialization is gone.
    pub fn logits_rows(&self, ms: &Tensor, items: &Tensor) -> Tensor {
        assert_eq!(items.cols(), ms.cols(), "item table dim mismatch");
        let m_hat = ms.normalize_scale_rows(1e-12, self.w_k); // [B, d]
        let v_hat = items.l2_normalize_rows(1e-12); // [|V|, d]
        m_hat.matmul_nt(&v_hat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_tensor::testing::assert_close;

    #[test]
    fn logits_are_scaled_cosines() {
        let s = NormalizedScorer::new(12.0);
        let m = Tensor::from_vec(vec![2.0, 0.0], &[2]);
        let items = Tensor::from_vec(vec![5.0, 0.0, 0.0, 3.0, -1.0, 0.0], &[3, 2]);
        let y = s.logits(&m, &items).to_vec();
        assert_close(&y, &[12.0, 0.0, -12.0], 1e-4);
    }

    #[test]
    fn bounded_by_wk() {
        let s = NormalizedScorer::new(12.0);
        let m = Tensor::from_vec(vec![0.3, -0.7, 0.2], &[3]);
        let items = Tensor::from_vec(
            (0..30).map(|i| (i as f32 * 0.37).sin()).collect(),
            &[10, 3],
        );
        let y = s.logits(&m, &items).to_vec();
        assert!(y.iter().all(|&v| v.abs() <= 12.0 + 1e-4));
    }

    #[test]
    fn gradient_flows_to_items_and_session() {
        let s = NormalizedScorer::new(12.0);
        let m = Tensor::from_vec(vec![0.5, 0.5], &[2]).requires_grad();
        let items = Tensor::from_vec(vec![0.2, 0.8, 0.9, 0.1], &[2, 2]).requires_grad();
        s.logits(&m, &items).cross_entropy_single(0).backward();
        assert!(m.grad().is_some());
        assert!(items.grad().is_some());
    }

    #[test]
    #[should_panic(expected = "w_k must be positive")]
    fn zero_scale_rejected() {
        let _ = NormalizedScorer::new(0.0);
    }
}
