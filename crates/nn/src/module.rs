//! The [`Module`] and [`Forward`] traits: parameter ownership and the
//! unified single-input forward signature.
//!
//! Historically every layer grew its own ad-hoc `forward` method — some took
//! `(x)`, some `(x, training, rng)`, the GRU had `forward_all`/`forward_last`
//! — which made it impossible to write code generic over layers and forced
//! eval-time callers to thread dummy RNGs around. [`Forward`] unifies the
//! single-input layers under one signature: the input tensor plus a
//! [`ModuleCtx`] carrying the train/eval mode and the (optional) RNG that
//! only stochastic layers consume. Multi-input blocks (attention over
//! `(xs, ops)`, gating over two streams, …) are *not* shoehorned in; they
//! expose domain-named methods (`attend`, `blend`, `fuse`, `propagate`)
//! instead, and `xtask lint` rejects any new `pub fn forward` in this crate
//! outside this module so the convention holds.

use embsr_tensor::{Rng, Tensor};

/// A component with trainable parameters.
///
/// `parameters` returns handles (not copies); optimizers deduplicate by
/// tensor id, so modules may freely share parameters.
pub trait Module {
    /// All trainable tensors of this module (and its children).
    fn parameters(&self) -> Vec<Tensor>;

    /// Total scalar parameter count, for reporting.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(Tensor::len).sum()
    }
}

/// Collects parameters from a list of modules.
pub fn collect_params(modules: &[&dyn Module]) -> Vec<Tensor> {
    modules.iter().flat_map(|m| m.parameters()).collect()
}

/// Per-call context for [`Forward`]: train/eval mode plus the RNG that
/// stochastic layers (dropout) draw from.
///
/// Deterministic layers ignore it entirely; stochastic layers draw from
/// `rng` only when `training` is true, so an inference context never needs
/// an RNG and never perturbs a trainer's draw sequence.
pub struct ModuleCtx<'a> {
    /// True during training (enables dropout and other train-only behavior).
    pub training: bool,
    /// RNG for stochastic layers; required only when `training` is true and
    /// a stochastic layer is actually active.
    pub rng: Option<&'a mut Rng>,
}

impl<'a> ModuleCtx<'a> {
    /// Context with an explicit mode and RNG (the general form used by call
    /// sites that receive `(training, rng)` from their own caller).
    pub fn new(training: bool, rng: &'a mut Rng) -> Self {
        ModuleCtx {
            training,
            rng: Some(rng),
        }
    }

    /// Training context: dropout active, drawing from `rng`.
    pub fn train(rng: &'a mut Rng) -> Self {
        ModuleCtx {
            training: true,
            rng: Some(rng),
        }
    }

    /// Inference context: stochastic layers are the identity and no RNG is
    /// carried.
    pub fn infer() -> ModuleCtx<'static> {
        ModuleCtx {
            training: false,
            rng: None,
        }
    }
}

/// The unified forward pass for single-input layers.
///
/// `forward` maps one tensor to one tensor under a [`ModuleCtx`];
/// [`Forward::apply`] is the ergonomic deterministic/eval shorthand used by
/// the many call sites that previously invoked ad-hoc inherent `forward`
/// methods. Layers whose natural signature takes several tensors implement
/// domain-named methods instead of this trait.
pub trait Forward: Module {
    /// Applies the layer to `x` under `ctx`.
    fn forward(&self, x: &Tensor, ctx: &mut ModuleCtx<'_>) -> Tensor;

    /// Applies the layer in inference mode (no dropout, no RNG). For
    /// deterministic layers this is *the* forward pass.
    fn apply(&self, x: &Tensor) -> Tensor {
        self.forward(x, &mut ModuleCtx::infer())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two(Tensor, Tensor);
    impl Module for Two {
        fn parameters(&self) -> Vec<Tensor> {
            vec![self.0.clone(), self.1.clone()]
        }
    }

    #[test]
    fn num_parameters_sums_lengths() {
        let m = Two(
            Tensor::zeros(&[2, 3]).requires_grad(),
            Tensor::zeros(&[4]).requires_grad(),
        );
        assert_eq!(m.num_parameters(), 10);
    }

    struct Doubler;
    impl Module for Doubler {
        fn parameters(&self) -> Vec<Tensor> {
            Vec::new()
        }
    }
    impl Forward for Doubler {
        fn forward(&self, x: &Tensor, _ctx: &mut ModuleCtx<'_>) -> Tensor {
            x.mul_scalar(2.0)
        }
    }

    #[test]
    fn apply_is_inference_forward() {
        let x = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        assert_eq!(Doubler.apply(&x).to_vec(), vec![2.0, -4.0]);
        let mut rng = Rng::seed_from_u64(0);
        let mut ctx = ModuleCtx::train(&mut rng);
        assert!(ctx.training);
        assert_eq!(Doubler.forward(&x, &mut ctx).to_vec(), vec![2.0, -4.0]);
        assert!(!ModuleCtx::infer().training);
    }

    #[test]
    fn collect_params_flattens() {
        let a = Two(
            Tensor::zeros(&[1]).requires_grad(),
            Tensor::zeros(&[1]).requires_grad(),
        );
        let b = Two(
            Tensor::zeros(&[1]).requires_grad(),
            Tensor::zeros(&[1]).requires_grad(),
        );
        assert_eq!(collect_params(&[&a, &b]).len(), 4);
    }
}
