//! The [`Module`] trait: anything holding trainable parameters.

use embsr_tensor::Tensor;

/// A component with trainable parameters.
///
/// `parameters` returns handles (not copies); optimizers deduplicate by
/// tensor id, so modules may freely share parameters.
pub trait Module {
    /// All trainable tensors of this module (and its children).
    fn parameters(&self) -> Vec<Tensor>;

    /// Total scalar parameter count, for reporting.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(Tensor::len).sum()
    }
}

/// Collects parameters from a list of modules.
pub fn collect_params(modules: &[&dyn Module]) -> Vec<Tensor> {
    modules.iter().flat_map(|m| m.parameters()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two(Tensor, Tensor);
    impl Module for Two {
        fn parameters(&self) -> Vec<Tensor> {
            vec![self.0.clone(), self.1.clone()]
        }
    }

    #[test]
    fn num_parameters_sums_lengths() {
        let m = Two(
            Tensor::zeros(&[2, 3]).requires_grad(),
            Tensor::zeros(&[4]).requires_grad(),
        );
        assert_eq!(m.num_parameters(), 10);
    }

    #[test]
    fn collect_params_flattens() {
        let a = Two(
            Tensor::zeros(&[1]).requires_grad(),
            Tensor::zeros(&[1]).requires_grad(),
        );
        let b = Two(
            Tensor::zeros(&[1]).requires_grad(),
            Tensor::zeros(&[1]).requires_grad(),
        );
        assert_eq!(collect_params(&[&a, &b]).len(), 4);
    }
}
