//! Embedding tables (`M^V`, `M^O`, `M^P`, `M^R` in the paper).

use embsr_tensor::{uniform_init, Rng, Tensor};

use crate::module::Module;

/// A trainable lookup table `[vocab, d]`.
pub struct Embedding {
    pub weight: Tensor,
}

impl Embedding {
    /// New table with uniform `[-1/√d, 1/√d]` init (the paper's scheme).
    pub fn new(vocab: usize, dim: usize, rng: &mut Rng) -> Self {
        Embedding {
            weight: uniform_init(&[vocab, dim], rng),
        }
    }

    /// Looks up a batch of rows: `[n] -> [n, d]`. Backward is a sparse
    /// scatter-add into the table.
    pub fn lookup(&self, indices: &[usize]) -> Tensor {
        self.weight.gather_rows(indices)
    }

    /// Looks up a single row as a `[d]` vector.
    pub fn lookup_one(&self, index: usize) -> Tensor {
        self.weight.row(index)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.weight.rows()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.weight.cols()
    }
}

impl Module for Embedding {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_tensor::testing::assert_close;

    #[test]
    fn lookup_returns_requested_rows() {
        let e = Embedding::new(5, 3, &mut Rng::seed_from_u64(0));
        let w = e.weight.to_vec();
        let got = e.lookup(&[4, 0]).to_vec();
        assert_close(&got[0..3], &w[12..15], 1e-6);
        assert_close(&got[3..6], &w[0..3], 1e-6);
    }

    #[test]
    fn repeated_lookup_gradient_accumulates() {
        let e = Embedding::new(3, 2, &mut Rng::seed_from_u64(1));
        e.lookup(&[1, 1]).sum().backward();
        let g = e.weight.grad().unwrap();
        assert_close(&g, &[0.0, 0.0, 2.0, 2.0, 0.0, 0.0], 1e-6);
    }

    #[test]
    fn dims_reported() {
        let e = Embedding::new(10, 4, &mut Rng::seed_from_u64(2));
        assert_eq!(e.vocab(), 10);
        assert_eq!(e.dim(), 4);
        assert_eq!(e.num_parameters(), 40);
    }
}
