//! Inverted dropout.

use embsr_tensor::Tensor;

use crate::module::{Forward, Module, ModuleCtx};

/// Inverted dropout: at train time each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`; at eval time it is the
/// identity.
#[derive(Clone, Copy, Debug)]
pub struct Dropout {
    pub p: f32,
}

impl Dropout {
    /// Creates a dropout layer. `p` must be in `[0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout { p }
    }

}

impl Module for Dropout {
    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

impl Forward for Dropout {
    /// Applies dropout. Gradient flows through the same mask.
    ///
    /// RNG draws happen **only** when `ctx.training` is set and `p > 0` —
    /// exactly one bernoulli per element, in element order — so inference
    /// contexts never consume randomness and training draw sequences are
    /// stable across refactors (the golden-trajectory suite depends on
    /// this).
    fn forward(&self, x: &Tensor, ctx: &mut ModuleCtx<'_>) -> Tensor {
        if !ctx.training || self.p == 0.0 {
            return x.clone();
        }
        assert!(
            ctx.rng.is_some(),
            "training-mode dropout requires an RNG in the ModuleCtx"
        );
        let Some(rng) = ctx.rng.as_deref_mut() else {
            return x.clone(); // unreachable: guarded by the assert above
        };
        let scale = 1.0 / (1.0 - self.p);
        let mask: Vec<f32> = (0..x.len())
            .map(|_| if rng.bernoulli(self.p) { 0.0 } else { scale })
            .collect();
        x.mul(&Tensor::from_vec(mask, x.shape().dims()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_tensor::Rng;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert_eq!(d.apply(&x).to_vec(), x.to_vec());
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let d = Dropout::new(0.3);
        let x = Tensor::ones(&[10_000]);
        let mut rng = Rng::seed_from_u64(1);
        let y = d.forward(&x, &mut ModuleCtx::train(&mut rng));
        let mean: f32 = y.to_vec().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn dropped_elements_block_gradient() {
        let d = Dropout::new(0.5);
        let x = Tensor::ones(&[64]).requires_grad();
        let mut rng = Rng::seed_from_u64(2);
        let y = d.forward(&x, &mut ModuleCtx::train(&mut rng));
        let zeros: Vec<usize> = y
            .to_vec()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == 0.0)
            .map(|(i, _)| i)
            .collect();
        assert!(!zeros.is_empty());
        y.sum().backward();
        let g = x.grad().unwrap();
        for i in zeros {
            assert_eq!(g[i], 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn p_of_one_rejected() {
        let _ = Dropout::new(1.0);
    }
}
