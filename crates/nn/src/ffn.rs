//! Position-wise feed-forward block (paper eq. 17) with the residual
//! connection, layer normalization and dropout of the standard transformer
//! block.

use embsr_tensor::{zeros_init, Rng, Tensor};

use crate::dropout::Dropout;
use crate::linear::Linear;
use crate::module::{Forward, Module, ModuleCtx};

/// `FFN(z) = max(0, z·W₁ + b₁)·W₂ + b₂`, then `LayerNorm(z + Dropout(FFN(z)))`
/// with learned affine parameters.
pub struct Ffn {
    w1: Linear,
    w2: Linear,
    gamma: Tensor,
    beta: Tensor,
    dropout: Dropout,
}

impl Ffn {
    /// Creates the block; the paper keeps the inner width at `d`.
    pub fn new(dim: usize, dropout: f32, rng: &mut Rng) -> Self {
        let gamma = Tensor::ones(&[dim]).requires_grad();
        Ffn {
            w1: Linear::new(dim, dim, rng),
            w2: Linear::new(dim, dim, rng),
            gamma,
            beta: zeros_init(&[dim]),
            dropout: Dropout::new(dropout),
        }
    }

}

impl Forward for Ffn {
    /// Applies the block to `[n, d]`. Dropout on the inner activation draws
    /// from `ctx.rng` only when `ctx.training` is set.
    fn forward(&self, z: &Tensor, ctx: &mut ModuleCtx<'_>) -> Tensor {
        let inner = self.w2.apply(&self.w1.apply(z).relu());
        let inner = self.dropout.forward(&inner, ctx);
        z.add(&inner)
            .layer_norm_rows(1e-5)
            .mul(&self.gamma)
            .add(&self.beta)
    }
}

impl Module for Ffn {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.w1.parameters();
        p.extend(self.w2.parameters());
        p.push(self.gamma.clone());
        p.push(self.beta.clone());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_rows_are_normalized_at_identity_affine() {
        let f = Ffn::new(8, 0.0, &mut Rng::seed_from_u64(0));
        let z = Tensor::from_vec((0..16).map(|i| i as f32 * 0.1).collect(), &[2, 8]);
        let y = f.apply(&z);
        for r in 0..2 {
            let row: Vec<f32> = (0..8).map(|c| y.at(r, c)).collect();
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
        }
    }

    #[test]
    fn parameters_count() {
        let f = Ffn::new(4, 0.1, &mut Rng::seed_from_u64(2));
        // w1 (w+b) + w2 (w+b) + gamma + beta = 6 tensors
        assert_eq!(f.parameters().len(), 6);
        assert_eq!(f.num_parameters(), 16 + 4 + 16 + 4 + 4 + 4);
    }

    #[test]
    fn gradients_flow_through_residual_path() {
        let f = Ffn::new(4, 0.0, &mut Rng::seed_from_u64(3));
        let z = Tensor::from_vec(vec![0.1; 4], &[1, 4]).requires_grad();
        f.apply(&z).sum().backward();
        assert!(z.grad().is_some());
        assert!(f.gamma.grad().is_some());
    }
}
