//! Highway network (paper eq. 11, after Srivastava et al.).
//!
//! Blends the item embeddings before (`h⁰`) and after (`h^last`) the stacked
//! GNN layers: `g = σ(W_g [h⁰; h^last])`, `h^f = g ⊙ h⁰ + (1−g) ⊙ h^last`.

use embsr_tensor::{Rng, Tensor};

use crate::linear::Linear;
use crate::module::{Forward, Module};

/// The highway blend layer.
pub struct Highway {
    gate: Linear,
}

impl Highway {
    /// Creates a highway layer for `d`-dimensional embeddings.
    pub fn new(dim: usize, rng: &mut Rng) -> Self {
        Highway {
            gate: Linear::new_no_bias(2 * dim, dim, rng),
        }
    }

    /// Blends `before` and `after`, both `[c, d]`.
    pub fn blend(&self, before: &Tensor, after: &Tensor) -> Tensor {
        assert_eq!(before.shape(), after.shape(), "highway shape mismatch");
        let g = self.gate.apply(&before.concat_cols(after)).sigmoid();
        if embsr_tensor::is_inference() {
            // Single-pass convex blend, bitwise-identical to the chain below.
            return embsr_tensor::gated_blend(&g, before, after);
        }
        g.mul(before).add(&g.one_minus().mul(after))
    }
}

impl Module for Highway {
    fn parameters(&self) -> Vec<Tensor> {
        self.gate.parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_tensor::testing::assert_close;

    #[test]
    fn inference_blend_is_bitwise_identical_to_taped_blend() {
        let mut rng = Rng::seed_from_u64(31);
        let h = Highway::new(5, &mut rng);
        let a: Vec<f32> = (0..4 * 5).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..4 * 5).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        let a = Tensor::from_vec(a, &[4, 5]);
        let b = Tensor::from_vec(b, &[4, 5]);
        let taped: Vec<u32> = h.blend(&a, &b).to_vec().iter().map(|v| v.to_bits()).collect();
        let fused: Vec<u32> = embsr_tensor::inference_mode(|| h.blend(&a, &b))
            .to_vec()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(taped, fused);
    }

    #[test]
    fn equal_inputs_pass_through() {
        let h = Highway::new(3, &mut Rng::seed_from_u64(0));
        let x = Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6], &[2, 3]);
        assert_close(&h.blend(&x, &x).to_vec(), &x.to_vec(), 1e-6);
    }

    #[test]
    fn output_between_inputs() {
        let h = Highway::new(2, &mut Rng::seed_from_u64(1));
        let a = Tensor::zeros(&[1, 2]);
        let b = Tensor::ones(&[1, 2]);
        let out = h.blend(&a, &b).to_vec();
        assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn gradient_reaches_gate() {
        let h = Highway::new(2, &mut Rng::seed_from_u64(2));
        let a = Tensor::from_vec(vec![0.5, -0.5], &[1, 2]);
        let b = Tensor::from_vec(vec![1.5, 0.5], &[1, 2]);
        h.blend(&a, &b).sum().backward();
        assert!(h.gate.weight.grad().is_some());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_rejected() {
        let h = Highway::new(2, &mut Rng::seed_from_u64(3));
        let _ = h.blend(&Tensor::zeros(&[1, 2]), &Tensor::zeros(&[2, 2]));
    }
}
