//! # embsr-nn
//!
//! Neural network layers on top of [`embsr_tensor`], covering every equation
//! of the EMBSR paper (ICDE 2022) and of the baselines it compares against:
//!
//! | Layer | Paper equation |
//! |---|---|
//! | [`Embedding`] | item / operation / position / dyadic-relation matrices |
//! | [`Gru`] | eq. 3 — micro-operation sequence encoding |
//! | [`GgnnCell`] | eq. 8 — gated graph update |
//! | [`StarGate`], [`StarAttention`] | eq. 9–10 — star node propagation |
//! | [`Highway`] | eq. 11 |
//! | [`OpAwareSelfAttention`] | eq. 12–16 — dyadic-relation attention |
//! | [`Ffn`] | eq. 17 |
//! | [`FusionGate`] | eq. 18 |
//! | [`NormalizedScorer`] | eq. 19 — NISER-style scaled cosine scoring |
//!
//! Layers process one session at a time (shapes `[n, d]`), which matches the
//! variable-size graphs the model builds per session.
//!
//! Single-input layers implement the [`Forward`] trait (one tensor in, one
//! tensor out, under a [`ModuleCtx`] carrying mode and RNG); multi-input
//! blocks expose domain-named methods (`attend`, `blend`, `fuse`,
//! `propagate`) instead. `xtask lint` rejects new ad-hoc `pub fn forward`
//! definitions in this crate.

mod attention;
mod dropout;
mod embedding;
mod ffn;
mod fusion;
mod ggnn;
mod gru;
mod highway;
mod linear;
mod module;
mod scorer;
mod star;

pub use attention::OpAwareSelfAttention;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use ffn::Ffn;
pub use fusion::{FusionGate, FusionMode};
pub use ggnn::GgnnCell;
pub use gru::Gru;
pub use highway::Highway;
pub use linear::Linear;
pub use module::{collect_params, Forward, Module, ModuleCtx};
pub use scorer::NormalizedScorer;
pub use star::{StarAttention, StarGate};
