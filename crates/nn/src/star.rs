//! Star-node propagation (paper eq. 9–10, after SGNN-HN).
//!
//! [`StarGate`] lets every satellite blend in the previous star embedding;
//! [`StarAttention`] rebuilds the star embedding as an attention-weighted
//! mixture of the updated satellites.

use embsr_tensor::{Rng, Tensor};

use crate::linear::Linear;
use crate::module::{Forward, Module};

/// Eq. 9: per-satellite scalar gate
/// `α_i = (W_q1 ê_i)ᵀ (W_k1 e_s) / √d`, then
/// `e_i = (1 − α) ê_i + α e_s`.
///
/// The raw dot-product gate of the paper is unbounded, so it is squashed
/// through a sigmoid for numerical stability (matching the released EMBSR
/// implementation).
pub struct StarGate {
    q: Linear,
    k: Linear,
    dim: usize,
}

impl StarGate {
    /// Creates the gate for `d`-dimensional embeddings.
    pub fn new(dim: usize, rng: &mut Rng) -> Self {
        StarGate {
            q: Linear::new_no_bias(dim, dim, rng),
            k: Linear::new_no_bias(dim, dim, rng),
            dim,
        }
    }

    /// Applies the gate. `satellites` is `[c, d]`, `star` is `[d]`.
    pub fn propagate(&self, satellites: &Tensor, star: &Tensor) -> Tensor {
        assert_eq!(satellites.cols(), self.dim);
        assert_eq!(star.len(), self.dim);
        let c = satellites.rows();
        let qs = self.q.apply(satellites); // [c, d]
        let ks = self.k.apply(&star.reshape(&[1, self.dim])); // [1, d]
        // α = qs · ksᵀ / √d → [c, 1]
        let alpha = qs
            .matmul(&ks.transpose())
            .mul_scalar(1.0 / (self.dim as f32).sqrt())
            .sigmoid(); // [c, 1]
        if embsr_tensor::is_inference() {
            // Reads α_i and star_j in place instead of materializing both as
            // [c, d] through rank-one GEMMs; bitwise-identical (see
            // `star_blend`).
            return embsr_tensor::star_blend(&alpha, satellites, star);
        }
        // broadcast α across columns
        let alpha_full = alpha.matmul(&Tensor::ones(&[1, self.dim])); // [c, d]
        let star_rows = Tensor::ones(&[c, 1]).matmul(&star.reshape(&[1, self.dim]));
        alpha_full
            .one_minus()
            .mul(satellites)
            .add(&alpha_full.mul(&star_rows))
    }
}

impl Module for StarGate {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.q.parameters();
        p.extend(self.k.parameters());
        p
    }
}

/// Eq. 10: star update by attention over satellites,
/// `β = softmax((W_k2 e_i)ᵀ (W_q2 e_s) / √d)`, `e_s' = Σ β_i e_i`.
pub struct StarAttention {
    q: Linear,
    k: Linear,
    dim: usize,
}

impl StarAttention {
    /// Creates the attention for `d`-dimensional embeddings.
    pub fn new(dim: usize, rng: &mut Rng) -> Self {
        StarAttention {
            q: Linear::new_no_bias(dim, dim, rng),
            k: Linear::new_no_bias(dim, dim, rng),
            dim,
        }
    }

    /// Returns the new star embedding `[d]`.
    pub fn attend(&self, satellites: &Tensor, star: &Tensor) -> Tensor {
        assert_eq!(satellites.cols(), self.dim);
        let ks = self.k.apply(satellites); // [c, d]
        let q = self.q.apply(&star.reshape(&[1, self.dim])); // [1, d]
        let scores = q
            .matmul(&ks.transpose())
            .mul_scalar(1.0 / (self.dim as f32).sqrt()); // [1, c]
        let beta = scores.softmax_rows(); // [1, c]
        beta.matmul(satellites).reshape(&[self.dim])
    }
}

impl Module for StarAttention {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.q.parameters();
        p.extend(self.k.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_tensor::testing::assert_close;

    #[test]
    fn inference_blend_is_bitwise_identical_to_taped_blend() {
        let mut rng = Rng::seed_from_u64(21);
        let g = StarGate::new(6, &mut rng);
        let sats: Vec<f32> = (0..5 * 6).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        let star: Vec<f32> = (0..6).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        let sats = Tensor::from_vec(sats, &[5, 6]);
        let star = Tensor::from_vec(star, &[6]);
        let taped: Vec<u32> = g
            .propagate(&sats, &star)
            .to_vec()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let fused: Vec<u32> = embsr_tensor::inference_mode(|| g.propagate(&sats, &star))
            .to_vec()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(taped, fused);
    }

    #[test]
    fn star_gate_output_shape() {
        let g = StarGate::new(4, &mut Rng::seed_from_u64(0));
        let sats = Tensor::ones(&[3, 4]);
        let star = Tensor::ones(&[4]);
        assert_eq!(g.propagate(&sats, &star).shape().dims(), &[3, 4]);
    }

    #[test]
    fn star_gate_is_convex_combination() {
        // With satellites == star, the output must equal them regardless of α.
        let g = StarGate::new(3, &mut Rng::seed_from_u64(1));
        let sats = Tensor::full(&[2, 3], 0.7);
        let star = Tensor::full(&[3], 0.7);
        assert_close(&g.propagate(&sats, &star).to_vec(), &[0.7; 6], 1e-5);
    }

    #[test]
    fn star_attention_returns_mixture_of_satellites() {
        let a = StarAttention::new(2, &mut Rng::seed_from_u64(2));
        let sats = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let star = Tensor::from_vec(vec![0.5, 0.5], &[2]);
        let out = a.attend(&sats, &star).to_vec();
        // convex mixture of rows: components sum to 1 and lie in [0,1]
        assert_close(&[out[0] + out[1]], &[1.0], 1e-5);
        assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn star_attention_single_satellite_returns_it() {
        let a = StarAttention::new(3, &mut Rng::seed_from_u64(3));
        let sats = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[1, 3]);
        let star = Tensor::zeros(&[3]);
        assert_close(&a.attend(&sats, &star).to_vec(), &[0.1, 0.2, 0.3], 1e-5);
    }

    #[test]
    fn gradients_reach_projections() {
        let g = StarGate::new(2, &mut Rng::seed_from_u64(4));
        let a = StarAttention::new(2, &mut Rng::seed_from_u64(5));
        let sats = Tensor::from_vec(vec![0.3, -0.3, 0.6, 0.1], &[2, 2]);
        let star = Tensor::from_vec(vec![0.2, 0.4], &[2]);
        let gated = g.propagate(&sats, &star);
        let new_star = a.attend(&gated, &star);
        new_star.sum().backward();
        for p in g.parameters().iter().chain(a.parameters().iter()) {
            assert!(p.grad().is_some());
        }
    }
}
