//! Operation-aware self-attention (paper eq. 12–16).
//!
//! An extension of self-attention with relative position representations
//! (Shaw et al.): the key/value for pair `(i, j)` is
//! `x_j + e_{r_ij} + e_{p_j}`, where `e_{r_ij}` embeds the **dyadic
//! operation pair** `(o_i, o_j)` and `e_{p_j}` the absolute position.
//!
//! ```text
//! e_ij = x_i W_Q (x_j + e_r_ij + e_p_j)ᵀ / √d
//! α_ij = softmax_j(e_ij)
//! z_i  = Σ_j α_ij (x_j + e_r_ij + e_p_j)
//! ```
//!
//! Setting `use_dyadic = false` degrades the layer to standard
//! self-attention with absolute operation embeddings only (the
//! `SGNN-Abs-Self` variant of the paper's Sec. V-E).

use embsr_tensor::{Rng, Tensor};

use crate::embedding::Embedding;
use crate::linear::Linear;
use crate::module::{Forward, Module};

/// The operation-aware self-attention layer.
pub struct OpAwareSelfAttention {
    /// Dyadic relation table `M^R ∈ R^{|O|² × d}` (unused when
    /// `use_dyadic` is false).
    relations: Embedding,
    /// Position table `M^P ∈ R^{L × d}`.
    positions: Embedding,
    /// Query projection `W^Q`.
    query: Linear,
    num_ops: usize,
    dim: usize,
    use_dyadic: bool,
}

impl OpAwareSelfAttention {
    /// Creates the layer.
    ///
    /// * `num_ops` — `|O|`; the relation table has `|O|²` rows.
    /// * `max_len` — `L`, the longest supported input sequence.
    /// * `use_dyadic` — disable to ablate the dyadic relation encoding.
    pub fn new(dim: usize, num_ops: usize, max_len: usize, use_dyadic: bool, rng: &mut Rng) -> Self {
        OpAwareSelfAttention {
            relations: Embedding::new(num_ops * num_ops, dim, rng),
            positions: Embedding::new(max_len, dim, rng),
            query: Linear::new_no_bias(dim, dim, rng),
            num_ops,
            dim,
            use_dyadic,
        }
    }

    /// Maximum supported sequence length.
    pub fn max_len(&self) -> usize {
        self.positions.vocab()
    }

    /// Index into the relation table for the ordered pair `(o_i, o_j)`.
    pub fn relation_index(&self, o_i: usize, o_j: usize) -> usize {
        debug_assert!(o_i < self.num_ops && o_j < self.num_ops);
        o_i * self.num_ops + o_j
    }

    /// Runs the attention.
    ///
    /// * `xs` — input sequence `[t, d]` (micro-behavior embeddings, with the
    ///   star token appended as the final row by the caller).
    /// * `ops` — the operation id of each row (for the star token, the
    ///   caller passes the hypothesized next operation, per eq. 13).
    ///
    /// Returns the full output sequence `[t, d]`.
    ///
    /// # Panics
    /// Panics when `t` exceeds `max_len` or `ops.len() != t`.
    pub fn attend(&self, xs: &Tensor, ops: &[usize]) -> Tensor {
        let t = xs.rows();
        assert_eq!(ops.len(), t, "one op per row");
        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::counter("nn.attention_forwards").inc();
            embsr_obs::metrics::histogram("nn.attention_seq_len").record(t as u64);
        }
        assert!(t <= self.max_len(), "sequence {} > max_len {}", t, self.max_len());
        assert_eq!(xs.cols(), self.dim);

        let pos_idx: Vec<usize> = (0..t).collect();
        let pos = self.positions.lookup(&pos_idx); // [t, d]
        let scale = 1.0 / (self.dim as f32).sqrt();
        let queries = self.query.apply(xs); // [t, d]
        let d = self.dim;

        if !self.use_dyadic {
            // Keys are shared by every query, so the whole layer is two
            // plain GEMMs instead of t row-sized ones.
            let keys = xs.add(&pos); // [t, d]
            let scores = queries.matmul(&keys.transpose()).mul_scalar(scale); // [t, t]
            let alpha = scores.softmax_rows(); // [t, t]
            return alpha.matmul(&keys); // [t, d]
        }

        // Dyadic path: keys depend on the query through e_{r_ij}, so build
        // the all-pairs key matrix [t*t, d] (row i*t + j holds key_i[j] =
        // x_j + e_{r_ij} + e_{p_j}, in the same add order as the per-query
        // formulation) and batch the per-query products through bmm.
        let mut rel_idx = Vec::with_capacity(t * t);
        let mut tile = Vec::with_capacity(t * t);
        for &oi in ops {
            for (j, &oj) in ops.iter().enumerate() {
                rel_idx.push(self.relation_index(oi, oj));
                tile.push(j);
            }
        }
        let rels = self.relations.lookup(&rel_idx); // [t*t, d]
        let xs_tiled = xs.gather_rows(&tile); // [t*t, d]
        let pos_tiled = pos.gather_rows(&tile); // [t*t, d]
        let keys = xs_tiled.add(&rels).add(&pos_tiled); // [t*t, d]

        let keys3 = keys.reshape(&[t, t, d]);
        let queries3 = queries.reshape(&[t, 1, d]);
        let scores = queries3.bmm_nt(&keys3).mul_scalar(scale); // [t, 1, t]
        let alpha = scores.reshape(&[t, t]).softmax_rows(); // [t, t]
        alpha.reshape(&[t, 1, t]).bmm(&keys3).reshape(&[t, d]) // [t, d]
    }
}

impl Module for OpAwareSelfAttention {
    fn parameters(&self) -> Vec<Tensor> {
        // The relation table is only part of the trainable graph when the
        // dyadic encoding is on; exposing it otherwise hands the optimizer a
        // parameter the loss can never reach (flagged by the graph
        // validator as `detached-param`).
        let mut p = Vec::new();
        if self.use_dyadic {
            p.extend(self.relations.parameters());
        }
        p.extend(self.positions.parameters());
        p.extend(self.query.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(dim: usize, ops: usize, len: usize, dyadic: bool, seed: u64) -> OpAwareSelfAttention {
        OpAwareSelfAttention::new(dim, ops, len, dyadic, &mut Rng::seed_from_u64(seed))
    }

    #[test]
    fn output_shape_matches_input() {
        let att = layer(4, 3, 10, true, 0);
        let xs = Tensor::from_vec(vec![0.1; 20], &[5, 4]);
        let z = att.attend(&xs, &[0, 1, 2, 0, 1]);
        assert_eq!(z.shape().dims(), &[5, 4]);
    }

    #[test]
    fn relation_index_is_bijective_over_pairs() {
        let att = layer(2, 4, 4, true, 1);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4 {
            for j in 0..4 {
                assert!(seen.insert(att.relation_index(i, j)));
            }
        }
        assert_eq!(seen.len(), 16);
        assert!(seen.iter().all(|&k| k < 16));
    }

    #[test]
    fn dyadic_encoding_changes_output() {
        // Same items, different operation pairs => different outputs only
        // when dyadic encoding is on.
        let att = layer(4, 3, 8, true, 2);
        let xs = Tensor::from_vec(vec![0.3; 12], &[3, 4]);
        let z1 = att.attend(&xs, &[0, 0, 0]).to_vec();
        let z2 = att.attend(&xs, &[0, 1, 2]).to_vec();
        assert_ne!(z1, z2);
    }

    #[test]
    fn without_dyadic_ops_are_ignored_inside_attention() {
        let att = layer(4, 3, 8, false, 3);
        let xs = Tensor::from_vec(vec![0.3; 12], &[3, 4]);
        let z1 = att.attend(&xs, &[0, 0, 0]).to_vec();
        let z2 = att.attend(&xs, &[0, 1, 2]).to_vec();
        assert_eq!(z1, z2);
    }

    #[test]
    fn attention_weights_mix_rows() {
        // With a single row, output = x_0 + rel + pos (softmax of one = 1).
        let att = layer(3, 2, 4, true, 4);
        let xs = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let z = att.attend(&xs, &[1]);
        let rel = att.relations.lookup_one(att.relation_index(1, 1)).to_vec();
        let pos = att.positions.lookup_one(0).to_vec();
        let expect: Vec<f32> = (0..3).map(|k| xs.to_vec()[k] + rel[k] + pos[k]).collect();
        embsr_tensor::testing::assert_close(&z.to_vec(), &expect, 1e-5);
    }

    #[test]
    #[should_panic(expected = "max_len")]
    fn over_length_rejected() {
        let att = layer(2, 2, 3, true, 5);
        let xs = Tensor::zeros(&[4, 2]);
        let _ = att.attend(&xs, &[0, 0, 0, 0]);
    }

    #[test]
    fn gradients_reach_relation_table_only_when_dyadic() {
        let xs = Tensor::from_vec(vec![0.2; 8], &[2, 4]);
        let att = layer(4, 2, 4, true, 6);
        att.attend(&xs, &[0, 1]).sum().backward();
        assert!(att.relations.weight.grad().is_some());

        let att2 = layer(4, 2, 4, false, 7);
        att2.attend(&xs, &[0, 1]).sum().backward();
        assert!(att2.relations.weight.grad().is_none());
    }
}
