//! Gated graph update (paper eq. 8, after Li et al.'s GGNN).
//!
//! Each satellite node combines its aggregated incoming/outgoing messages
//! `a_i ∈ R^{2d}` with its previous embedding through GRU-style gates.

use embsr_tensor::{uniform_init, Rng, Tensor};

use crate::module::Module;

/// The gated update cell:
///
/// ```text
/// z̃ = σ(a·W_z + e·U_z)
/// r = σ(a·W_r + e·U_r)
/// ẽ = tanh(a·W_u + (r ⊙ e)·U_u)
/// ê = (1 - z̃) ⊙ e + z̃ ⊙ ẽ
/// ```
///
/// Operates on all nodes at once: `a` is `[c, 2d]`, `e` is `[c, d]`.
pub struct GgnnCell {
    w_z: Tensor,
    w_r: Tensor,
    w_u: Tensor,
    u_z: Tensor,
    u_r: Tensor,
    u_u: Tensor,
    dim: usize,
}

impl GgnnCell {
    /// Creates a cell for `d`-dimensional node embeddings.
    pub fn new(dim: usize, rng: &mut Rng) -> Self {
        GgnnCell {
            w_z: uniform_init(&[2 * dim, dim], rng),
            w_r: uniform_init(&[2 * dim, dim], rng),
            w_u: uniform_init(&[2 * dim, dim], rng),
            u_z: uniform_init(&[dim, dim], rng),
            u_r: uniform_init(&[dim, dim], rng),
            u_u: uniform_init(&[dim, dim], rng),
            dim,
        }
    }

    /// Node embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies the gated update. `agg` is `[c, 2d]`, `prev` is `[c, d]`;
    /// returns the updated `[c, d]` embeddings.
    pub fn update(&self, agg: &Tensor, prev: &Tensor) -> Tensor {
        assert_eq!(agg.cols(), 2 * self.dim, "aggregate must be [c, 2d]");
        assert_eq!(prev.cols(), self.dim, "prev must be [c, d]");
        assert_eq!(agg.rows(), prev.rows(), "node count mismatch");
        if embsr_tensor::is_inference() {
            // Two fused passes instead of ~eleven taped elementwise ops; the
            // six GEMMs are unchanged. Bitwise-identical to the chain below
            // (split where r ⊙ e feeds the candidate GEMM), so inference-mode
            // dispatch changes no observable bits.
            let (z, rp) = embsr_tensor::gated_update_gates(
                &agg.matmul(&self.w_z),
                &prev.matmul(&self.u_z),
                &agg.matmul(&self.w_r),
                &prev.matmul(&self.u_r),
                prev,
            );
            return embsr_tensor::gated_update_combine(
                &agg.matmul(&self.w_u),
                &rp.matmul(&self.u_u),
                &z,
                prev,
            );
        }
        let z = agg.matmul(&self.w_z).add(&prev.matmul(&self.u_z)).sigmoid();
        let r = agg.matmul(&self.w_r).add(&prev.matmul(&self.u_r)).sigmoid();
        let cand = agg
            .matmul(&self.w_u)
            .add(&r.mul(prev).matmul(&self.u_u))
            .tanh();
        z.one_minus().mul(prev).add(&z.mul(&cand))
    }
}

impl Module for GgnnCell {
    fn parameters(&self) -> Vec<Tensor> {
        vec![
            self.w_z.clone(),
            self.w_r.clone(),
            self.w_u.clone(),
            self.u_z.clone(),
            self.u_r.clone(),
            self.u_u.clone(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_preserves_shape() {
        let cell = GgnnCell::new(4, &mut Rng::seed_from_u64(0));
        let agg = Tensor::zeros(&[3, 8]);
        let prev = Tensor::ones(&[3, 4]);
        let out = cell.update(&agg, &prev);
        assert_eq!(out.shape().dims(), &[3, 4]);
    }

    #[test]
    fn zero_update_gate_keeps_previous() {
        // With all weights at zero, z = σ(0) = 0.5, cand = 0, so
        // out = 0.5 * prev. Verifies the convex-combination structure.
        let cell = GgnnCell::new(2, &mut Rng::seed_from_u64(1));
        for p in cell.parameters() {
            p.set_data(&vec![0.0; p.len()]);
        }
        let agg = Tensor::zeros(&[1, 4]);
        let prev = Tensor::from_vec(vec![1.0, -2.0], &[1, 2]);
        let out = cell.update(&agg, &prev).to_vec();
        embsr_tensor::testing::assert_close(&out, &[0.5, -1.0], 1e-6);
    }

    #[test]
    fn output_bounded_by_gate_structure() {
        let cell = GgnnCell::new(3, &mut Rng::seed_from_u64(2));
        let agg = Tensor::full(&[2, 6], 100.0);
        let prev = Tensor::full(&[2, 3], 0.5);
        // ê is a convex combination of prev ∈ [-0.5, 0.5] and tanh ∈ [-1, 1]
        let out = cell.update(&agg, &prev);
        assert!(out.to_vec().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn row_mismatch_rejected() {
        let cell = GgnnCell::new(2, &mut Rng::seed_from_u64(3));
        let _ = cell.update(&Tensor::zeros(&[2, 4]), &Tensor::zeros(&[3, 2]));
    }

    #[test]
    fn inference_update_is_bitwise_identical_to_taped_update() {
        let mut rng = Rng::seed_from_u64(11);
        for &(c, d) in &[(1usize, 2usize), (5, 8), (9, 33)] {
            let cell = GgnnCell::new(d, &mut rng);
            let agg: Vec<f32> = (0..c * 2 * d).map(|_| rng.uniform_range(-1.5, 1.5)).collect();
            let prev: Vec<f32> = (0..c * d).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
            let agg = Tensor::from_vec(agg, &[c, 2 * d]);
            let prev = Tensor::from_vec(prev, &[c, d]);
            let taped: Vec<u32> = cell.update(&agg, &prev).to_vec().iter().map(|v| v.to_bits()).collect();
            let fused: Vec<u32> = embsr_tensor::inference_mode(|| cell.update(&agg, &prev))
                .to_vec()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(taped, fused, "diverged at (c={c}, d={d})");
        }
    }

    #[test]
    fn gradients_flow_to_all_six_weights() {
        let cell = GgnnCell::new(2, &mut Rng::seed_from_u64(4));
        let agg = Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4], &[1, 4]);
        let prev = Tensor::from_vec(vec![0.5, -0.5], &[1, 2]);
        cell.update(&agg, &prev).sum().backward();
        for (i, p) in cell.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "weight {i} has no gradient");
        }
    }
}
