//! Affine projection `y = x·W + b`.

use embsr_tensor::{uniform_init, zeros_init, Rng, Tensor};

use crate::module::{Forward, Module, ModuleCtx};

/// A dense layer mapping `[n, in] -> [n, out]`.
///
/// The weight is stored `[in, out]` so a row-major input multiplies directly.
pub struct Linear {
    pub weight: Tensor,
    pub bias: Option<Tensor>,
}

impl Linear {
    /// New layer with uniform `[-1/√in, 1/√in]` init and a zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        Linear {
            weight: uniform_init(&[in_dim, out_dim], rng),
            bias: Some(zeros_init(&[out_dim])),
        }
    }

    /// New layer without a bias term (used by the pure projections `W_Q`,
    /// `W_{q1}`, `W_{k1}`, … of the attention and star equations).
    pub fn new_no_bias(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        Linear {
            weight: uniform_init(&[in_dim, out_dim], rng),
            bias: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

impl Forward for Linear {
    /// Applies the layer to `[n, in]` (or a single `[in]` row). Deterministic:
    /// the context is ignored.
    fn forward(&self, x: &Tensor, _ctx: &mut ModuleCtx<'_>) -> Tensor {
        let x2 = if x.shape().rank() == 1 {
            x.reshape(&[1, x.len()])
        } else {
            x.clone()
        };
        let y = x2.matmul(&self.weight);
        let y = match &self.bias {
            Some(b) => y.add(b),
            None => y,
        };
        if x.shape().rank() == 1 {
            y.reshape(&[y.len()])
        } else {
            y
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_tensor::testing::assert_close;

    #[test]
    fn identity_weight_passthrough() {
        let l = Linear::new(2, 2, &mut Rng::seed_from_u64(0));
        l.weight.set_data(&[1.0, 0.0, 0.0, 1.0]);
        let x = Tensor::from_vec(vec![3.0, -4.0], &[1, 2]);
        assert_close(&l.apply(&x).to_vec(), &[3.0, -4.0], 1e-6);
    }

    #[test]
    fn bias_added_per_row() {
        let l = Linear::new(1, 2, &mut Rng::seed_from_u64(0));
        l.weight.set_data(&[1.0, 1.0]);
        l.bias.as_ref().unwrap().set_data(&[10.0, 20.0]);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        assert_close(&l.apply(&x).to_vec(), &[11.0, 21.0, 12.0, 22.0], 1e-6);
    }

    #[test]
    fn rank1_input_gives_rank1_output() {
        let l = Linear::new(3, 4, &mut Rng::seed_from_u64(1));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let y = l.apply(&x);
        assert_eq!(y.shape().dims(), &[4]);
    }

    #[test]
    fn gradients_reach_weight_and_bias() {
        let l = Linear::new(2, 2, &mut Rng::seed_from_u64(2));
        let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]);
        l.apply(&x).sum().backward();
        assert!(l.weight.grad().is_some());
        assert!(l.bias.as_ref().unwrap().grad().is_some());
    }

    #[test]
    fn parameters_counts_bias_presence() {
        let mut rng = Rng::seed_from_u64(3);
        assert_eq!(Linear::new(2, 3, &mut rng).parameters().len(), 2);
        assert_eq!(Linear::new_no_bias(2, 3, &mut rng).parameters().len(), 1);
    }
}
