//! Gated Recurrent Unit (paper eq. 3).
//!
//! EMBSR runs a GRU over each macro-item's micro-operation sub-sequence and
//! takes the last hidden state as the edge feature `h̃^i`. The RNN baselines
//! (GRU4Rec, NARM, RIB, HUP) reuse the same cell over item sequences.

use embsr_tensor::{uniform_init, zeros_init, Rng, Tensor};

use crate::module::{Forward, Module, ModuleCtx};

/// A single-layer GRU with PyTorch-style gate equations:
///
/// ```text
/// r = σ(x·W_r + h·U_r + b_r)
/// z = σ(x·W_z + h·U_z + b_z)
/// n = tanh(x·W_n + r ⊙ (h·U_n) + b_n)
/// h' = (1 - z) ⊙ n + z ⊙ h
/// ```
pub struct Gru {
    w_r: Tensor,
    w_z: Tensor,
    w_n: Tensor,
    u_r: Tensor,
    u_z: Tensor,
    u_n: Tensor,
    b_r: Tensor,
    b_z: Tensor,
    b_n: Tensor,
    hidden: usize,
}

impl Gru {
    /// Creates a GRU mapping inputs of `input` dims to `hidden` dims.
    pub fn new(input: usize, hidden: usize, rng: &mut Rng) -> Self {
        Gru {
            w_r: uniform_init(&[input, hidden], rng),
            w_z: uniform_init(&[input, hidden], rng),
            w_n: uniform_init(&[input, hidden], rng),
            u_r: uniform_init(&[hidden, hidden], rng),
            u_z: uniform_init(&[hidden, hidden], rng),
            u_n: uniform_init(&[hidden, hidden], rng),
            b_r: zeros_init(&[hidden]),
            b_z: zeros_init(&[hidden]),
            b_n: zeros_init(&[hidden]),
            hidden,
        }
    }

    /// Hidden state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// One step: `x` is `[1, input]` (or `[input]`), `h` is `[1, hidden]`.
    pub fn step(&self, x: &Tensor, h: &Tensor) -> Tensor {
        let x = if x.shape().rank() == 1 {
            x.reshape(&[1, x.len()])
        } else {
            x.clone()
        };
        self.step_projected(
            &x.matmul(&self.w_r),
            &x.matmul(&self.w_z),
            &x.matmul(&self.w_n),
            h,
        )
    }

    /// One step given precomputed input projections `x·W_r`, `x·W_z`,
    /// `x·W_n` (each `[1, hidden]`). The full-sequence forward hoists the
    /// three input GEMMs out of the time loop and feeds row slices here; a
    /// GEMM row is the same sequential dot product whether computed alone or
    /// as part of the whole `[t, hidden]` product, so results are bitwise
    /// unchanged.
    fn step_projected(&self, gx_r: &Tensor, gx_z: &Tensor, gx_n: &Tensor, h: &Tensor) -> Tensor {
        let hu_r = h.matmul(&self.u_r);
        let hu_z = h.matmul(&self.u_z);
        let hu_n = h.matmul(&self.u_n);
        if embsr_tensor::is_inference() {
            // One pass over the state instead of ~ten taped elementwise ops.
            // Bitwise-identical to the chain below (same scalar expressions,
            // same rounding order), so dispatching on inference mode alone —
            // including the trainer's eval loop — changes no observable bits.
            return embsr_tensor::gru_step_fused(
                gx_r, gx_z, gx_n, &hu_r, &hu_z, &hu_n, &self.b_r, &self.b_z, &self.b_n, h,
            );
        }
        let r = gx_r.add(&hu_r).add(&self.b_r).sigmoid();
        let z = gx_z.add(&hu_z).add(&self.b_z).sigmoid();
        let n = gx_n.add(&r.mul(&hu_n)).add(&self.b_n).tanh();
        z.one_minus().mul(&n).add(&z.mul(h))
    }

    /// Runs the GRU over the sequence and returns only the final hidden
    /// state `[hidden]` — `h̃^i = h̃^i_k` in the paper.
    pub fn last_state(&self, xs: &Tensor) -> Tensor {
        if embsr_tensor::is_inference() {
            // Serving calls this once per micro-op sub-sequence; keeping only
            // the running state skips the per-step clone and the final concat
            // of `forward`. The last row of the concatenated states IS the
            // final state, so the output bits are unchanged.
            let t = xs.rows();
            assert!(t > 0, "GRU over empty sequence");
            let gx_r = xs.matmul(&self.w_r);
            let gx_z = xs.matmul(&self.w_z);
            let gx_n = xs.matmul(&self.w_n);
            let mut h = Tensor::zeros(&[1, self.hidden]);
            for i in 0..t {
                h = self.step_projected(
                    &gx_r.slice_rows(i, i + 1),
                    &gx_z.slice_rows(i, i + 1),
                    &gx_n.slice_rows(i, i + 1),
                    &h,
                );
            }
            return h.reshape(&[self.hidden]);
        }
        let all = self.apply(xs);
        let t = all.rows();
        all.slice_rows(t - 1, t).reshape(&[self.hidden])
    }

    /// Final hidden state of several independent sequences, stacked as rows
    /// of `[n, hidden]` in input order.
    ///
    /// Under the tape this is literally `last_state` per sequence plus a
    /// `stack_rows`. Under inference mode the sequences advance in lockstep
    /// instead: one `[Σtᵢ, input]` GEMM per gate for all input projections,
    /// then per time step one `[n, hidden]`-shaped recurrent GEMM per gate
    /// and one masked fused gate pass, with exhausted sequences carrying
    /// their state through unchanged. A GEMM output row is the same
    /// k-sequential reduction whatever the row count of the product, and the
    /// masked fused step computes the exact single-row chain per active row,
    /// so the batched path is bitwise-identical to the sequential one — it
    /// just replaces `3·Σtᵢ` one-row GEMM dispatches with `3·(1 + max tᵢ)`
    /// batch-shaped ones, which is where the serving time went.
    pub fn last_states(&self, seqs: &[&Tensor]) -> Tensor {
        assert!(!seqs.is_empty(), "GRU over an empty batch");
        if !embsr_tensor::is_inference() || seqs.len() == 1 {
            let rows: Vec<Tensor> = seqs.iter().map(|xs| self.last_state(xs)).collect();
            return Tensor::stack_rows(&rows);
        }
        let n = seqs.len();
        let lens: Vec<usize> = seqs.iter().map(|xs| xs.rows()).collect();
        assert!(lens.iter().all(|&k| k > 0), "GRU over empty sequence");
        let kmax = lens.iter().copied().fold(0, usize::max);
        let mut offsets = Vec::with_capacity(n);
        let mut total = 0usize;
        for &k in &lens {
            offsets.push(total);
            total += k;
        }
        let flat = Tensor::concat_rows(&seqs.iter().map(|&x| x.clone()).collect::<Vec<_>>());
        let gx_r = flat.matmul(&self.w_r); // [Σt, hidden]
        let gx_z = flat.matmul(&self.w_z);
        let gx_n = flat.matmul(&self.w_n);
        let mut h = Tensor::zeros(&[n, self.hidden]);
        for j in 0..kmax {
            // Exhausted rows gather their last element again; the masked
            // step ignores everything but their previous state.
            let idx: Vec<usize> = (0..n).map(|i| offsets[i] + j.min(lens[i] - 1)).collect();
            let active: Vec<bool> = lens.iter().map(|&k| j < k).collect();
            let hu_r = h.matmul(&self.u_r);
            let hu_z = h.matmul(&self.u_z);
            let hu_n = h.matmul(&self.u_n);
            h = embsr_tensor::gru_step_fused_masked(
                &gx_r.gather_rows(&idx),
                &gx_z.gather_rows(&idx),
                &gx_n.gather_rows(&idx),
                &hu_r,
                &hu_z,
                &hu_n,
                &self.b_r,
                &self.b_z,
                &self.b_n,
                &h,
                &active,
            );
        }
        h
    }
}

impl Forward for Gru {
    /// Runs the GRU over a sequence given as rows of `[t, input]`, starting
    /// from a zero state. Returns all hidden states `[t, hidden]`.
    /// Deterministic: the context is ignored.
    fn forward(&self, xs: &Tensor, _ctx: &mut ModuleCtx<'_>) -> Tensor {
        let t = xs.rows();
        assert!(t > 0, "GRU over empty sequence");
        // Per-gate input projections for the whole sequence in one GEMM
        // each, instead of three [1, input]·[input, hidden] products per
        // step.
        let gx_r = xs.matmul(&self.w_r); // [t, hidden]
        let gx_z = xs.matmul(&self.w_z);
        let gx_n = xs.matmul(&self.w_n);
        let mut h = Tensor::zeros(&[1, self.hidden]);
        let mut states = Vec::with_capacity(t);
        for i in 0..t {
            h = self.step_projected(
                &gx_r.slice_rows(i, i + 1),
                &gx_z.slice_rows(i, i + 1),
                &gx_n.slice_rows(i, i + 1),
                &h,
            );
            states.push(h.clone());
        }
        Tensor::concat_rows(&states)
    }
}

impl Module for Gru {
    fn parameters(&self) -> Vec<Tensor> {
        vec![
            self.w_r.clone(),
            self.w_z.clone(),
            self.w_n.clone(),
            self.u_r.clone(),
            self.u_z.clone(),
            self.u_n.clone(),
            self.b_r.clone(),
            self.b_z.clone(),
            self.b_n.clone(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_tensor::{Adam, AdamConfig, Optimizer};

    #[test]
    fn output_stays_bounded() {
        let g = Gru::new(3, 4, &mut Rng::seed_from_u64(0));
        let xs = Tensor::from_vec(vec![5.0; 15], &[5, 3]);
        let h = g.last_state(&xs);
        assert!(h.to_vec().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn state_depends_on_order() {
        let g = Gru::new(2, 3, &mut Rng::seed_from_u64(1));
        let ab = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let ba = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]);
        let h1 = g.last_state(&ab).to_vec();
        let h2 = g.last_state(&ba).to_vec();
        assert_ne!(h1, h2);
    }

    #[test]
    fn forward_all_shape() {
        let g = Gru::new(2, 5, &mut Rng::seed_from_u64(2));
        let xs = Tensor::from_vec(vec![0.1; 8], &[4, 2]);
        assert_eq!(g.apply(&xs).shape().dims(), &[4, 5]);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_rejected() {
        let g = Gru::new(2, 2, &mut Rng::seed_from_u64(3));
        let _ = g.apply(&Tensor::zeros(&[0, 2]));
    }

    #[test]
    fn inference_path_is_bitwise_identical_to_taped_path() {
        // The fused gate op and the state-only loop must reproduce the taped
        // chain bit for bit — this is what lets serving (and the trainer's
        // eval loop) dispatch on inference mode without an epsilon contract.
        // Perturb the parameters away from init first so the zero biases
        // don't mask a broken bias add.
        let mut rng = embsr_tensor::Rng::seed_from_u64(9);
        for &(t, input, hidden) in &[(1usize, 3usize, 4usize), (5, 8, 16), (7, 12, 33)] {
            let g = Gru::new(input, hidden, &mut rng);
            let mut opt = Adam::new(
                g.parameters(),
                AdamConfig {
                    lr: 0.1,
                    ..Default::default()
                },
            );
            let warm: Vec<f32> = (0..t * input).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
            let warm = Tensor::from_vec(warm, &[t, input]);
            for _ in 0..3 {
                opt.zero_grad();
                g.last_state(&warm).square().sum().backward();
                opt.step();
            }
            // b_z, not b_r: with h₀ = 0 and t = 1 the reset gate only acts
            // through r ⊙ (h·U_n) = 0, so b_r legitimately gets no gradient.
            assert!(g.b_z.to_vec().iter().any(|&b| b != 0.0), "biases still zero");

            let data: Vec<f32> = (0..t * input).map(|_| rng.uniform_range(-1.5, 1.5)).collect();
            let xs = Tensor::from_vec(data, &[t, input]);
            let taped: Vec<u32> = g.last_state(&xs).to_vec().iter().map(|v| v.to_bits()).collect();
            let fused: Vec<u32> = embsr_tensor::inference_mode(|| g.last_state(&xs))
                .to_vec()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(taped, fused, "diverged at (t={t}, input={input}, hidden={hidden})");
        }
    }

    #[test]
    fn gru_can_learn_last_input_sign() {
        // tiny task: predict the sign of the last input element
        let mut rng = Rng::seed_from_u64(4);
        let g = Gru::new(1, 4, &mut rng);
        let readout = crate::linear::Linear::new(4, 1, &mut rng);
        let mut params = g.parameters();
        params.extend(readout.parameters());
        let mut opt = Adam::new(
            params,
            AdamConfig {
                lr: 0.05,
                ..Default::default()
            },
        );
        let seqs: Vec<(Vec<f32>, f32)> = vec![
            (vec![0.3, -0.9, 1.0], 1.0),
            (vec![0.5, 0.2, -1.0], -1.0),
            (vec![-0.7, 1.0], 1.0),
            (vec![0.9, -1.0], -1.0),
        ];
        let mut last_loss = f32::MAX;
        for _ in 0..150 {
            opt.zero_grad();
            let mut total = Tensor::scalar(0.0);
            for (xs, y) in &seqs {
                let t = Tensor::from_vec(xs.clone(), &[xs.len(), 1]);
                let h = g.last_state(&t);
                let pred = readout.apply(&h);
                let err = pred.add_scalar(-y).square().sum();
                total = total.add(&err);
            }
            last_loss = total.item();
            total.backward();
            opt.step();
        }
        assert!(last_loss < 0.1, "GRU failed to fit toy task: {last_loss}");
    }
}
