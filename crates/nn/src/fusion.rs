//! Fusion gating network (paper eq. 18).
//!
//! Combines the attention output `z_s` (global preference) with the last
//! micro-behavior embedding `x_t` (recent interest):
//! `β = σ(W_m [z_s ; x_t] + b_m)`, `m = β ⊙ z_s + (1−β) ⊙ x_t`.
//!
//! A fixed-β mode reproduces the sweep of paper Fig. 6, and a concat+MLP
//! mode reproduces the `EMBSR-NF` ablation.

use embsr_tensor::{Rng, Tensor};

use crate::linear::Linear;
use crate::module::{Forward, Module};

/// How the two representations are combined.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FusionMode {
    /// Learned gate (the full model).
    Gated,
    /// Fixed scalar weight `β` (Fig. 6 sweep).
    Fixed(f32),
    /// `EMBSR-NF`: concatenate and project with an MLP instead of gating.
    ConcatMlp,
}

/// The fusion layer.
pub struct FusionGate {
    gate: Linear,
    mlp: Linear,
    pub mode: FusionMode,
}

impl FusionGate {
    /// Creates the layer for `d`-dimensional representations.
    pub fn new(dim: usize, mode: FusionMode, rng: &mut Rng) -> Self {
        FusionGate {
            gate: Linear::new(2 * dim, dim, rng),
            mlp: Linear::new(2 * dim, dim, rng),
            mode,
        }
    }

    /// Combines `z_s` and `x_t`, both `[d]`.
    pub fn fuse(&self, z_s: &Tensor, x_t: &Tensor) -> Tensor {
        assert_eq!(z_s.len(), x_t.len(), "fusion input length mismatch");
        match self.mode {
            FusionMode::Gated => {
                let beta = self.gate.apply(&z_s.concat_cols(x_t)).sigmoid();
                if embsr_tensor::is_inference() {
                    // Single-pass convex blend, bitwise-identical.
                    return embsr_tensor::gated_blend(&beta, z_s, x_t);
                }
                beta.mul(z_s).add(&beta.one_minus().mul(x_t))
            }
            FusionMode::Fixed(beta) => z_s.mul_scalar(beta).add(&x_t.mul_scalar(1.0 - beta)),
            FusionMode::ConcatMlp => self.mlp.apply(&z_s.concat_cols(x_t)),
        }
    }
}

impl Module for FusionGate {
    fn parameters(&self) -> Vec<Tensor> {
        match self.mode {
            FusionMode::Gated => self.gate.parameters(),
            FusionMode::Fixed(_) => Vec::new(),
            FusionMode::ConcatMlp => self.mlp.parameters(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_tensor::testing::assert_close;

    #[test]
    fn fixed_zero_returns_recent_interest() {
        let f = FusionGate::new(3, FusionMode::Fixed(0.0), &mut Rng::seed_from_u64(0));
        let z = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]);
        let x = Tensor::from_vec(vec![9.0, 8.0, 7.0], &[3]);
        assert_close(&f.fuse(&z, &x).to_vec(), &[9.0, 8.0, 7.0], 1e-6);
    }

    #[test]
    fn fixed_one_returns_global_preference() {
        let f = FusionGate::new(3, FusionMode::Fixed(1.0), &mut Rng::seed_from_u64(1));
        let z = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let x = Tensor::from_vec(vec![9.0, 8.0, 7.0], &[3]);
        assert_close(&f.fuse(&z, &x).to_vec(), &[1.0, 2.0, 3.0], 1e-6);
    }

    #[test]
    fn gated_inference_is_bitwise_identical_to_taped() {
        let mut rng = Rng::seed_from_u64(41);
        let f = FusionGate::new(7, FusionMode::Gated, &mut rng);
        let z: Vec<f32> = (0..7).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        let x: Vec<f32> = (0..7).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        let z = Tensor::from_vec(z, &[7]);
        let x = Tensor::from_vec(x, &[7]);
        let taped: Vec<u32> = f.fuse(&z, &x).to_vec().iter().map(|v| v.to_bits()).collect();
        let fused: Vec<u32> = embsr_tensor::inference_mode(|| f.fuse(&z, &x))
            .to_vec()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(taped, fused);
    }

    #[test]
    fn gated_output_is_elementwise_between_inputs() {
        let f = FusionGate::new(4, FusionMode::Gated, &mut Rng::seed_from_u64(2));
        let z = Tensor::zeros(&[4]);
        let x = Tensor::ones(&[4]);
        let out = f.fuse(&z, &x).to_vec();
        assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn mode_controls_trainable_params() {
        let mut rng = Rng::seed_from_u64(3);
        assert_eq!(
            FusionGate::new(2, FusionMode::Gated, &mut rng).parameters().len(),
            2
        );
        assert!(FusionGate::new(2, FusionMode::Fixed(0.5), &mut rng)
            .parameters()
            .is_empty());
        assert_eq!(
            FusionGate::new(2, FusionMode::ConcatMlp, &mut rng)
                .parameters()
                .len(),
            2
        );
    }

    #[test]
    fn concat_mlp_uses_the_mlp() {
        let f = FusionGate::new(2, FusionMode::ConcatMlp, &mut Rng::seed_from_u64(4));
        let z = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let x = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        f.fuse(&z, &x).sum().backward();
        assert!(f.mlp.weight.grad().is_some());
        assert!(f.gate.weight.grad().is_none());
    }
}
