//! Admission-control behavior under saturation: bounded queues refuse
//! shedding work with typed `Overloaded` errors (never silent drops), the
//! client- and server-side rejection accounting reconciles exactly, and
//! retry-with-backoff recovers once load subsides.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use common::{guard, sess, session_pool, ToyModel};
use embsr_net::{NetClient, NetError, RetryPolicy, Server, ServerConfig};
use embsr_serve::{EngineConfig, FrozenModel, ScoreBatch, SubmitOptions};

const NUM_ITEMS: usize = 16;

/// A deliberately tiny server: one replica, one dispatcher, a one-item
/// router queue — so saturation is deterministic, not statistical.
fn tiny_server(seed: u64, admission_cap: usize) -> Server {
    let frozen = FrozenModel::freeze(ToyModel::new(NUM_ITEMS, seed), 16);
    Server::start(
        &frozen,
        move || ToyModel::new(NUM_ITEMS, seed),
        ServerConfig {
            replicas: 1,
            dispatchers: 1,
            engine: EngineConfig {
                workers: 1,
                max_batch: 8,
                flush_deadline_us: 100,
                ..EngineConfig::default()
            },
            admission_cap,
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

#[test]
fn saturation_yields_overloaded_never_silent_drops() {
    let _g = guard();
    let server = tiny_server(3, 1);
    // Every dispatched item crawls, so the one-slot queue stays full while
    // the shedding clients hammer it.
    server.set_replica_delay_us(0, 30_000);

    let sessions = session_pool(32, NUM_ITEMS as u32, 9);
    let oks = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    let n_clients = 4usize;
    let per_client = 8usize;

    std::thread::scope(|scope| {
        for c in 0..n_clients {
            let server = &server;
            let sessions = &sessions;
            let oks = &oks;
            let overloaded = &overloaded;
            scope.spawn(move || {
                let mut client = NetClient::connect(server.addr()).expect("connect");
                for r in 0..per_client {
                    let s = sessions[(c * per_client + r) % sessions.len()].clone();
                    match client.score(
                        &ScoreBatch { sessions: vec![s] },
                        SubmitOptions {
                            deadline_us: 0,
                            shed: true,
                        },
                    ) {
                        Ok(_) => {
                            oks.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(NetError::Overloaded { queued, cap }) => {
                            assert_eq!(cap, 1, "the configured admission cap rides the error");
                            assert!(queued >= cap, "rejection reports a full queue");
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected error under saturation: {other}"),
                    }
                }
            });
        }
    });

    let total = (n_clients * per_client) as u64;
    let oks = oks.load(Ordering::Relaxed);
    let rejected = overloaded.load(Ordering::Relaxed);
    // No silent drops: every request resolved to scores or a typed refusal.
    assert_eq!(oks + rejected, total, "every request answered");
    assert!(rejected > 0, "the one-slot queue must have refused something");
    assert!(oks > 0, "admitted work still completes under overload");

    let stats = server.stats();
    assert_eq!(stats.completed, oks, "server-side completion accounting");
    assert_eq!(stats.rejected, rejected, "server-side rejection accounting");
    server.shutdown();
}

#[test]
fn client_observed_rejections_match_server_counters_exactly() {
    let _g = guard();
    let server = tiny_server(5, 1);
    server.set_replica_delay_us(0, 20_000);

    let sessions = session_pool(16, NUM_ITEMS as u32, 2);
    let client_seen = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for c in 0..3usize {
            let server = &server;
            let sessions = &sessions;
            let client_seen = &client_seen;
            scope.spawn(move || {
                let mut client = NetClient::connect(server.addr()).expect("connect");
                for r in 0..6usize {
                    let s = sessions[(c * 6 + r) % sessions.len()].clone();
                    let _ = client.score(
                        &ScoreBatch { sessions: vec![s] },
                        SubmitOptions {
                            deadline_us: 0,
                            shed: true,
                        },
                    );
                }
                client_seen.fetch_add(client.overloaded_seen(), Ordering::Relaxed);
            });
        }
    });

    // One-for-one: every `Overloaded` the server accounted was observed by
    // exactly one client, and vice versa.
    assert_eq!(
        client_seen.load(Ordering::Relaxed),
        server.stats().rejected,
        "client- and server-side rejection accounting reconcile"
    );
    server.shutdown();
}

#[test]
fn backoff_retry_succeeds_once_load_subsides() {
    let _g = guard();
    let server = tiny_server(7, 1);
    // Phase 1 — build deterministic saturation: the dispatcher is pinned on
    // a 200ms item (A) and the one-slot queue holds another (B).
    server.set_replica_delay_us(0, 200_000);
    let addr = server.addr();

    std::thread::scope(|scope| {
        for blocker in 0..2u64 {
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                // Non-shedding: these occupy the dispatcher + queue slot.
                let resp = client.score(
                    &ScoreBatch {
                        sessions: vec![sess(blocker, &[1, 2])],
                    },
                    SubmitOptions::default(),
                );
                assert!(resp.is_ok(), "blockers eventually complete: {resp:?}");
            });
        }
        // Let A reach the dispatcher and B the queue before contending.
        std::thread::sleep(Duration::from_millis(60));

        // Phase 2 — a shedding client retries with backoff. Its first
        // attempts land on the full queue (Overloaded); as A and B drain,
        // a retry is admitted and succeeds.
        let mut client = NetClient::connect(addr).expect("connect");
        let policy = RetryPolicy {
            max_retries: 200,
            base_backoff_us: 2_000,
            max_backoff_us: 20_000,
        };
        let (resp, attempts) = client
            .score_with_retry(
                &ScoreBatch {
                    sessions: vec![sess(99, &[3, 4])],
                },
                SubmitOptions {
                    deadline_us: 0,
                    shed: true,
                },
                &policy,
            )
            .expect("retry converges once load subsides");
        assert_eq!(resp.scores.len(), 1);
        assert!(attempts >= 1, "the saturated first attempt was refused");
        assert!(client.overloaded_seen() >= 1, "rejections were observed");
        assert_eq!(client.retries(), u64::from(attempts), "retry accounting");

        // Drop the injected latency so the blockers finish promptly.
        server.set_replica_delay_us(0, 0);
    });

    let stats = server.stats();
    assert!(stats.rejected >= 1, "server accounted the refusals");
    assert_eq!(stats.completed, 3, "both blockers and the retrier completed");
    server.shutdown();
}
