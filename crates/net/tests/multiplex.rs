//! Protocol-v2 connection multiplexing: many requests in flight on one
//! TCP connection, demultiplexed by request id.
//!
//! The invariants under test:
//!
//! * **Depth** — a pipelined client sustains at least four requests in
//!   flight on a single connection (the acceptance floor for the v2
//!   transport), and the answers stay bitwise-correct even when waited
//!   out of submission order.
//! * **Equivalence** — pipelined v2 scores are bitwise-identical to the
//!   serial v1 protocol and to the in-process frozen model.
//! * **Compatibility** — a hand-rolled v1 peer (no Hello handshake, v1
//!   frame headers) still gets v1-framed, decodable responses from the
//!   multiplexed server.

mod common;

use std::io::Write as _;
use std::net::TcpStream;

use common::{guard, sess, session_pool, ToyModel};
use embsr_net::frame::{self, Frame, FrameKind};
use embsr_net::{wire, NetClient, Server, ServerConfig, VERSION, VERSION_V1};
use embsr_obs::trace;
use embsr_serve::{EngineConfig, FrozenModel, ScoreBatch, SubmitOptions, TopK};

const NUM_ITEMS: usize = 24;

fn start_server(replicas: usize, seed: u64) -> (Server, FrozenModel<ToyModel>) {
    let frozen = FrozenModel::freeze(ToyModel::new(NUM_ITEMS, seed), 16);
    let server = Server::start(
        &frozen,
        move || ToyModel::new(NUM_ITEMS, seed),
        ServerConfig {
            replicas,
            dispatchers: 2,
            engine: EngineConfig {
                workers: 1,
                max_batch: 16,
                flush_deadline_us: 200,
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    (server, frozen)
}

fn assert_bitwise(expected: &[Vec<f32>], got: &[Vec<f32>], what: &str) {
    assert_eq!(expected.len(), got.len(), "{what}: row count");
    for (e, g) in expected.iter().zip(got) {
        assert_eq!(e.len(), g.len(), "{what}: row width");
        for (a, b) in e.iter().zip(g) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} != {b}");
        }
    }
}

#[test]
fn one_connection_sustains_four_in_flight_and_completes_out_of_order() {
    let _g = guard();
    let (server, frozen) = start_server(1, 21);
    let sessions = session_pool(12, NUM_ITEMS as u32, 9);

    // Precompute expected rows in-process (the frozen model is not Sync;
    // after submission the test only compares).
    let batches: Vec<Vec<embsr_sessions::Session>> =
        (0..6).map(|i| sessions[i * 2..i * 2 + 2].to_vec()).collect();
    let expected: Vec<Vec<Vec<f32>>> = batches.iter().map(|b| frozen.score_batch(b)).collect();

    // Hold the lone replica's dispatch so submissions pile up in flight.
    assert!(server.set_replica_delay_us(0, 20_000));

    let client = NetClient::connect(server.addr()).expect("connect");
    assert_eq!(client.proto_version(), VERSION, "handshake negotiates v2");

    let pendings: Vec<_> = batches
        .iter()
        .map(|b| {
            client.submit_score(
                &ScoreBatch {
                    sessions: b.clone(),
                },
                SubmitOptions::default(),
            )
        })
        .collect();
    assert!(
        client.in_flight() >= 4,
        "single connection holds >=4 in flight, got {}",
        client.in_flight()
    );

    // Heal the replica and drain in REVERSE submission order: the demux
    // must hand each waiter its own response regardless of wait order.
    assert!(server.set_replica_delay_us(0, 0));
    for (i, pending) in pendings.into_iter().enumerate().rev() {
        let resp = pending.wait().expect("pipelined request succeeds");
        assert_bitwise(&expected[i], &resp.scores, "out-of-order drain");
    }
    assert_eq!(client.in_flight(), 0, "all requests drained");
    drop(client);
    server.shutdown();
}

#[test]
fn pipelined_v2_matches_serial_v1_and_direct_scores_bitwise() {
    let _g = guard();
    let (server, frozen) = start_server(2, 17);
    let sessions = session_pool(20, NUM_ITEMS as u32, 5);

    let batches: Vec<Vec<embsr_sessions::Session>> =
        (0..5).map(|i| sessions[i * 4..i * 4 + 4].to_vec()).collect();
    let direct: Vec<Vec<Vec<f32>>> = batches.iter().map(|b| frozen.score_batch(b)).collect();

    // Pipelined v2: submit everything, then wait.
    let v2 = NetClient::connect(server.addr()).expect("v2 connect");
    assert_eq!(v2.proto_version(), VERSION);
    let pendings: Vec<_> = batches
        .iter()
        .map(|b| {
            v2.submit_score(
                &ScoreBatch {
                    sessions: b.clone(),
                },
                SubmitOptions::default(),
            )
        })
        .collect();
    let v2_scores: Vec<Vec<Vec<f32>>> = pendings
        .into_iter()
        .map(|p| p.wait().expect("v2 scores").scores)
        .collect();

    // Serial v1: the compatibility client never pipelines.
    let v1 = NetClient::connect_v1(server.addr()).expect("v1 connect");
    assert_eq!(v1.proto_version(), VERSION_V1);
    assert_eq!(v1.in_flight(), 0, "v1 mode is strictly serial");
    for (i, b) in batches.iter().enumerate() {
        let resp = v1
            .score(
                &ScoreBatch {
                    sessions: b.clone(),
                },
                SubmitOptions::default(),
            )
            .expect("v1 scores");
        assert_bitwise(&direct[i], &resp.scores, "v1 vs direct");
        assert_bitwise(&v2_scores[i], &resp.scores, "v1 vs pipelined v2");
    }
    for (i, got) in v2_scores.iter().enumerate() {
        assert_bitwise(&direct[i], got, "pipelined v2 vs direct");
    }
    server.shutdown();
}

#[test]
fn raw_v1_peer_without_hello_gets_v1_framed_responses() {
    let _g = guard();
    let (server, frozen) = start_server(2, 31);
    let batch = vec![sess(3, &[1, 4, 2]), sess(8, &[5])];
    let expected = frozen.score_batch(&batch);

    // A legacy peer: raw TCP, v1 frame headers, no Hello handshake.
    let mut stream = TcpStream::connect(server.addr()).expect("tcp connect");
    let span = trace::root("net_request");
    let payload = wire::encode_score_request(
        &ScoreBatch {
            sessions: batch.clone(),
        },
        SubmitOptions::default(),
        span.ctx(),
    );
    let req = Frame::versioned(VERSION_V1, FrameKind::ScoreRequest, 77, payload);
    frame::write_frame(&mut stream, &req).expect("write v1 frame");
    stream.flush().expect("flush");

    let resp = frame::read_frame(&mut stream).expect("read response frame");
    assert_eq!(resp.version, VERSION_V1, "server echoes the peer's version");
    assert_eq!(resp.kind, FrameKind::ScoreResponse);
    assert_eq!(resp.request_id, 77, "response carries the request id");
    let decoded = wire::decode_score_response(&resp.payload).expect("v1 payload decodes");
    assert_bitwise(&expected, &decoded.scores, "raw v1 peer");
    server.shutdown();
}

#[test]
fn submit_and_blocking_calls_interleave_on_one_connection() {
    let _g = guard();
    let (server, frozen) = start_server(2, 41);
    let sessions = session_pool(8, NUM_ITEMS as u32, 2);

    let batch_a = sessions[..3].to_vec();
    let batch_b = sessions[3..6].to_vec();
    let want_a = frozen.score_batch(&batch_a);
    let want_b = frozen.score_batch(&batch_b);
    let want_k = frozen.score_batch(&batch_a);

    let client = NetClient::connect(server.addr()).expect("connect");

    // A pending score left in flight must not disturb blocking calls on
    // the same connection, in either API shape.
    let pending = client.submit_score(
        &ScoreBatch {
            sessions: batch_a.clone(),
        },
        SubmitOptions::default(),
    );
    let blocking = client
        .score(
            &ScoreBatch { sessions: batch_b },
            SubmitOptions::default(),
        )
        .expect("blocking score amid pending");
    assert_bitwise(&want_b, &blocking.scores, "blocking amid pending");

    let top = client
        .top_k(
            &TopK {
                sessions: batch_a.clone(),
                k: 3,
            },
            SubmitOptions::default(),
        )
        .expect("top-k amid pending");
    assert_eq!(top.items.len(), batch_a.len());
    for (row, items) in want_k.iter().zip(&top.items) {
        let best = items.first().expect("k >= 1");
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(best.score.to_bits(), max.to_bits(), "top-1 matches argmax");
    }

    let resp = pending.wait().expect("pending resolves after later calls");
    assert_bitwise(&want_a, &resp.scores, "pending resolved late");
    server.shutdown();
}
