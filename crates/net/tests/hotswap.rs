//! Zero-downtime snapshot hot-swap over the wire: the protocol-v2 control
//! plane stages a new `EMBSRSNP` snapshot into every replica and flips
//! scoring atomically, without draining in-flight traffic.
//!
//! The invariants under test:
//!
//! * **No drain, no lies** — under continuous load spanning a
//!   `LoadSnapshot` + `Activate`, every response is bitwise-correct for
//!   the version its `model_version` tag claims, with zero failures, and
//!   both versions' tags are observed. The traced run still reconstructs
//!   into one legal span tree per request.
//! * **Rejection stays healthy** — malformed, wrong-layout, and unknown
//!   versions are refused with typed errors while scoring continues on
//!   the active version.
//! * **Status** — the staged/active lifecycle is observable over the wire
//!   for every replica.
//! * **Cache coherence** — a warm session-repr cache never serves reprs
//!   from the pre-swap version.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use common::{guard, sess, session_pool, ToyModel};
use embsr_net::{NetClient, NetError, Server, ServerConfig};
use embsr_obs::trace::{self, SpanRecord};
use embsr_obs::MemorySink;
use embsr_serve::snapshot::encode_snapshot;
use embsr_serve::{EngineConfig, FrozenModel, ScoreBatch, SubmitOptions};
use embsr_sessions::Session;

const NUM_ITEMS: usize = 24;

fn start_server(replicas: usize, seed: u64, repr_cache: usize) -> (Server, FrozenModel<ToyModel>) {
    let frozen = FrozenModel::freeze(ToyModel::new(NUM_ITEMS, seed), 16);
    let server = Server::start(
        &frozen,
        move || ToyModel::new(NUM_ITEMS, seed),
        ServerConfig {
            replicas,
            dispatchers: 2,
            engine: EngineConfig {
                workers: 1,
                max_batch: 16,
                flush_deadline_us: 200,
                repr_cache,
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    (server, frozen)
}

/// Wire-format snapshot bytes for a fresh toy model at `seed`, plus its
/// frozen twin for computing expected scores in-process.
fn snapshot_for(seed: u64) -> (Vec<u8>, FrozenModel<ToyModel>) {
    let frozen = FrozenModel::freeze(ToyModel::new(NUM_ITEMS, seed), 16);
    let bytes = encode_snapshot(frozen.snapshot(), frozen.max_session_len(), frozen.precision());
    (bytes, frozen)
}

fn rows_match(expected: &[Vec<f32>], got: &[Vec<f32>]) -> bool {
    expected.len() == got.len()
        && expected.iter().zip(got).all(|(e, g)| {
            e.len() == g.len() && e.iter().zip(g).all(|(a, b)| a.to_bits() == b.to_bits())
        })
}

fn assert_bitwise(expected: &[Vec<f32>], got: &[Vec<f32>], what: &str) {
    assert!(rows_match(expected, got), "{what}: rows diverge");
}

#[test]
fn hot_swap_under_load_swaps_without_drain_or_wrong_answers() {
    let _g = guard();
    let mem = MemorySink::new();
    embsr_obs::add_sink(Arc::new(mem.clone()));
    trace::set_enabled(true);

    let (server, frozen_a) = start_server(2, 7, 0);
    let (snap_b, frozen_b) = snapshot_for(8);
    let sessions = session_pool(60, NUM_ITEMS as u32, 3);

    // Each client thread's schedule, with the expected rows under BOTH
    // versions precomputed (the frozen models are not Sync; the threads
    // only compare against the version the response tag claims).
    type Round = (Vec<Session>, Vec<Vec<f32>>, Vec<Vec<f32>>);
    let plan: Vec<Vec<Round>> = (0..4usize)
        .map(|t| {
            (0..12usize)
                .map(|round| {
                    let base = (t * 12 + round) * 3 % (sessions.len() - 3);
                    let batch: Vec<Session> = sessions[base..base + 3].to_vec();
                    let want_a = frozen_a.score_batch(&batch);
                    let want_b = frozen_b.score_batch(&batch);
                    (batch, want_a, want_b)
                })
                .collect()
        })
        .collect();
    let wrong = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let saw_v1 = AtomicU64::new(0);
    let saw_v2 = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for rounds in plan.iter() {
            let server = &server;
            let (wrong, failed) = (&wrong, &failed);
            let (saw_v1, saw_v2) = (&saw_v1, &saw_v2);
            scope.spawn(move || {
                let client = NetClient::connect(server.addr()).expect("connect");
                for (batch, want_a, want_b) in rounds {
                    match client.score(
                        &ScoreBatch {
                            sessions: batch.clone(),
                        },
                        SubmitOptions::default(),
                    ) {
                        Ok(resp) => {
                            // Every row must be bitwise-correct for one of
                            // the two versions — never a third value. The
                            // tag is the NEWEST contributing version, so a
                            // mid-swap batch tagged 2 may mix v1 and v2
                            // rows across replicas, but a tag of 1
                            // guarantees the whole batch is pre-swap.
                            match resp.model_version {
                                1 => {
                                    saw_v1.fetch_add(1, Ordering::Relaxed);
                                    if !rows_match(want_a, &resp.scores) {
                                        wrong.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                2 => {
                                    saw_v2.fetch_add(1, Ordering::Relaxed);
                                    let ok = resp.scores.len() == want_a.len()
                                        && resp.scores.iter().enumerate().all(|(i, row)| {
                                            rows_match(
                                                std::slice::from_ref(&want_a[i]),
                                                std::slice::from_ref(row),
                                            ) || rows_match(
                                                std::slice::from_ref(&want_b[i]),
                                                std::slice::from_ref(row),
                                            )
                                        });
                                    if !ok {
                                        wrong.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                v => panic!("unexpected model_version tag {v}"),
                            }
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // The operator swaps mid-flight: stage, then flip. No drain.
        std::thread::sleep(std::time::Duration::from_millis(3));
        let ctl = NetClient::connect(server.addr()).expect("control connect");
        ctl.load_snapshot(2, &snap_b).expect("stage v2");
        ctl.activate(2).expect("activate v2");
    });

    trace::set_enabled(false);
    embsr_obs::clear_sinks();

    let total = 4 * 12;
    assert_eq!(wrong.load(Ordering::Relaxed), 0, "zero wrong answers");
    assert_eq!(failed.load(Ordering::Relaxed), 0, "hot-swap drops nothing");
    assert_eq!(
        saw_v1.load(Ordering::Relaxed) + saw_v2.load(Ordering::Relaxed),
        total,
        "every request answered and tagged"
    );
    assert!(
        saw_v2.load(Ordering::Relaxed) > 0,
        "the new version served some of the load"
    );

    // Post-swap traffic is wholly on version 2.
    let client = NetClient::connect(server.addr()).expect("connect");
    let batch = sessions[..5].to_vec();
    let want = frozen_b.score_batch(&batch);
    let resp = client
        .score(&ScoreBatch { sessions: batch }, SubmitOptions::default())
        .expect("post-swap scores");
    assert_eq!(resp.model_version, 2, "post-swap tag");
    assert_bitwise(&want, &resp.scores, "post-swap batch");
    server.shutdown();

    // The traced run — swap included — still reconstructs into one legal
    // span tree per scoring request, with the server's work nested under
    // the client root via the wire-borne TraceCtx.
    let records: Vec<SpanRecord> = mem
        .lines()
        .iter()
        .filter_map(|l| trace::validate_line(l).expect("schema-legal lines"))
        .collect();
    let trees = trace::build_trees(&records).expect("tree invariants hold across the swap");
    let score_requests = total as usize; // the probe above ran untraced
    let net_roots: Vec<_> = trees
        .iter()
        .filter(|t| t.root().name == "net_request")
        .collect();
    assert_eq!(net_roots.len(), score_requests, "one tree per request");
    let nested = net_roots
        .iter()
        .filter(|t| t.spans.iter().any(|s| s.name == "server_request"))
        .count();
    assert_eq!(nested, score_requests, "server spans join the client trace");
    // The two control exchanges (stage + activate) trace under their own
    // root name, distinct from the data plane.
    let control_roots = trees
        .iter()
        .filter(|t| t.root().name == "net_control")
        .count();
    assert_eq!(control_roots, 2, "one tree per control exchange");
}

#[test]
fn bad_snapshots_are_refused_and_serving_stays_on_the_active_version() {
    let _g = guard();
    let (server, frozen) = start_server(2, 19, 0);
    let client = NetClient::connect(server.addr()).expect("connect");

    // Garbage bytes: not an EMBSRSNP container at all.
    match client.load_snapshot(3, b"definitely not a snapshot") {
        Err(NetError::BadRequest(_)) => {}
        other => panic!("malformed snapshot must be a typed refusal, got {other:?}"),
    }
    // Structurally valid container, wrong weight count for this model.
    let wrong_layout = encode_snapshot(&[0.25f32; 9], 16, frozen.precision());
    match client.load_snapshot(4, &wrong_layout) {
        Err(NetError::BadRequest(_)) => {}
        other => panic!("wrong layout must be a typed refusal, got {other:?}"),
    }
    // Activating a version nobody staged.
    match client.activate(9) {
        Err(NetError::BadRequest(_)) => {}
        other => panic!("unknown version must be a typed refusal, got {other:?}"),
    }

    // None of that touched the data plane.
    let batch = vec![sess(2, &[1, 2, 3]), sess(5, &[4])];
    let want = frozen.score_batch(&batch);
    let resp = client
        .score(&ScoreBatch { sessions: batch }, SubmitOptions::default())
        .expect("serving is unaffected");
    assert_eq!(resp.model_version, 1, "still on the boot version");
    assert_bitwise(&want, &resp.scores, "post-refusal batch");

    let status = client.status().expect("status");
    for (i, r) in status.replicas.iter().enumerate() {
        assert_eq!(r.active_version, 1, "replica {i} active version");
        assert_eq!(r.staged, vec![1], "replica {i} staged set is unpolluted");
    }
    server.shutdown();
}

#[test]
fn status_reports_the_staged_and_active_lifecycle_per_replica() {
    let _g = guard();
    let (server, _frozen) = start_server(3, 23, 0);
    let (snap_b, frozen_b) = snapshot_for(29);
    let client = NetClient::connect(server.addr()).expect("connect");

    let boot = client.status().expect("boot status");
    assert_eq!(boot.replicas.len(), 3, "one status row per replica");
    for r in &boot.replicas {
        assert_eq!(r.active_version, 1);
        assert_eq!(r.staged, vec![1]);
    }

    client.load_snapshot(7, &snap_b).expect("stage");
    let staged = client.status().expect("staged status");
    for r in &staged.replicas {
        assert_eq!(r.active_version, 1, "staging does not flip");
        assert_eq!(r.staged, vec![1, 7], "both versions held");
    }

    client.activate(7).expect("activate");
    let active = client.status().expect("active status");
    for r in &active.replicas {
        assert_eq!(r.active_version, 7, "activation flips every replica");
    }

    // And the flip is real: scores now come from the staged weights.
    let batch = vec![sess(11, &[1, 2]), sess(12, &[3, 4, 5])];
    let want = frozen_b.score_batch(&batch);
    let resp = client
        .score(&ScoreBatch { sessions: batch }, SubmitOptions::default())
        .expect("post-activate scores");
    assert_eq!(resp.model_version, 7);
    assert_bitwise(&want, &resp.scores, "post-activate batch");
    server.shutdown();
}

#[test]
fn warm_repr_cache_never_serves_the_pre_swap_version() {
    let _g = guard();
    let (server, frozen_a) = start_server(1, 37, 64);
    let (snap_b, frozen_b) = snapshot_for(43);
    let client = NetClient::connect(server.addr()).expect("connect");

    let batch = vec![sess(4, &[1, 2, 3]), sess(6, &[2, 3]), sess(9, &[5])];
    let want_a = frozen_a.score_batch(&batch);
    let want_b = frozen_b.score_batch(&batch);

    // Warm the session-repr cache on version 1: same batch twice, both
    // bitwise vs the uncached model, with hits recorded on the repeat.
    for round in 0..2 {
        let resp = client
            .score(
                &ScoreBatch {
                    sessions: batch.clone(),
                },
                SubmitOptions::default(),
            )
            .expect("warm-up scores");
        assert_eq!(resp.model_version, 1);
        assert_bitwise(&want_a, &resp.scores, "cached round");
        let _ = round;
    }
    let warm = client.status().expect("warm status");
    let cache = &warm.replicas[0].cache;
    assert!(cache.insertions >= 1, "cache populated: {cache:?}");
    assert!(cache.hits >= 1, "repeat batch hits: {cache:?}");

    // Swap. The cache is keyed by (session content, model version), so
    // the warm entries must not leak version-1 reprs into version 2.
    client.load_snapshot(2, &snap_b).expect("stage");
    client.activate(2).expect("activate");
    let resp = client
        .score(
            &ScoreBatch {
                sessions: batch.clone(),
            },
            SubmitOptions::default(),
        )
        .expect("post-swap scores");
    assert_eq!(resp.model_version, 2);
    assert_bitwise(&want_b, &resp.scores, "post-swap cached batch");

    // And version 2 warms its own entries.
    let resp = client
        .score(&ScoreBatch { sessions: batch }, SubmitOptions::default())
        .expect("post-swap repeat");
    assert_bitwise(&want_b, &resp.scores, "post-swap repeat");
    let after = client.status().expect("post-swap status");
    assert!(
        after.replicas[0].cache.hits > cache.hits,
        "version-2 entries serve hits: {:?}",
        after.replicas[0].cache
    );
    server.shutdown();
}
