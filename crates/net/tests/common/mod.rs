//! Shared scaffolding for the networked-serving test suites: a minimal
//! deterministic model, session builders, and a thread-count probe for the
//! no-leak assertions.

// Each test binary uses its own subset of these helpers.
#![allow(dead_code)]

use std::sync::{Mutex, MutexGuard};

use embsr_sessions::{MicroBehavior, Session};
use embsr_tensor::{uniform_init, Rng, Tensor};
use embsr_train::SessionModel;

/// Serializes tests that mutate process-global observability state (the
/// trace switch, sinks, the metrics registry).
pub fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Minimal deterministic model: logits are the mean of the weight rows of
/// the session's items (the same shape as the serving engine's own test
/// model, which is crate-private).
pub struct ToyModel {
    weight: Tensor,
    num_items: usize,
}

impl ToyModel {
    pub fn new(num_items: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        ToyModel {
            weight: uniform_init(&[num_items, num_items], &mut rng),
            num_items,
        }
    }
}

impl SessionModel for ToyModel {
    fn name(&self) -> &str {
        "Toy"
    }
    fn num_items(&self) -> usize {
        self.num_items
    }
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone()]
    }
    fn logits(&self, session: &Session, _training: bool, _rng: &mut Rng) -> Tensor {
        let idx: Vec<usize> = session.events.iter().map(|e| e.item as usize).collect();
        self.weight.gather_rows(&idx).mean_rows()
    }
    // The repr seam, trivially: the "representation" is the logits row and
    // the final projection is the identity, which satisfies the bitwise
    // factoring contract and lets the engine-level repr cache engage in
    // networked tests.
    fn repr_infer(&self, session: &Session) -> Option<Tensor> {
        Some(self.logits_infer(session))
    }
    fn logits_of_reprs(&self, reprs: &Tensor) -> Option<Tensor> {
        Some(reprs.clone())
    }
}

pub fn sess(id: u64, items: &[u32]) -> Session {
    Session {
        id,
        events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
    }
}

/// Deterministic pool of short sessions over `num_items` items; ids spread
/// widely so they shard across replicas.
pub fn session_pool(n: usize, num_items: u32, seed: u64) -> Vec<Session> {
    (0..n as u64)
        .map(|i| {
            let id = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
            let len = 1 + (i % 4) as usize;
            let items: Vec<u32> = (0..len)
                .map(|j| ((i * 13 + j as u64 * 7 + seed) % num_items as u64) as u32)
                .collect();
            sess(id, &items)
        })
        .collect()
}

/// Live threads of this process, from `/proc/self/status`. Falls back to 1
/// (harmlessly weakening the leak assertion) off procfs.
pub fn live_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(1)
}
