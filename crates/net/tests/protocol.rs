//! Protocol property tests: seeded round-trip fuzzing of the frame codec.
//!
//! The transport under a real server delivers bytes in arbitrary splits
//! and coalescings, truncates mid-frame on resets, and (from a hostile
//! peer) can contain anything at all. The codec's contract is that every
//! one of those inputs maps to a typed [`FrameError`] or a correct
//! [`Frame`] — never a panic, never a wrong payload.

use std::io::{self, Read};

use embsr_net::frame::{
    encode, read_frame, write_frame, Frame, FrameError, FrameKind, HEADER_LEN, MAGIC, MAX_PAYLOAD,
    VERSION, VERSION_V1,
};

/// Local SplitMix64 so the fuzz schedule is seeded and reproducible.
struct Rand(u64);

impl Rand {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A transport that serves a byte script in caller-chosen chunk sizes —
/// the split/coalesced-read mock.
struct Chunked {
    data: Vec<u8>,
    pos: usize,
    /// Upper bound on bytes served per `read` call; resampled per call
    /// from the seeded rng.
    rng: Rand,
    max_chunk: usize,
}

impl Chunked {
    fn new(data: Vec<u8>, seed: u64, max_chunk: usize) -> Self {
        Chunked {
            data,
            pos: 0,
            rng: Rand(seed),
            max_chunk: max_chunk.max(1),
        }
    }
}

impl Read for Chunked {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let chunk = (self.rng.below(self.max_chunk as u64) + 1) as usize;
        let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A transport that times out immediately, forever.
struct AlwaysTimeout;

impl Read for AlwaysTimeout {
    fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
        Err(io::Error::new(io::ErrorKind::WouldBlock, "poll timeout"))
    }
}

fn kinds() -> [FrameKind; 9] {
    [
        FrameKind::ScoreRequest,
        FrameKind::TopKRequest,
        FrameKind::ScoreResponse,
        FrameKind::TopKResponse,
        FrameKind::ErrorResponse,
        FrameKind::Hello,
        FrameKind::HelloAck,
        FrameKind::Control,
        FrameKind::ControlReply,
    ]
}

fn random_frame(rng: &mut Rand, payload_len: usize) -> Frame {
    let all = kinds();
    let kind = all[rng.below(all.len() as u64) as usize];
    // Both wire versions are live on real links (v1 peers never handshake),
    // so the fuzz schedule exercises both headers.
    let version = if rng.below(2) == 0 { VERSION_V1 } else { VERSION };
    let payload: Vec<u8> = (0..payload_len).map(|_| rng.next() as u8).collect();
    Frame {
        version,
        kind,
        request_id: rng.next(),
        payload,
    }
}

#[test]
fn frames_round_trip_across_split_and_coalesced_reads() {
    let mut rng = Rand(0xDECAF);
    // Sizes cover the boundary cases (0, 1, header-straddling) and a
    // spread of larger payloads.
    let mut sizes = vec![0usize, 1, 2, HEADER_LEN - 1, HEADER_LEN, HEADER_LEN + 1];
    for _ in 0..40 {
        sizes.push(rng.below(64 * 1024) as usize);
    }
    for (i, &len) in sizes.iter().enumerate() {
        let frame = random_frame(&mut rng, len);
        let bytes = encode(&frame).expect("within cap");
        assert_eq!(bytes.len(), HEADER_LEN + len);
        // Byte-at-a-time, tiny chunks, and one-shot coalesced reads must
        // all decode identically.
        for max_chunk in [1usize, 3, 7, 64, bytes.len().max(1)] {
            let mut t = Chunked::new(bytes.clone(), 0x5EED + i as u64, max_chunk);
            let got = read_frame(&mut t).expect("round trip");
            assert_eq!(got, frame, "size {len}, chunk {max_chunk}");
        }
    }
}

#[test]
fn multiple_frames_coalesced_on_one_stream_decode_in_order() {
    let mut rng = Rand(42);
    let frames: Vec<Frame> = (0..12)
        .map(|_| {
            let len = rng.below(512) as usize;
            random_frame(&mut rng, len)
        })
        .collect();
    let mut stream = Vec::new();
    for f in &frames {
        write_frame(&mut stream, f).expect("encode");
    }
    let mut t = Chunked::new(stream, 99, 5);
    for want in &frames {
        let got = read_frame(&mut t).expect("in order");
        assert_eq!(&got, want);
    }
    // Clean EOF on the frame boundary afterwards.
    assert_eq!(read_frame(&mut t), Err(FrameError::Closed));
}

#[test]
fn truncation_at_every_prefix_is_a_typed_error_never_a_panic() {
    let mut rng = Rand(7);
    let frame = random_frame(&mut rng, 100);
    let bytes = encode(&frame).expect("within cap");
    for cut in 0..bytes.len() {
        let mut t = Chunked::new(bytes[..cut].to_vec(), cut as u64, 4);
        let err = read_frame(&mut t).expect_err("truncated input must fail");
        if cut == 0 {
            assert_eq!(err, FrameError::Closed, "empty stream is a clean close");
        } else {
            match err {
                FrameError::Truncated { expected, got } => {
                    assert_eq!(got, cut);
                    assert!(expected == HEADER_LEN || expected == bytes.len());
                }
                other => panic!("cut {cut}: expected Truncated, got {other:?}"),
            }
        }
    }
}

#[test]
fn corrupt_headers_map_to_their_typed_errors() {
    let frame = Frame {
        version: VERSION,
        kind: FrameKind::ScoreRequest,
        request_id: 7,
        payload: b"{}".to_vec(),
    };
    let good = encode(&frame).expect("within cap");

    // Bad magic: every corrupted magic byte position.
    for i in 0..4 {
        let mut bytes = good.clone();
        bytes[i] ^= 0xFF;
        let mut t = Chunked::new(bytes, 1, 8);
        match read_frame(&mut t) {
            Err(FrameError::BadMagic(m)) => assert_ne!(m, MAGIC),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    // Bad version.
    let mut bytes = good.clone();
    bytes[4] = VERSION + 1;
    let mut t = Chunked::new(bytes, 2, 8);
    assert_eq!(read_frame(&mut t), Err(FrameError::BadVersion(VERSION + 1)));

    // Unknown kind.
    let mut bytes = good.clone();
    bytes[5] = 0xEE;
    let mut t = Chunked::new(bytes, 3, 8);
    assert_eq!(read_frame(&mut t), Err(FrameError::BadKind(0xEE)));

    // Oversized declared length: rejected from the header alone, without
    // the test having to materialize a 64 MiB payload.
    let mut bytes = good.clone();
    let huge = (MAX_PAYLOAD + 1).to_le_bytes();
    bytes[14..18].copy_from_slice(&huge);
    let mut t = Chunked::new(bytes, 4, 8);
    assert_eq!(
        read_frame(&mut t),
        Err(FrameError::TooLarge {
            len: (MAX_PAYLOAD + 1) as u64,
            max: MAX_PAYLOAD
        })
    );

    // The pristine bytes still decode (the corruptions above were local).
    let mut t = Chunked::new(good, 5, 8);
    assert_eq!(read_frame(&mut t).expect("pristine"), frame);
}

#[test]
fn oversized_payload_is_refused_at_encode_time() {
    let frame = Frame {
        version: VERSION,
        kind: FrameKind::ScoreRequest,
        request_id: 1,
        // Declared via a zero-filled Vec; 64 MiB + 1 allocates but never
        // crosses a socket.
        payload: vec![0u8; MAX_PAYLOAD as usize + 1],
    };
    assert_eq!(
        encode(&frame),
        Err(FrameError::TooLarge {
            len: MAX_PAYLOAD as u64 + 1,
            max: MAX_PAYLOAD
        })
    );
}

#[test]
fn timeout_before_any_byte_is_idle_not_an_error() {
    let mut t = AlwaysTimeout;
    assert_eq!(read_frame(&mut t), Err(FrameError::Idle));
}

#[test]
fn random_garbage_never_panics_the_decoder() {
    let mut rng = Rand(0xBAD5EED);
    for round in 0..500 {
        let len = rng.below(256) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let mut t = Chunked::new(garbage, round, 16);
        // Any outcome is fine except a panic; decoded frames are possible
        // only if the garbage happened to spell a valid header.
        let _ = read_frame(&mut t);
    }
}

#[test]
fn v1_frames_round_trip_and_keep_their_version() {
    // A v1 peer's frames carry version 1 in the header; the v2 codec must
    // accept them unchanged and report which version it saw (the server
    // echoes it on responses so v1 peers never see a v2 header).
    for kind in kinds() {
        let frame = Frame::versioned(VERSION_V1, kind, 42, b"payload".to_vec());
        let bytes = encode(&frame).expect("within cap");
        assert_eq!(bytes[4], VERSION_V1, "header carries the frame's version");
        let mut t = Chunked::new(bytes, 11, 8);
        let got = read_frame(&mut t).expect("v1 frame accepted");
        assert_eq!(got, frame);
        assert_eq!(got.version, VERSION_V1);
    }
}

#[test]
fn version_bounds_are_enforced_on_both_paths() {
    // Encode refuses versions outside [VERSION_V1, VERSION]...
    let below = Frame::versioned(0, FrameKind::ScoreRequest, 1, Vec::new());
    assert_eq!(encode(&below), Err(FrameError::BadVersion(0)));
    let above = Frame::versioned(VERSION + 1, FrameKind::ScoreRequest, 1, Vec::new());
    assert_eq!(encode(&above), Err(FrameError::BadVersion(VERSION + 1)));
    // ...and decode rejects a zero version byte on the wire.
    let good = encode(&Frame::new(FrameKind::ScoreRequest, 1, Vec::new())).expect("within cap");
    let mut bytes = good;
    bytes[4] = 0;
    let mut t = Chunked::new(bytes, 21, 8);
    assert_eq!(read_frame(&mut t), Err(FrameError::BadVersion(0)));
}

#[test]
fn v1_response_payloads_still_decode_under_the_unified_codec() {
    // A v1 server's score/top-k response JSON has no `model_version` key;
    // the redesigned decoders must accept it and default the tag to 0.
    let v1_scores = br#"{"scores":[[0.5,-1.25],[3.0,0.0]]}"#;
    let resp = embsr_net::wire::decode_score_response(v1_scores).expect("v1 payload");
    assert_eq!(resp.model_version, 0, "missing tag defaults to 0");
    assert_eq!(resp.scores.len(), 2);
    assert_eq!(resp.scores[0][1].to_bits(), (-1.25f32).to_bits());

    let v1_recs = br#"{"items":[[[7,0.5],[3,0.25]]]}"#;
    let recs = embsr_net::wire::decode_top_k_response(v1_recs).expect("v1 payload");
    assert_eq!(recs.model_version, 0);
    assert_eq!(recs.items[0][0].item, 7);

    // And the v2 encoders only *append* the tag — a decoder that ignores
    // unknown keys (as the v1 parser did) keeps working, which the round
    // trip through the tagged form pins structurally.
    let encoded = embsr_net::wire::encode_score_response(&resp);
    let again = embsr_net::wire::decode_score_response(&encoded).expect("tagged payload");
    assert_eq!(again.scores, resp.scores);
}

#[test]
fn request_ids_round_trip_at_the_extremes() {
    for id in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 53] {
        let frame = Frame {
            version: VERSION,
            kind: FrameKind::ErrorResponse,
            request_id: id,
            payload: Vec::new(),
        };
        let bytes = encode(&frame).expect("within cap");
        let mut t = Chunked::new(bytes, id ^ 0xA5, 8);
        assert_eq!(read_frame(&mut t).expect("round trip").request_id, id);
    }
}
