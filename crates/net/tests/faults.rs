//! Fault injection against the networked server: replica death, slow
//! replicas, mid-request shutdown — with tracing enabled, so the failure
//! paths also prove the trace trees still reconstruct.
//!
//! The invariants under test, per failure mode:
//!
//! * **Replica death** — every successful response stays bitwise-correct
//!   (re-routing never mixes up slots or serves stale weights), the error
//!   responses are bounded and typed, and the killed replica's thread is
//!   joined.
//! * **Slow replica** — an injected dispatch latency above the request
//!   deadline produces timely `DeadlineExpired` errors, not hangs.
//! * **Shutdown** — dropping the server mid-traffic yields clean typed
//!   connection errors on the client and leaks no threads.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use common::{guard, live_threads, sess, session_pool, ToyModel};
use embsr_net::{NetClient, NetError, Server, ServerConfig};
use embsr_obs::trace::{self, SpanRecord};
use embsr_obs::{MemorySink, Stopwatch};
use embsr_serve::{EngineConfig, FrozenModel, ScoreBatch, SubmitOptions};
use embsr_sessions::Session;

const NUM_ITEMS: usize = 24;

fn start_server(replicas: usize, seed: u64) -> (Server, FrozenModel<ToyModel>) {
    let frozen = FrozenModel::freeze(ToyModel::new(NUM_ITEMS, seed), 16);
    let server = Server::start(
        &frozen,
        move || ToyModel::new(NUM_ITEMS, seed),
        ServerConfig {
            replicas,
            dispatchers: 2,
            engine: EngineConfig {
                workers: 1,
                max_batch: 16,
                flush_deadline_us: 200,
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    (server, frozen)
}

fn assert_bitwise(expected: &[Vec<f32>], got: &[Vec<f32>], what: &str) {
    assert_eq!(expected.len(), got.len(), "{what}: row count");
    for (e, g) in expected.iter().zip(got) {
        assert_eq!(e.len(), g.len(), "{what}: row width");
        for (a, b) in e.iter().zip(g) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} != {b}");
        }
    }
}

#[test]
fn replica_death_mid_load_reroutes_with_zero_wrong_answers() {
    let _g = guard();
    let mem = MemorySink::new();
    embsr_obs::add_sink(Arc::new(mem.clone()));
    trace::set_enabled(true);

    let (server, frozen) = start_server(3, 7);
    let sessions = session_pool(120, NUM_ITEMS as u32, 3);
    // Expected answers are computed in-process up front (the frozen model
    // is not Sync; the client threads only compare).
    // One client thread's schedule: (request batch, expected score rows).
    type Round = (Vec<Session>, Vec<Vec<f32>>);
    let plan: Vec<Vec<Round>> = (0..4usize)
        .map(|t| {
            (0..10usize)
                .map(|round| {
                    let base = (t * 10 + round) * 3 % (sessions.len() - 3);
                    let batch: Vec<Session> = sessions[base..base + 3].to_vec();
                    let expected = frozen.score_batch(&batch);
                    (batch, expected)
                })
                .collect()
        })
        .collect();
    let wrong = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let oks = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for rounds in plan.iter() {
            let server = &server;
            let wrong = &wrong;
            let errors = &errors;
            let oks = &oks;
            scope.spawn(move || {
                let mut client = NetClient::connect(server.addr()).expect("connect");
                for (batch, expected) in rounds {
                    let batch = batch.clone();
                    match client.score(
                        &ScoreBatch { sessions: batch },
                        SubmitOptions::default(),
                    ) {
                        Ok(resp) => {
                            oks.fetch_add(1, Ordering::Relaxed);
                            for (e, g) in expected.iter().zip(&resp.scores) {
                                for (a, b) in e.iter().zip(g) {
                                    if a.to_bits() != b.to_bits() {
                                        wrong.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        // A request caught mid-kill may fail; it must fail
                        // *typed*, and never with a wrong answer.
                        Err(NetError::Unavailable(_)) | Err(NetError::DeadlineExpired { .. }) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected error class: {other}"),
                    }
                }
            });
        }
        // Kill a replica while the clients above are mid-flight.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(server.kill_replica(1), "replica 1 exists");
    });

    trace::set_enabled(false);
    embsr_obs::clear_sinks();

    assert_eq!(wrong.load(Ordering::Relaxed), 0, "zero wrong answers");
    let errs = errors.load(Ordering::Relaxed);
    let total = 4 * 10;
    assert_eq!(oks.load(Ordering::Relaxed) + errs, total, "every request answered");
    assert!(errs <= total / 2, "errors stay bounded under one replica death: {errs}");

    // Post-kill traffic (now over 2 replicas) still scores bitwise.
    let mut client = NetClient::connect(server.addr()).expect("connect");
    let batch: Vec<Session> = sessions[..5].to_vec();
    let expected = frozen.score_batch(&batch);
    let resp = client
        .score(&ScoreBatch { sessions: batch }, SubmitOptions::default())
        .expect("survivors serve");
    assert_bitwise(&expected, &resp.scores, "post-kill batch");

    let stats = server.stats();
    assert_eq!(stats.bad_requests, 0);
    server.shutdown();

    // The traced run — kill included — must still reconstruct into legal
    // span trees, one per networked request, rooted client-side.
    let records: Vec<SpanRecord> = mem
        .lines()
        .iter()
        .filter_map(|l| trace::validate_line(l).expect("schema-legal lines"))
        .collect();
    let trees = trace::build_trees(&records).expect("tree invariants hold under faults");
    let net_roots = trees
        .iter()
        .filter(|t| t.root().name == "net_request")
        .count();
    assert_eq!(net_roots as u64, total, "one tree per networked request");
    // The server's work nests under the client's root via the wire-borne
    // TraceCtx — the cross-process propagation invariant.
    let nested = trees
        .iter()
        .filter(|t| t.root().name == "net_request")
        .filter(|t| t.spans.iter().any(|s| s.name == "server_request"))
        .count();
    assert_eq!(nested as u64, total, "server spans join the client trace");
}

#[test]
fn slow_replica_yields_deadline_expiry_not_hangs() {
    let _g = guard();
    let (server, _frozen) = start_server(2, 11);

    // Find session ids that deterministically shard to each replica.
    let alive = [true, true];
    let to_replica = |want: usize| -> Session {
        let mut id = 1u64;
        loop {
            if embsr_net::shard::route(id, &alive) == Some(want) {
                return sess(id, &[1, 2, 3]);
            }
            id += 1;
        }
    };

    server.set_replica_delay_us(0, 50_000);
    let deadline = SubmitOptions {
        deadline_us: 5_000,
        shed: true,
    };

    let mut client = NetClient::connect(server.addr()).expect("connect");
    let watch = Stopwatch::start();

    // The slow replica's sessions expire...
    let slow = client.score(
        &ScoreBatch {
            sessions: vec![to_replica(0)],
        },
        deadline,
    );
    match slow {
        Err(NetError::DeadlineExpired { waited_us }) => {
            assert!(waited_us >= 5_000, "expiry reports the real wait");
        }
        other => panic!("slow replica must expire the deadline, got {other:?}"),
    }
    // ...and do so in bounded time (injected delay + slack), not by hanging.
    assert!(
        watch.elapsed_us() < 5_000_000,
        "deadline expiry must be timely"
    );

    // The healthy replica is unaffected.
    let fast = client.score(
        &ScoreBatch {
            sessions: vec![to_replica(1)],
        },
        deadline,
    );
    assert!(fast.is_ok(), "healthy replica still serves: {fast:?}");

    // Clearing the fault heals the slow replica.
    server.set_replica_delay_us(0, 0);
    let healed = client.score(
        &ScoreBatch {
            sessions: vec![to_replica(0)],
        },
        deadline,
    );
    assert!(healed.is_ok(), "healed replica serves again: {healed:?}");

    let stats = server.stats();
    assert!(stats.deadline_expired >= 1, "expiry was accounted");
    server.shutdown();
}

#[test]
fn server_drop_mid_request_is_a_clean_connection_error() {
    let _g = guard();
    let (server, _frozen) = start_server(2, 5);
    let addr = server.addr();

    let mut client = NetClient::connect(addr).expect("connect");
    // Prove the connection works, then tear the server down under it.
    client
        .score(
            &ScoreBatch {
                sessions: vec![sess(9, &[1, 2])],
            },
            SubmitOptions::default(),
        )
        .expect("pre-shutdown request succeeds");

    server.shutdown();

    // The dropped connection surfaces as a typed error — closed, reset, or
    // refused depending on where teardown caught it — never a hang or panic.
    let watch = Stopwatch::start();
    let after = client.score(
        &ScoreBatch {
            sessions: vec![sess(10, &[3])],
        },
        SubmitOptions::default(),
    );
    assert!(after.is_err(), "requests after shutdown must fail");
    assert!(
        watch.elapsed_us() < 10_000_000,
        "failure must be prompt, not a stall"
    );

    // Fresh connections are refused outright.
    assert!(NetClient::connect(addr).is_err(), "listener is gone");
}

#[test]
fn shutdown_joins_every_thread_no_leaks() {
    let _g = guard();
    let before = live_threads();
    for round in 0..3 {
        let (server, frozen) = start_server(3, 13 + round);
        let sessions = session_pool(12, NUM_ITEMS as u32, round);
        let mut client = NetClient::connect(server.addr()).expect("connect");
        let expected = frozen.score_batch(&sessions[..4]);
        let resp = client
            .score(
                &ScoreBatch {
                    sessions: sessions[..4].to_vec(),
                },
                SubmitOptions::default(),
            )
            .expect("serves");
        assert_bitwise(&expected, &resp.scores, "pre-shutdown batch");
        // Mix a kill into odd rounds so the kill path's join is covered too.
        if round % 2 == 1 {
            server.kill_replica(0);
        }
        server.shutdown();
    }
    // Accept/replica/dispatcher/handler threads are all joined by
    // shutdown(); three full server lifecycles must leave the process at
    // its baseline thread count (small slack for the test runtime itself).
    let after = live_threads();
    assert!(
        after <= before + 1,
        "thread leak: {before} before, {after} after three server lifecycles"
    );
}
