//! The networked client: blocking RPC over one connection, with typed
//! errors and overload retry.
//!
//! A [`NetClient`] owns one TCP connection and issues one request at a
//! time (the protocol is strictly request/response per connection; open
//! more clients for concurrency — the load generator does). Every request
//! opens a `net_request` trace root when tracing is active and sends its
//! [`TraceCtx`] inside the payload, so the server's spans (and the
//! engine's beneath them) nest into one reconstructable tree per request.
//!
//! [`NetClient::score_with_retry`] implements the client half of admission
//! control: `Overloaded` responses back off exponentially (capped) and
//! retry; every observed rejection is counted, which the admission tests
//! reconcile exactly against the server's counters.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use embsr_obs::trace;
use embsr_serve::{ScoreBatch, ScoreResponse, SubmitOptions, TopK, TopKResponse};

use crate::frame::{self, Frame, FrameKind};
use crate::wire::{self, NetError};

/// Exponential backoff for overload retry.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try once).
    pub max_retries: u32,
    /// Backoff before the first retry, µs; doubles per retry.
    pub base_backoff_us: u64,
    /// Backoff ceiling, µs.
    pub max_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            base_backoff_us: 500,
            max_backoff_us: 100_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based), µs.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        self.base_backoff_us
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_us)
    }
}

/// One connection to a [`Server`](crate::Server).
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
    overloaded_seen: u64,
    retries: u64,
}

impl NetClient {
    /// Connects to a server (blocking reads; requests have no client-side
    /// timeout — the server's deadline machinery bounds them).
    pub fn connect(addr: SocketAddr) -> Result<NetClient, NetError> {
        let _span = embsr_obs::span("embsr_net", "client_connect");
        let stream = TcpStream::connect(addr)
            .map_err(|e| NetError::Unavailable(format!("connect failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient {
            stream,
            next_id: 1,
            overloaded_seen: 0,
            retries: 0,
        })
    }

    /// `Overloaded` responses observed so far (including retried ones) —
    /// the client side of the admission-accounting reconciliation.
    pub fn overloaded_seen(&self) -> u64 {
        // Reading a plain counter; instrumented callers take it alongside
        // `metrics::` snapshots.
        self.overloaded_seen
    }

    /// Retries performed by [`NetClient::score_with_retry`] so far.
    pub fn retries(&self) -> u64 {
        // Companion counter to `overloaded_seen`; see `metrics::` note there.
        self.retries
    }

    fn rpc(&mut self, kind: FrameKind, payload: Vec<u8>) -> Result<Frame, NetError> {
        let request_id = self.next_id;
        self.next_id += 1;
        let req = Frame {
            kind,
            request_id,
            payload,
        };
        let mut writer = &self.stream;
        frame::write_frame(&mut writer, &req)?;
        let mut reader = &self.stream;
        let resp = frame::read_frame(&mut reader)?;
        if resp.request_id != request_id {
            return Err(NetError::Wire(format!(
                "response for request {} while awaiting {}",
                resp.request_id, request_id
            )));
        }
        if resp.kind == FrameKind::ErrorResponse {
            let err = wire::decode_error(&resp.payload);
            if matches!(err, NetError::Overloaded { .. }) {
                self.overloaded_seen += 1;
            }
            return Err(err);
        }
        Ok(resp)
    }

    /// Scores the full vocabulary for each session of `req` across the
    /// wire. Bitwise-identical to the in-process engine (see the wire
    /// module docs).
    pub fn score(
        &mut self,
        req: &ScoreBatch,
        opts: SubmitOptions,
    ) -> Result<ScoreResponse, NetError> {
        let span = trace::root("net_request");
        let payload = wire::encode_score_request(req, opts, span.ctx());
        let resp = self.rpc(FrameKind::ScoreRequest, payload)?;
        if resp.kind != FrameKind::ScoreResponse {
            return Err(NetError::Wire(format!(
                "expected a score response, got {:?}",
                resp.kind
            )));
        }
        let _decode = trace::child(span.ctx(), "decode_response");
        wire::decode_score_response(&resp.payload)
    }

    /// The `k` best items per session of `req`, across the wire.
    pub fn top_k(&mut self, req: &TopK, opts: SubmitOptions) -> Result<TopKResponse, NetError> {
        let span = trace::root("net_request");
        let payload = wire::encode_top_k_request(req, opts, span.ctx());
        let resp = self.rpc(FrameKind::TopKRequest, payload)?;
        if resp.kind != FrameKind::TopKResponse {
            return Err(NetError::Wire(format!(
                "expected a top-k response, got {:?}",
                resp.kind
            )));
        }
        let _decode = trace::child(span.ctx(), "decode_response");
        wire::decode_top_k_response(&resp.payload)
    }

    /// [`NetClient::score`] with overload retry: `Overloaded` responses
    /// back off per `policy` and try again; every other outcome returns
    /// immediately. Returns the response and the retries it took.
    pub fn score_with_retry(
        &mut self,
        req: &ScoreBatch,
        opts: SubmitOptions,
        policy: &RetryPolicy,
    ) -> Result<(ScoreResponse, u32), NetError> {
        let _span = embsr_obs::span("embsr_net", "score_with_retry");
        let mut attempt = 0u32;
        loop {
            match self.score(req, opts) {
                Ok(resp) => return Ok((resp, attempt)),
                Err(NetError::Overloaded { queued, cap }) => {
                    if attempt >= policy.max_retries {
                        return Err(NetError::Overloaded { queued, cap });
                    }
                    attempt += 1;
                    self.retries += 1;
                    std::thread::sleep(Duration::from_micros(policy.backoff_us(attempt)));
                }
                Err(e) => return Err(e),
            }
        }
    }
}
