//! The networked client: pipelined RPC over one multiplexed connection,
//! with typed errors, overload retry, and a v1 fallback for old peers.
//!
//! A [`NetClient`] owns one TCP connection. Under protocol v2 the
//! connection is **multiplexed**: [`NetClient::submit_score`] /
//! [`NetClient::submit_top_k`] write a request frame and return a
//! [`Pending`] handle immediately, a dedicated reader thread demultiplexes
//! response frames by request id, and any number of requests ride the
//! connection concurrently ([`NetClient::in_flight`] reports how many).
//! The blocking [`NetClient::score`] / [`NetClient::top_k`] wrappers are
//! `submit(..).wait()`, so existing call sites compile unchanged.
//!
//! [`NetClient::connect`] opens with a `Hello` handshake announcing the
//! highest protocol version the client speaks. Peers that predate v2
//! reject the handshake (bad version or kind) and close the connection;
//! the client then reconnects and falls back to the serial
//! request/response v1 protocol on a fresh socket — same API, one request
//! at a time, no control plane. [`NetClient::connect_v1`] pins that mode
//! explicitly (the protocol-compat tests use it).
//!
//! Protocol v2 also carries the snapshot control plane:
//! [`NetClient::load_snapshot`] stages an `EMBSRSNP` blob under a version,
//! [`NetClient::activate`] flips scoring to it with zero downtime, and
//! [`NetClient::status`] reports per-replica active/staged versions and
//! session-repr cache counters.
//!
//! Every request opens a `net_request` trace root when tracing is active
//! and sends its [`TraceCtx`](embsr_obs::TraceCtx) inside the payload, so
//! the server's spans (and the engine's beneath them) nest into one
//! reconstructable tree per request. The root span lives inside the
//! [`Pending`] and closes at `wait`, covering the full in-flight window.
//!
//! [`NetClient::score_with_retry`] implements the client half of admission
//! control: `Overloaded` responses back off exponentially (capped) and
//! retry; every observed rejection is counted, which the admission tests
//! reconcile exactly against the server's counters.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use embsr_obs::trace::{self, TraceSpan};
use embsr_serve::{ScoreBatch, ScoreResponse, SubmitOptions, TopK, TopKResponse};

use crate::frame::{self, Frame, FrameError, FrameKind, VERSION, VERSION_V1};
use crate::wire::{self, ControlReply, ControlRequest, NetError, Request, Response, ServerStatus};

/// How long the client waits for the `HelloAck` before concluding the peer
/// does not speak protocol v2.
const HELLO_TIMEOUT: Duration = Duration::from_secs(5);

/// Exponential backoff for overload retry.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try once).
    pub max_retries: u32,
    /// Backoff before the first retry, µs; doubles per retry.
    pub base_backoff_us: u64,
    /// Backoff ceiling, µs.
    pub max_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            base_backoff_us: 500,
            max_backoff_us: 100_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based), µs.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        self.base_backoff_us
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_us)
    }
}

/// State shared between caller threads and the reader thread.
struct Shared {
    /// Read side (and shutdown handle); only the reader thread — or, in v1
    /// mode, the caller holding `write` — reads from it.
    stream: TcpStream,
    /// Write side: frame writes are serialized so pipelined requests never
    /// interleave mid-frame. In v1 mode the guard covers the whole
    /// write+read exchange.
    write: Mutex<TcpStream>,
    /// In-flight requests awaiting their response frame, by request id.
    pending: Mutex<HashMap<u64, mpsc::Sender<Result<Frame, NetError>>>>,
    /// Set once when the connection dies; later submits fail fast with it.
    dead: Mutex<Option<NetError>>,
    next_id: AtomicU64,
    overloaded_seen: AtomicU64,
    retries: AtomicU64,
    /// Negotiated protocol version: [`VERSION`] normally, [`VERSION_V1`]
    /// when the peer predates the `Hello` handshake.
    proto_version: u8,
}

/// Poison-tolerant lock: client state stays usable if a caller thread
/// panicked mid-section (the data is a plain map/socket either way).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // lock: poisoning only marks a peer thread's panic; the protected
    // state is still structurally sound, so recover the guard.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Counts `Overloaded` into the connection's stats as errors funnel back
/// to callers, so retry accounting reconciles against the server exactly.
fn note_overload(shared: &Shared, err: NetError) -> NetError {
    if matches!(err, NetError::Overloaded { .. }) {
        // ordering: Relaxed — plain statistics counter, no synchronization.
        shared.overloaded_seen.fetch_add(1, Ordering::Relaxed);
    }
    err
}

/// Dooms every in-flight request with `err` and marks the connection dead.
fn fail_all(shared: &Shared, err: NetError) {
    *lock(&shared.dead) = Some(err.clone());
    // det: drain order is irrelevant — every waiter receives the same
    // terminal error regardless of the map's iteration order.
    for (_, tx) in lock(&shared.pending).drain() {
        let _ = tx.send(Err(err.clone()));
    }
}

/// The reader half of the multiplexed connection: routes each response
/// frame to the submitter that registered its request id.
fn reader_loop(shared: &Shared) {
    let mut stream = &shared.stream;
    loop {
        match frame::read_frame(&mut stream) {
            Ok(resp) => {
                if resp.request_id == 0 {
                    // Request ids start at 1; the server reserves id 0 for
                    // connection-level failures that doom everything in
                    // flight (it closes the connection right after).
                    let err = if resp.kind == FrameKind::ErrorResponse {
                        wire::decode_error(&resp.payload)
                    } else {
                        NetError::Wire(format!("unsolicited {:?} frame", resp.kind))
                    };
                    fail_all(shared, err);
                    return;
                }
                if let Some(tx) = lock(&shared.pending).remove(&resp.request_id) {
                    // A receiver gone away means its Pending was dropped
                    // unwaited; the response is simply discarded.
                    let _ = tx.send(Ok(resp));
                }
            }
            Err(e) => {
                fail_all(shared, NetError::Frame(e));
                return;
            }
        }
    }
}

enum PendingState<T> {
    Ready(Box<Result<T, NetError>>),
    Waiting {
        rx: mpsc::Receiver<Result<Frame, NetError>>,
        decode: Box<dyn FnOnce(Frame) -> Result<T, NetError> + Send>,
        shared: Arc<Shared>,
        /// Keeps the `net_request` root open until `wait`, so the trace
        /// covers the full in-flight window.
        span: TraceSpan,
    },
}

/// A submitted request whose response may still be in flight.
///
/// Returned by [`NetClient::submit_score`] / [`NetClient::submit_top_k`];
/// [`Pending::wait`] blocks for the response (or fails with the error that
/// killed the connection). Dropping a `Pending` abandons the request — the
/// response frame is discarded when it arrives.
pub struct Pending<T> {
    state: PendingState<T>,
}

impl<T> Pending<T> {
    fn ready(result: Result<T, NetError>) -> Pending<T> {
        Pending {
            state: PendingState::Ready(Box::new(result)),
        }
    }

    /// Blocks until the response arrives and decodes it.
    pub fn wait(self) -> Result<T, NetError> {
        match self.state {
            PendingState::Ready(result) => *result,
            PendingState::Waiting {
                rx,
                decode,
                shared,
                span,
            } => {
                let frame = match rx.recv() {
                    Ok(Ok(frame)) => frame,
                    Ok(Err(e)) => return Err(note_overload(&shared, e)),
                    // The reader thread died without delivering anything:
                    // surface the recorded cause of death.
                    Err(_) => {
                        return Err(lock(&shared.dead)
                            .clone()
                            .unwrap_or(NetError::Frame(FrameError::Closed)))
                    }
                };
                if frame.kind == FrameKind::ErrorResponse {
                    return Err(note_overload(&shared, wire::decode_error(&frame.payload)));
                }
                let _decode = trace::child(span.ctx(), "decode_response");
                decode(frame)
            }
        }
    }
}

/// One connection to a [`Server`](crate::Server).
pub struct NetClient {
    shared: Arc<Shared>,
    reader: Option<JoinHandle<()>>,
}

fn tcp_connect(addr: SocketAddr) -> Result<TcpStream, NetError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| NetError::Unavailable(format!("connect failed: {e}")))?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

/// Sends the `Hello` and returns the version the peer pinned.
fn hello(stream: &TcpStream) -> Result<u8, NetError> {
    let (kind, payload) = wire::encode_request(&Request::Hello {
        max_version: VERSION,
    });
    let mut writer = stream;
    frame::write_frame(&mut writer, &Frame::new(kind, 0, payload))?;
    // Bound the wait: a v1 peer may close instead of answering, but a hung
    // one must not wedge connect forever.
    let _ = stream.set_read_timeout(Some(HELLO_TIMEOUT));
    let mut reader = stream;
    let resp = frame::read_frame(&mut reader);
    let _ = stream.set_read_timeout(None);
    let resp = resp?;
    match wire::decode_response_frame(resp.kind, &resp.payload)? {
        Response::HelloAck { version } => Ok(version),
        Response::Error(err) => Err(err),
        other => Err(NetError::Wire(format!(
            "expected a hello ack, got {other:?}"
        ))),
    }
}

impl NetClient {
    /// Connects to a server and negotiates the protocol: a `Hello`
    /// announcing [`VERSION`] opens the connection; peers that answer with
    /// a `HelloAck` get the multiplexed v2 path, peers that reject it (old
    /// servers close the connection on the unknown version) get a fresh
    /// reconnect in serial v1 mode. Blocking reads; requests have no
    /// client-side timeout — the server's deadline machinery bounds them.
    pub fn connect(addr: SocketAddr) -> Result<NetClient, NetError> {
        let _span = embsr_obs::span("embsr_net", "client_connect");
        let stream = tcp_connect(addr)?;
        match hello(&stream) {
            Ok(version) if version >= 2 => NetClient::multiplexed(stream, version),
            // The peer predates protocol v2 (it errored, closed, or pinned
            // version 1): reconnect clean and speak serial v1.
            Ok(_) | Err(_) => {
                drop(stream);
                NetClient::connect_v1(addr)
            }
        }
    }

    /// Connects pinned to protocol v1: serial request/response, no
    /// handshake frame ever sent. What [`NetClient::connect`] falls back
    /// to; exposed so the compatibility tests (and old-style load tools)
    /// can exercise the v1 path against a current server deliberately.
    pub fn connect_v1(addr: SocketAddr) -> Result<NetClient, NetError> {
        let _span = embsr_obs::span("embsr_net", "client_connect_v1");
        let stream = tcp_connect(addr)?;
        let write = stream
            .try_clone()
            .map_err(|e| NetError::Unavailable(format!("socket clone failed: {e}")))?;
        Ok(NetClient {
            shared: Arc::new(Shared {
                stream,
                write: Mutex::new(write),
                pending: Mutex::new(HashMap::new()),
                dead: Mutex::new(None),
                next_id: AtomicU64::new(1),
                overloaded_seen: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                proto_version: VERSION_V1,
            }),
            reader: None,
        })
    }

    fn multiplexed(stream: TcpStream, version: u8) -> Result<NetClient, NetError> {
        let write = stream
            .try_clone()
            .map_err(|e| NetError::Unavailable(format!("socket clone failed: {e}")))?;
        let shared = Arc::new(Shared {
            stream,
            write: Mutex::new(write),
            pending: Mutex::new(HashMap::new()),
            dead: Mutex::new(None),
            next_id: AtomicU64::new(1),
            overloaded_seen: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            proto_version: version,
        });
        let for_reader = Arc::clone(&shared);
        let reader = thread::Builder::new()
            .name("embsr-net-client-reader".into())
            .spawn(move || reader_loop(&for_reader))
            .map_err(|e| NetError::Unavailable(format!("reader spawn failed: {e}")))?;
        Ok(NetClient {
            shared,
            reader: Some(reader),
        })
    }

    /// The protocol version this connection negotiated ([`VERSION`] or
    /// [`VERSION_V1`]).
    pub fn proto_version(&self) -> u8 {
        // Fixed at connect; instrumented callers snapshot it alongside
        // `metrics::` counters.
        self.shared.proto_version
    }

    /// Requests currently awaiting a response on this connection. Always 0
    /// in v1 mode (submits there complete eagerly).
    pub fn in_flight(&self) -> usize {
        // Reading a plain map size; instrumented callers take it alongside
        // `metrics::` snapshots.
        lock(&self.shared.pending).len()
    }

    /// `Overloaded` responses observed so far (including retried ones) —
    /// the client side of the admission-accounting reconciliation.
    pub fn overloaded_seen(&self) -> u64 {
        // Reading a plain counter; instrumented callers take it alongside
        // `metrics::` snapshots.
        // ordering: Relaxed — statistics counter, no synchronization.
        self.shared.overloaded_seen.load(Ordering::Relaxed)
    }

    /// Retries performed by [`NetClient::score_with_retry`] so far.
    pub fn retries(&self) -> u64 {
        // Companion counter to `overloaded_seen`; see `metrics::` note there.
        // ordering: Relaxed — statistics counter, no synchronization.
        self.shared.retries.load(Ordering::Relaxed)
    }

    /// The submit half of the pipelined path: registers the request id,
    /// writes the frame, and hands back a [`Pending`]. In v1 mode the
    /// whole exchange runs eagerly (serialized on the write lock) and the
    /// `Pending` comes back already resolved.
    fn submit<T, F>(&self, kind: FrameKind, payload: Vec<u8>, span: TraceSpan, decode: F) -> Pending<T>
    where
        F: FnOnce(Frame) -> Result<T, NetError> + Send + 'static,
    {
        if self.shared.proto_version < 2 {
            let result = self.rpc_v1(kind, payload).and_then(|frame| {
                if frame.kind == FrameKind::ErrorResponse {
                    return Err(note_overload(
                        &self.shared,
                        wire::decode_error(&frame.payload),
                    ));
                }
                let _decode = trace::child(span.ctx(), "decode_response");
                decode(frame)
            });
            return Pending::ready(result);
        }
        if let Some(err) = lock(&self.shared.dead).clone() {
            return Pending::ready(Err(err));
        }
        // ordering: Relaxed — ids only need uniqueness, not ordering.
        let request_id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        lock(&self.shared.pending).insert(request_id, tx);
        let frame = Frame::new(kind, request_id, payload);
        {
            let mut writer = lock(&self.shared.write);
            if let Err(e) = frame::write_frame(&mut *writer, &frame) {
                lock(&self.shared.pending).remove(&request_id);
                return Pending::ready(Err(NetError::Frame(e)));
            }
        }
        Pending {
            state: PendingState::Waiting {
                rx,
                decode: Box::new(decode),
                shared: Arc::clone(&self.shared),
                span,
            },
        }
    }

    /// One serial v1 exchange: the write lock covers write + read, so
    /// concurrent callers take turns on the connection.
    fn rpc_v1(&self, kind: FrameKind, payload: Vec<u8>) -> Result<Frame, NetError> {
        let mut writer = lock(&self.shared.write);
        // ordering: Relaxed — ids only need uniqueness, not ordering.
        let request_id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let req = Frame::versioned(VERSION_V1, kind, request_id, payload);
        frame::write_frame(&mut *writer, &req)?;
        let mut reader = &self.shared.stream;
        let resp = frame::read_frame(&mut reader)?;
        if resp.request_id != request_id {
            return Err(NetError::Wire(format!(
                "response for request {} while awaiting {}",
                resp.request_id, request_id
            )));
        }
        Ok(resp)
    }

    /// Submits a full-vocabulary scoring request and returns immediately;
    /// [`Pending::wait`] blocks for the rows. Any number of submits may be
    /// in flight on the one connection.
    pub fn submit_score(&self, req: &ScoreBatch, opts: SubmitOptions) -> Pending<ScoreResponse> {
        let span = trace::root("net_request");
        let payload = wire::encode_score_request(req, opts, span.ctx());
        self.submit(FrameKind::ScoreRequest, payload, span, |frame| {
            if frame.kind != FrameKind::ScoreResponse {
                return Err(NetError::Wire(format!(
                    "expected a score response, got {:?}",
                    frame.kind
                )));
            }
            wire::decode_score_response(&frame.payload)
        })
    }

    /// Submits a top-`k` request and returns immediately; see
    /// [`NetClient::submit_score`].
    pub fn submit_top_k(&self, req: &TopK, opts: SubmitOptions) -> Pending<TopKResponse> {
        let span = trace::root("net_request");
        let payload = wire::encode_top_k_request(req, opts, span.ctx());
        self.submit(FrameKind::TopKRequest, payload, span, |frame| {
            if frame.kind != FrameKind::TopKResponse {
                return Err(NetError::Wire(format!(
                    "expected a top-k response, got {:?}",
                    frame.kind
                )));
            }
            wire::decode_top_k_response(&frame.payload)
        })
    }

    /// Scores the full vocabulary for each session of `req` across the
    /// wire, blocking. Bitwise-identical to the in-process engine (see the
    /// wire module docs). Equivalent to `submit_score(..).wait()`.
    pub fn score(
        &self,
        req: &ScoreBatch,
        opts: SubmitOptions,
    ) -> Result<ScoreResponse, NetError> {
        // Trace root lives inside the Pending (`trace::` covers the full
        // in-flight window even for this eager wrapper).
        self.submit_score(req, opts).wait()
    }

    /// The `k` best items per session of `req`, across the wire, blocking.
    pub fn top_k(&self, req: &TopK, opts: SubmitOptions) -> Result<TopKResponse, NetError> {
        // Trace root lives inside the Pending; see `trace::` note on `score`.
        self.submit_top_k(req, opts).wait()
    }

    /// One control-plane exchange (protocol v2 only — v1 peers have no
    /// control plane and fail fast with `Unavailable`).
    fn control(&self, cmd: ControlRequest) -> Result<ControlReply, NetError> {
        if self.shared.proto_version < 2 {
            return Err(NetError::Unavailable(
                "protocol v1 peer has no control plane".into(),
            ));
        }
        // Control exchanges carry no wire-borne TraceCtx (the server's
        // work is operator-plane, not per-request), so they trace under
        // their own root name and never claim a nested `server_request`.
        let span = trace::root("net_control");
        let (kind, payload) = wire::encode_request(&Request::Control(cmd));
        self.submit(kind, payload, span, |frame| {
            match wire::decode_response_frame(frame.kind, &frame.payload)? {
                Response::Control(reply) => Ok(reply),
                other => Err(NetError::Wire(format!(
                    "expected a control reply, got {other:?}"
                ))),
            }
        })
        .wait()
    }

    /// Stages serialized `EMBSRSNP` snapshot bytes under `version` in
    /// every replica without touching live scoring; flip to it with
    /// [`NetClient::activate`].
    pub fn load_snapshot(&self, version: u64, snapshot: &[u8]) -> Result<(), NetError> {
        let _span = embsr_obs::span("embsr_net", "client_load_snapshot");
        match self.control(ControlRequest::LoadSnapshot {
            version,
            snapshot: snapshot.to_vec(),
        })? {
            ControlReply::Done { .. } => Ok(()),
            other => Err(NetError::Wire(format!(
                "unexpected control reply {other:?}"
            ))),
        }
    }

    /// Atomically flips scoring to a previously staged snapshot version,
    /// with zero downtime: in-flight requests finish under the version
    /// that scored them, and every response is tagged with it.
    pub fn activate(&self, version: u64) -> Result<(), NetError> {
        let _span = embsr_obs::span("embsr_net", "client_activate");
        match self.control(ControlRequest::Activate { version })? {
            ControlReply::Done { .. } => Ok(()),
            other => Err(NetError::Wire(format!(
                "unexpected control reply {other:?}"
            ))),
        }
    }

    /// Per-replica serving state: active/staged snapshot versions and
    /// session-repr cache counters.
    pub fn status(&self) -> Result<ServerStatus, NetError> {
        let _span = embsr_obs::span("embsr_net", "client_status");
        match self.control(ControlRequest::Status)? {
            ControlReply::Status(status) => Ok(status),
            other => Err(NetError::Wire(format!(
                "unexpected control reply {other:?}"
            ))),
        }
    }

    /// [`NetClient::score`] with overload retry: `Overloaded` responses
    /// back off per `policy` and try again; every other outcome returns
    /// immediately. Returns the response and the retries it took.
    pub fn score_with_retry(
        &self,
        req: &ScoreBatch,
        opts: SubmitOptions,
        policy: &RetryPolicy,
    ) -> Result<(ScoreResponse, u32), NetError> {
        let _span = embsr_obs::span("embsr_net", "score_with_retry");
        let mut attempt = 0u32;
        loop {
            match self.score(req, opts) {
                Ok(resp) => return Ok((resp, attempt)),
                Err(NetError::Overloaded { queued, cap }) => {
                    if attempt >= policy.max_retries {
                        return Err(NetError::Overloaded { queued, cap });
                    }
                    attempt += 1;
                    // ordering: Relaxed — statistics counter, no synchronization.
                    self.shared.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(policy.backoff_us(attempt)));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        // Shut the socket down so the reader thread unblocks, then join it
        // (it fails any still-pending requests on the way out).
        let _ = self.shared.stream.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}
