//! # embsr-net
//!
//! Networked serving for the micro-behavior scoring path: a
//! dependency-free TCP protocol carrying the `embsr-serve`
//! [`ScoreBatch`](embsr_serve::ScoreBatch)/[`TopK`](embsr_serve::TopK) API
//! across process boundaries, behind replica sharding, admission control
//! and deadline propagation.
//!
//! Layers, bottom up:
//!
//! * [`frame`] — length-prefixed binary framing (magic, version, kind,
//!   request id, payload length). Every malformed byte sequence maps to a
//!   typed [`FrameError`], never a panic; split/coalesced/truncated reads
//!   are part of the tested contract.
//! * [`wire`] — JSON payload codec over `embsr_obs`'s in-tree `JsonValue`.
//!   Scores cross the wire **bitwise** (`f32` → exact `f64` → shortest
//!   round-trip decimal → back); requests carry the serving
//!   [`SubmitOptions`](embsr_serve::SubmitOptions) (deadline budget + shed
//!   flag) and the [`TraceCtx`](embsr_obs::TraceCtx) wire form, so both
//!   admission control and request traces span client → server → engine.
//! * [`shard`] — rendezvous (highest-random-weight) hashing of session
//!   keys over the alive replica set: deterministic, balanced, and
//!   minimal-movement under replica death.
//! * [`Server`] — accept loop → multiplexed per-connection handlers
//!   (reader + request-worker pool; out-of-order completion by request id)
//!   → router → per-replica bounded queues → dispatcher threads →
//!   [`serve`] (embsr_serve::serve) engines, one frozen replica each.
//!   Ships the protocol-v2 control plane (zero-downtime snapshot
//!   staging/activation + status), fault injection
//!   ([`Server::kill_replica`], [`Server::set_replica_delay_us`]) and
//!   exact request accounting ([`Server::stats`]).
//! * [`NetClient`] — pipelined client: [`NetClient::submit_score`]
//!   returns a [`Pending`] immediately and a reader thread demultiplexes
//!   responses, so one connection carries many requests in flight;
//!   blocking wrappers ([`NetClient::score`], [`NetClient::top_k`],
//!   [`NetClient::score_with_retry`] with exponential overload backoff)
//!   keep the old call shape. Version-negotiated: v1 peers fall back to
//!   the serial protocol transparently.
//!
//! The crate's correctness story is its test battery: protocol property
//! tests (`tests/protocol.rs`), fault injection (`tests/faults.rs`),
//! admission accounting (`tests/admission.rs`), multiplexing and
//! compatibility (`tests/multiplex.rs`), hot-swap under load
//! (`tests/hotswap.rs`), and the workspace-level
//! `tests/net_equivalence.rs`, which pins networked scores to the
//! in-process engine at `f32::to_bits` equality across multiple replicas.

pub mod frame;
pub mod shard;
pub mod wire;

mod client;
mod server;

pub use client::{NetClient, Pending, RetryPolicy};
pub use frame::{Frame, FrameError, FrameKind, VERSION, VERSION_V1};
pub use server::{
    Server, ServerConfig, ServerStats, METRIC_NET_CONTROL, METRIC_NET_DEADLINE_EXPIRED,
    METRIC_NET_LATENCY_US, METRIC_NET_REJECTED, METRIC_NET_REQUESTS, METRIC_NET_REROUTED,
};
pub use wire::{ControlReply, ControlRequest, NetError, Request, Response, ServerStatus};
