//! # embsr-net
//!
//! Networked serving for the micro-behavior scoring path: a
//! dependency-free TCP protocol carrying the `embsr-serve`
//! [`ScoreBatch`](embsr_serve::ScoreBatch)/[`TopK`](embsr_serve::TopK) API
//! across process boundaries, behind replica sharding, admission control
//! and deadline propagation.
//!
//! Layers, bottom up:
//!
//! * [`frame`] — length-prefixed binary framing (magic, version, kind,
//!   request id, payload length). Every malformed byte sequence maps to a
//!   typed [`FrameError`], never a panic; split/coalesced/truncated reads
//!   are part of the tested contract.
//! * [`wire`] — JSON payload codec over `embsr_obs`'s in-tree `JsonValue`.
//!   Scores cross the wire **bitwise** (`f32` → exact `f64` → shortest
//!   round-trip decimal → back); requests carry the serving
//!   [`SubmitOptions`](embsr_serve::SubmitOptions) (deadline budget + shed
//!   flag) and the [`TraceCtx`](embsr_obs::TraceCtx) wire form, so both
//!   admission control and request traces span client → server → engine.
//! * [`shard`] — rendezvous (highest-random-weight) hashing of session
//!   keys over the alive replica set: deterministic, balanced, and
//!   minimal-movement under replica death.
//! * [`Server`] — accept loop → per-connection handlers → router →
//!   per-replica bounded queues → dispatcher threads → [`serve`]
//!   (embsr_serve::serve) engines, one frozen replica each. Ships fault
//!   injection ([`Server::kill_replica`], [`Server::set_replica_delay_us`])
//!   and exact request accounting ([`Server::stats`]).
//! * [`NetClient`] — blocking request/response client with typed errors
//!   and exponential overload backoff ([`NetClient::score_with_retry`]).
//!
//! The crate's correctness story is its test battery: protocol property
//! tests (`tests/protocol.rs`), fault injection (`tests/faults.rs`),
//! admission accounting (`tests/admission.rs`), and the workspace-level
//! `tests/net_equivalence.rs`, which pins networked scores to the
//! in-process engine at `f32::to_bits` equality across multiple replicas.

pub mod frame;
pub mod shard;
pub mod wire;

mod client;
mod server;

pub use client::{NetClient, RetryPolicy};
pub use frame::{Frame, FrameError, FrameKind};
pub use server::{
    Server, ServerConfig, ServerStats, METRIC_NET_DEADLINE_EXPIRED, METRIC_NET_LATENCY_US,
    METRIC_NET_REJECTED, METRIC_NET_REQUESTS, METRIC_NET_REROUTED,
};
pub use wire::NetError;
