//! JSON payload codec for the request/response types, plus the typed
//! [`NetError`] every failure on the networked path collapses into.
//!
//! Payloads ride inside frames (see [`frame`](crate::frame)) as UTF-8 JSON
//! built on `embsr_obs`'s in-tree [`JsonValue`]. Scores survive the trip
//! **bitwise**: an `f32` widens exactly to `f64`, the JSON writer prints
//! the shortest string that round-trips the `f64`, and narrowing the
//! parsed `f64` back to `f32` recovers the original bits — the networked
//! equivalence suite pins this at `f32::to_bits` granularity.
//!
//! Request payloads carry three envelopes next to the sessions: the
//! serving [`SubmitOptions`] (deadline budget in µs + shed flag, so
//! admission control and deadline expiry propagate end to end), the
//! [`TraceCtx`] wire form (so PR 6 trace trees cross the boundary), and
//! for top-k the cutoff `k`. Session and trace ids stay below 2^53, the
//! lossless range of the `f64`-backed JSON numbers.

use embsr_obs::{JsonValue, TraceCtx};
use embsr_sessions::{MicroBehavior, Session};
use embsr_serve::{
    CacheStats, EngineStatus, ScoreBatch, ScoreResponse, ScoredItem, ServeError, SubmitOptions,
    TopK, TopKResponse,
};

use crate::frame::{FrameError, FrameKind, VERSION};

/// Every way a networked request can fail, client-visible. `Overloaded`
/// and `DeadlineExpired` mirror the engine's [`ServeError`] — load
/// conditions callers back off on; the rest are protocol or transport
/// faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// Framing-layer failure (bad magic, truncation, transport I/O, ...).
    Frame(FrameError),
    /// The peer's payload did not decode against the documented schema.
    Wire(String),
    /// Admission control rejected the request; retry after backoff.
    Overloaded { queued: usize, cap: usize },
    /// The request outlived its deadline budget in a queue.
    DeadlineExpired { waited_us: u64 },
    /// No replica could answer (replica death, server shutdown).
    Unavailable(String),
    /// The server could not interpret the request.
    BadRequest(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Frame(e) => write!(f, "frame: {e}"),
            NetError::Wire(msg) => write!(f, "wire: {msg}"),
            NetError::Overloaded { queued, cap } => {
                write!(f, "overloaded: {queued} queued against cap {cap}")
            }
            NetError::DeadlineExpired { waited_us } => {
                write!(f, "deadline expired after {waited_us}us")
            }
            NetError::Unavailable(msg) => write!(f, "unavailable: {msg}"),
            NetError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<ServeError> for NetError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Overloaded { queued, cap } => NetError::Overloaded { queued, cap },
            ServeError::DeadlineExpired { waited_us } => NetError::DeadlineExpired { waited_us },
        }
    }
}

// ---------------------------------------------------------------------------
// Shared JSON helpers
// ---------------------------------------------------------------------------

fn sessions_to_json(sessions: &[Session]) -> JsonValue {
    JsonValue::Array(
        sessions
            .iter()
            .map(|s| {
                JsonValue::object(vec![
                    ("id", s.id.into()),
                    (
                        "events",
                        JsonValue::Array(
                            s.events
                                .iter()
                                .map(|e| {
                                    JsonValue::Array(vec![
                                        (e.item as u64).into(),
                                        (e.op as u64).into(),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

fn field<'v>(v: &'v JsonValue, key: &str) -> Result<&'v JsonValue, NetError> {
    v.get(key)
        .ok_or_else(|| NetError::Wire(format!("missing field `{key}`")))
}

fn non_negative_int(v: &JsonValue, what: &str) -> Result<u64, NetError> {
    let raw = v
        .as_f64()
        .ok_or_else(|| NetError::Wire(format!("`{what}` is not a number")))?;
    if raw.is_finite() && raw >= 0.0 && raw.fract() == 0.0 {
        Ok(raw as u64)
    } else {
        Err(NetError::Wire(format!(
            "`{what}` is not a non-negative integer: {raw}"
        )))
    }
}

fn sessions_from_json(v: &JsonValue) -> Result<Vec<Session>, NetError> {
    let rows = v
        .as_array()
        .ok_or_else(|| NetError::Wire("`sessions` is not an array".into()))?;
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let id = non_negative_int(field(row, "id")?, "session id")?;
        let events = field(row, "events")?
            .as_array()
            .ok_or_else(|| NetError::Wire("`events` is not an array".into()))?;
        let mut decoded = Vec::with_capacity(events.len());
        for ev in events {
            let pair = ev
                .as_array()
                .ok_or_else(|| NetError::Wire("event is not an [item, op] pair".into()))?;
            if pair.len() != 2 {
                return Err(NetError::Wire(format!(
                    "event has {} element(s), expected 2",
                    pair.len()
                )));
            }
            let item = non_negative_int(&pair[0], "event item")?;
            let op = non_negative_int(&pair[1], "event op")?;
            let item = u32::try_from(item)
                .map_err(|_| NetError::Wire(format!("item id {item} overflows u32")))?;
            let op = u16::try_from(op)
                .map_err(|_| NetError::Wire(format!("op id {op} overflows u16")))?;
            decoded.push(MicroBehavior::new(item, op));
        }
        out.push(Session {
            id,
            events: decoded,
        });
    }
    Ok(out)
}

fn opts_to_json(opts: SubmitOptions) -> JsonValue {
    JsonValue::object(vec![
        ("deadline_us", opts.deadline_us.into()),
        ("shed", opts.shed.into()),
    ])
}

fn opts_from_json(v: &JsonValue) -> Result<SubmitOptions, NetError> {
    Ok(SubmitOptions {
        deadline_us: non_negative_int(field(v, "deadline_us")?, "deadline_us")?,
        shed: field(v, "shed")?
            .as_bool()
            .ok_or_else(|| NetError::Wire("`shed` is not a bool".into()))?,
    })
}

fn parse_payload(payload: &[u8]) -> Result<JsonValue, NetError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| NetError::Wire(format!("payload is not UTF-8: {e}")))?;
    embsr_obs::parse_json(text).map_err(|e| NetError::Wire(format!("payload is not JSON: {e}")))
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A decoded request envelope: the sessions plus the admission/deadline
/// options and the caller's trace context.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestEnvelope {
    pub sessions: Vec<Session>,
    pub opts: SubmitOptions,
    pub ctx: TraceCtx,
    /// Top-k cutoff; `None` for full-vocabulary score requests.
    pub k: Option<usize>,
}

/// Encodes a [`ScoreBatch`] request payload.
pub fn encode_score_request(req: &ScoreBatch, opts: SubmitOptions, ctx: TraceCtx) -> Vec<u8> {
    JsonValue::object(vec![
        ("sessions", sessions_to_json(&req.sessions)),
        ("opts", opts_to_json(opts)),
        ("trace", ctx.to_json_value()),
    ])
    .to_json()
    .into_bytes()
}

/// Encodes a [`TopK`] request payload.
pub fn encode_top_k_request(req: &TopK, opts: SubmitOptions, ctx: TraceCtx) -> Vec<u8> {
    JsonValue::object(vec![
        ("sessions", sessions_to_json(&req.sessions)),
        ("k", req.k.into()),
        ("opts", opts_to_json(opts)),
        ("trace", ctx.to_json_value()),
    ])
    .to_json()
    .into_bytes()
}

/// Decodes either request payload; `top_k` selects which schema applies.
pub fn decode_request(payload: &[u8], top_k: bool) -> Result<RequestEnvelope, NetError> {
    let v = parse_payload(payload)?;
    let sessions = sessions_from_json(field(&v, "sessions")?)?;
    let opts = opts_from_json(field(&v, "opts")?)?;
    let ctx = v
        .get("trace")
        .map(TraceCtx::from_json_value)
        .unwrap_or(TraceCtx::NONE);
    let k = if top_k {
        Some(non_negative_int(field(&v, "k")?, "k")? as usize)
    } else {
        None
    };
    Ok(RequestEnvelope {
        sessions,
        opts,
        ctx,
        k,
    })
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Encodes a [`ScoreResponse`] payload: `{"scores": [[...], ...],
/// "model_version": N}`. v1 decoders ignore the unknown `model_version`
/// key, so the tag is safe to send to old peers.
pub fn encode_score_response(resp: &ScoreResponse) -> Vec<u8> {
    JsonValue::object(vec![
        (
            "scores",
            JsonValue::Array(
                resp.scores
                    .iter()
                    .map(|row| {
                        JsonValue::Array(row.iter().map(|&s| JsonValue::Number(s as f64)).collect())
                    })
                    .collect(),
            ),
        ),
        ("model_version", resp.model_version.into()),
    ])
    .to_json()
    .into_bytes()
}

/// Decodes a [`ScoreResponse`] payload (bitwise-exact scores; see the
/// module docs).
pub fn decode_score_response(payload: &[u8]) -> Result<ScoreResponse, NetError> {
    let v = parse_payload(payload)?;
    let rows = field(&v, "scores")?
        .as_array()
        .ok_or_else(|| NetError::Wire("`scores` is not an array".into()))?;
    let mut scores = Vec::with_capacity(rows.len());
    for row in rows {
        let cells = row
            .as_array()
            .ok_or_else(|| NetError::Wire("score row is not an array".into()))?;
        let mut out = Vec::with_capacity(cells.len());
        for c in cells {
            let f = c
                .as_f64()
                .ok_or_else(|| NetError::Wire("score is not a number".into()))?;
            out.push(f as f32);
        }
        scores.push(out);
    }
    // Absent on v1 payloads: version tagging arrived with protocol v2.
    let model_version = match v.get("model_version") {
        Some(mv) => non_negative_int(mv, "model_version")?,
        None => 0,
    };
    Ok(ScoreResponse {
        scores,
        model_version,
    })
}

/// Encodes a [`TopKResponse`] payload: `{"items": [[[item, score], ...], ...],
/// "model_version": N}`.
pub fn encode_top_k_response(resp: &TopKResponse) -> Vec<u8> {
    JsonValue::object(vec![
        (
            "items",
            JsonValue::Array(
                resp.items
                    .iter()
                    .map(|recs| {
                        JsonValue::Array(
                            recs.iter()
                                .map(|r| {
                                    JsonValue::Array(vec![
                                        (r.item as u64).into(),
                                        JsonValue::Number(r.score as f64),
                                    ])
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        ),
        ("model_version", resp.model_version.into()),
    ])
    .to_json()
    .into_bytes()
}

/// Decodes a [`TopKResponse`] payload.
pub fn decode_top_k_response(payload: &[u8]) -> Result<TopKResponse, NetError> {
    let v = parse_payload(payload)?;
    let rows = field(&v, "items")?
        .as_array()
        .ok_or_else(|| NetError::Wire("`items` is not an array".into()))?;
    let mut items = Vec::with_capacity(rows.len());
    for row in rows {
        let recs = row
            .as_array()
            .ok_or_else(|| NetError::Wire("recommendation row is not an array".into()))?;
        let mut out = Vec::with_capacity(recs.len());
        for rec in recs {
            let pair = rec
                .as_array()
                .ok_or_else(|| NetError::Wire("recommendation is not an [item, score] pair".into()))?;
            if pair.len() != 2 {
                return Err(NetError::Wire(format!(
                    "recommendation has {} element(s), expected 2",
                    pair.len()
                )));
            }
            let item = non_negative_int(&pair[0], "recommended item")?;
            let item = u32::try_from(item)
                .map_err(|_| NetError::Wire(format!("item id {item} overflows u32")))?;
            let score = pair[1]
                .as_f64()
                .ok_or_else(|| NetError::Wire("score is not a number".into()))?;
            out.push(ScoredItem {
                item,
                score: score as f32,
            });
        }
        items.push(out);
    }
    // Absent on v1 payloads: version tagging arrived with protocol v2.
    let model_version = match v.get("model_version") {
        Some(mv) => non_negative_int(mv, "model_version")?,
        None => 0,
    };
    Ok(TopKResponse {
        items,
        model_version,
    })
}

// ---------------------------------------------------------------------------
// Errors on the wire
// ---------------------------------------------------------------------------

/// Encodes a [`NetError`] as an `ErrorResponse` payload. Transport-local
/// variants (`Frame`, `Wire`) are reported as `bad_request` — by the time
/// a server replies, the peer's framing succeeded, so what it needs is the
/// reason its payload was refused.
pub fn encode_error(err: &NetError) -> Vec<u8> {
    let (code, fields) = match err {
        NetError::Overloaded { queued, cap } => (
            "overloaded",
            vec![("queued", (*queued).into()), ("cap", (*cap).into())],
        ),
        NetError::DeadlineExpired { waited_us } => (
            "deadline_expired",
            vec![("waited_us", (*waited_us).into())],
        ),
        NetError::Unavailable(msg) => ("unavailable", vec![("message", msg.as_str().into())]),
        other => ("bad_request", vec![("message", other.to_string().into())]),
    };
    let mut pairs = vec![("code", code.into())];
    pairs.extend(fields);
    JsonValue::object(pairs).to_json().into_bytes()
}

/// Decodes an `ErrorResponse` payload back into a [`NetError`].
pub fn decode_error(payload: &[u8]) -> NetError {
    let v = match parse_payload(payload) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let message = || {
        v.get("message")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string()
    };
    match v.get("code").and_then(JsonValue::as_str) {
        Some("overloaded") => NetError::Overloaded {
            queued: v
                .get("queued")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0)
                .max(0.0) as usize,
            cap: v
                .get("cap")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0)
                .max(0.0) as usize,
        },
        Some("deadline_expired") => NetError::DeadlineExpired {
            waited_us: v
                .get("waited_us")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0)
                .max(0.0) as u64,
        },
        Some("unavailable") => NetError::Unavailable(message()),
        Some("bad_request") => NetError::BadRequest(message()),
        Some(other) => NetError::Wire(format!("unknown error code `{other}`")),
        None => NetError::Wire("error response without a `code`".into()),
    }
}

// ---------------------------------------------------------------------------
// Hex codec (snapshot bytes inside JSON control payloads)
// ---------------------------------------------------------------------------

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

/// Lower-case hex encoding; `EMBSRSNP` snapshot bytes ride inside JSON
/// control payloads this way (the workspace has no base64 and snapshots
/// are staged rarely, so 2× expansion is acceptable).
fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX_DIGITS[(b >> 4) as usize] as char);
        out.push(HEX_DIGITS[(b & 0x0f) as usize] as char);
    }
    out
}

fn hex_decode(s: &str) -> Result<Vec<u8>, NetError> {
    let raw = s.as_bytes();
    if raw.len() % 2 != 0 {
        return Err(NetError::Wire(format!(
            "hex string has odd length {}",
            raw.len()
        )));
    }
    fn nibble(b: u8) -> Result<u8, NetError> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            other => Err(NetError::Wire(format!("invalid hex digit 0x{other:02x}"))),
        }
    }
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The unified, versioned request/response surface (protocol v2)
// ---------------------------------------------------------------------------

/// Every client → server message, as one typed enum. `Score`/`TopK`
/// payloads are byte-identical to their v1 forms (the encoders delegate to
/// the per-type functions above); `Hello` and `Control` are new in
/// protocol v2.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Score {
        batch: ScoreBatch,
        opts: SubmitOptions,
        ctx: TraceCtx,
    },
    TopK {
        batch: TopK,
        opts: SubmitOptions,
        ctx: TraceCtx,
    },
    /// Version negotiation opener: the highest protocol version the client
    /// speaks. The server answers with [`Response::HelloAck`].
    Hello { max_version: u8 },
    Control(ControlRequest),
}

/// Control-plane commands: the zero-downtime snapshot lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlRequest {
    /// Stage an `EMBSRSNP` snapshot under `version` in every replica
    /// without touching live scoring.
    LoadSnapshot { version: u64, snapshot: Vec<u8> },
    /// Atomically flip scoring to a previously staged version.
    Activate { version: u64 },
    /// Report the active/staged versions and cache counters per replica.
    Status,
}

/// Every server → client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    Scores(ScoreResponse),
    Recs(TopKResponse),
    /// The protocol version the connection will speak from here on.
    HelloAck { version: u8 },
    Control(ControlReply),
    Error(NetError),
}

/// Control-plane answers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlReply {
    /// The command was applied on every alive replica; echoes the snapshot
    /// version acted on.
    Done { version: u64 },
    Status(ServerStatus),
}

/// Per-replica serving state, as reported by `ControlRequest::Status`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStatus {
    pub replicas: Vec<EngineStatus>,
}

fn u64_list_to_json(xs: &[u64]) -> JsonValue {
    JsonValue::Array(xs.iter().map(|&x| x.into()).collect())
}

fn u64_list_from_json(v: &JsonValue, what: &str) -> Result<Vec<u64>, NetError> {
    let rows = v
        .as_array()
        .ok_or_else(|| NetError::Wire(format!("`{what}` is not an array")))?;
    rows.iter().map(|x| non_negative_int(x, what)).collect()
}

fn engine_status_to_json(s: &EngineStatus) -> JsonValue {
    JsonValue::object(vec![
        ("active_version", s.active_version.into()),
        ("staged", u64_list_to_json(&s.staged)),
        (
            "cache",
            JsonValue::object(vec![
                ("hits", s.cache.hits.into()),
                ("misses", s.cache.misses.into()),
                ("insertions", s.cache.insertions.into()),
                ("evictions", s.cache.evictions.into()),
                ("entries", s.cache.entries.into()),
                ("bytes", s.cache.bytes.into()),
            ]),
        ),
    ])
}

fn engine_status_from_json(v: &JsonValue) -> Result<EngineStatus, NetError> {
    let cache = field(v, "cache")?;
    let counter = |key: &str| non_negative_int(field(cache, key)?, key);
    Ok(EngineStatus {
        active_version: non_negative_int(field(v, "active_version")?, "active_version")?,
        staged: u64_list_from_json(field(v, "staged")?, "staged")?,
        cache: CacheStats {
            hits: counter("hits")?,
            misses: counter("misses")?,
            insertions: counter("insertions")?,
            evictions: counter("evictions")?,
            entries: counter("entries")?,
            bytes: counter("bytes")?,
        },
    })
}

/// Encodes a [`Request`] into the frame kind + payload to send.
pub fn encode_request(req: &Request) -> (FrameKind, Vec<u8>) {
    match req {
        Request::Score { batch, opts, ctx } => (
            FrameKind::ScoreRequest,
            encode_score_request(batch, *opts, *ctx),
        ),
        Request::TopK { batch, opts, ctx } => (
            FrameKind::TopKRequest,
            encode_top_k_request(batch, *opts, *ctx),
        ),
        Request::Hello { max_version } => (
            FrameKind::Hello,
            JsonValue::object(vec![("max_version", (*max_version as u64).into())])
                .to_json()
                .into_bytes(),
        ),
        Request::Control(cmd) => {
            let pairs = match cmd {
                ControlRequest::LoadSnapshot { version, snapshot } => vec![
                    ("op", "load_snapshot".into()),
                    ("version", (*version).into()),
                    ("snapshot", hex_encode(snapshot).into()),
                ],
                ControlRequest::Activate { version } => {
                    vec![("op", "activate".into()), ("version", (*version).into())]
                }
                ControlRequest::Status => vec![("op", "status".into())],
            };
            (FrameKind::Control, JsonValue::object(pairs).to_json().into_bytes())
        }
    }
}

/// Decodes any request-direction frame into a [`Request`]. v1 peers only
/// ever produce the `Score`/`TopK` arms; their payload schemas are
/// unchanged, which the protocol tests pin.
pub fn decode_request_frame(kind: FrameKind, payload: &[u8]) -> Result<Request, NetError> {
    match kind {
        FrameKind::ScoreRequest => {
            let env = decode_request(payload, false)?;
            Ok(Request::Score {
                batch: ScoreBatch {
                    sessions: env.sessions,
                },
                opts: env.opts,
                ctx: env.ctx,
            })
        }
        FrameKind::TopKRequest => {
            let env = decode_request(payload, true)?;
            let k = env.k.unwrap_or(0);
            Ok(Request::TopK {
                batch: TopK {
                    sessions: env.sessions,
                    k,
                },
                opts: env.opts,
                ctx: env.ctx,
            })
        }
        FrameKind::Hello => {
            let v = parse_payload(payload)?;
            let max = non_negative_int(field(&v, "max_version")?, "max_version")?;
            let max_version = u8::try_from(max)
                .map_err(|_| NetError::Wire(format!("max_version {max} overflows u8")))?;
            Ok(Request::Hello { max_version })
        }
        FrameKind::Control => {
            let v = parse_payload(payload)?;
            let op = field(&v, "op")?
                .as_str()
                .ok_or_else(|| NetError::Wire("`op` is not a string".into()))?;
            match op {
                "load_snapshot" => Ok(Request::Control(ControlRequest::LoadSnapshot {
                    version: non_negative_int(field(&v, "version")?, "version")?,
                    snapshot: hex_decode(
                        field(&v, "snapshot")?
                            .as_str()
                            .ok_or_else(|| NetError::Wire("`snapshot` is not a string".into()))?,
                    )?,
                })),
                "activate" => Ok(Request::Control(ControlRequest::Activate {
                    version: non_negative_int(field(&v, "version")?, "version")?,
                })),
                "status" => Ok(Request::Control(ControlRequest::Status)),
                other => Err(NetError::Wire(format!("unknown control op `{other}`"))),
            }
        }
        other => Err(NetError::Wire(format!(
            "frame kind {other:?} is not a request"
        ))),
    }
}

/// Encodes a [`Response`] into the frame kind + payload to send.
pub fn encode_response(resp: &Response) -> (FrameKind, Vec<u8>) {
    match resp {
        Response::Scores(r) => (FrameKind::ScoreResponse, encode_score_response(r)),
        Response::Recs(r) => (FrameKind::TopKResponse, encode_top_k_response(r)),
        Response::HelloAck { version } => (
            FrameKind::HelloAck,
            JsonValue::object(vec![("version", (*version as u64).into())])
                .to_json()
                .into_bytes(),
        ),
        Response::Control(reply) => {
            let pairs = match reply {
                ControlReply::Done { version } => {
                    vec![("op", "done".into()), ("version", (*version).into())]
                }
                ControlReply::Status(status) => vec![
                    ("op", "status".into()),
                    (
                        "replicas",
                        JsonValue::Array(
                            status.replicas.iter().map(engine_status_to_json).collect(),
                        ),
                    ),
                ],
            };
            (
                FrameKind::ControlReply,
                JsonValue::object(pairs).to_json().into_bytes(),
            )
        }
        Response::Error(err) => (FrameKind::ErrorResponse, encode_error(err)),
    }
}

/// Decodes any response-direction frame into a [`Response`].
pub fn decode_response_frame(kind: FrameKind, payload: &[u8]) -> Result<Response, NetError> {
    match kind {
        FrameKind::ScoreResponse => Ok(Response::Scores(decode_score_response(payload)?)),
        FrameKind::TopKResponse => Ok(Response::Recs(decode_top_k_response(payload)?)),
        FrameKind::ErrorResponse => Ok(Response::Error(decode_error(payload))),
        FrameKind::HelloAck => {
            let v = parse_payload(payload)?;
            let raw = non_negative_int(field(&v, "version")?, "version")?;
            let version = u8::try_from(raw)
                .map_err(|_| NetError::Wire(format!("version {raw} overflows u8")))?;
            if version == 0 || version > VERSION {
                return Err(NetError::Wire(format!(
                    "peer negotiated unsupported version {version}"
                )));
            }
            Ok(Response::HelloAck { version })
        }
        FrameKind::ControlReply => {
            let v = parse_payload(payload)?;
            let op = field(&v, "op")?
                .as_str()
                .ok_or_else(|| NetError::Wire("`op` is not a string".into()))?;
            match op {
                "done" => Ok(Response::Control(ControlReply::Done {
                    version: non_negative_int(field(&v, "version")?, "version")?,
                })),
                "status" => {
                    let rows = field(&v, "replicas")?
                        .as_array()
                        .ok_or_else(|| NetError::Wire("`replicas` is not an array".into()))?;
                    let replicas = rows
                        .iter()
                        .map(engine_status_from_json)
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(Response::Control(ControlReply::Status(ServerStatus {
                        replicas,
                    })))
                }
                other => Err(NetError::Wire(format!("unknown control reply `{other}`"))),
            }
        }
        other => Err(NetError::Wire(format!(
            "frame kind {other:?} is not a response"
        ))),
    }
}
