//! The length-prefixed frame codec — the lowest layer of the wire protocol.
//!
//! Every message on a connection is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic        "EMBN" (0x45 0x4D 0x42 0x4E)
//! 4       1     version      protocol version, 1 or 2
//! 5       1     kind         FrameKind discriminant
//! 6       8     request id   u64, little-endian; responses echo it
//! 14      4     payload len  u32, little-endian, <= MAX_PAYLOAD
//! 18      len   payload      UTF-8 JSON (see `wire`)
//! ```
//!
//! Version 1 is the original one-request-per-connection protocol (kinds
//! 1–5). Version 2 keeps the header layout and all v1 payload schemas
//! bit-for-bit, and adds the multiplexing handshake (`Hello`/`HelloAck`)
//! and the control plane (`Control`/`ControlReply`). A decoder for either
//! version reads the other's score/top-k frames unchanged; peers negotiate
//! the connection version with a `Hello` frame (see `client`).
//!
//! The codec is deliberately paranoid: every malformed input maps to a
//! typed [`FrameError`] — bad magic, unknown version or kind, oversized
//! length, truncation mid-frame — and never to a panic, because the bytes
//! come from the network. [`read_frame`] tolerates arbitrarily split and
//! coalesced reads (it loops on short reads), which the protocol property
//! tests exercise with a chunking mock transport.
//!
//! Read timeouts are part of the contract: a transport configured with a
//! read timeout yields [`FrameError::Idle`] when *no* byte of a frame has
//! arrived yet (callers poll shutdown flags on it), but a stall *mid*-frame
//! is only retried [`MAX_MID_FRAME_STALLS`] times before the frame is
//! declared dead — a peer that sends half a header must not pin a handler
//! thread forever.

use std::io::{self, Read, Write};

/// Leading bytes of every frame.
pub const MAGIC: [u8; 4] = *b"EMBN";
/// The original protocol version (blocking, one request in flight).
pub const VERSION_V1: u8 = 1;
/// Current protocol version: multiplexed connections + control plane.
pub const VERSION: u8 = 2;
/// Upper bound on the payload of one frame (64 MiB). A length field above
/// this is rejected before any allocation, so a hostile header cannot OOM
/// the server.
pub const MAX_PAYLOAD: u32 = 64 << 20;
/// Bytes in the fixed frame header.
pub const HEADER_LEN: usize = 18;
/// Consecutive read timeouts tolerated once a frame has started arriving.
pub const MAX_MID_FRAME_STALLS: u32 = 600;

/// Discriminant of a frame's payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: a `ScoreBatch` request.
    ScoreRequest = 1,
    /// Client → server: a `TopK` request.
    TopKRequest = 2,
    /// Server → client: full-vocabulary score rows.
    ScoreResponse = 3,
    /// Server → client: top-k recommendations.
    TopKResponse = 4,
    /// Server → client: a typed error (see `wire::decode_error`).
    ErrorResponse = 5,
    /// Client → server (v2): version negotiation opener.
    Hello = 6,
    /// Server → client (v2): negotiation answer.
    HelloAck = 7,
    /// Client → server (v2): a control-plane command
    /// (`LoadSnapshot`/`Activate`/`Status`).
    Control = 8,
    /// Server → client (v2): the control-plane answer.
    ControlReply = 9,
}

impl FrameKind {
    /// Parses the on-wire discriminant byte.
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::ScoreRequest),
            2 => Some(FrameKind::TopKRequest),
            3 => Some(FrameKind::ScoreResponse),
            4 => Some(FrameKind::TopKResponse),
            5 => Some(FrameKind::ErrorResponse),
            6 => Some(FrameKind::Hello),
            7 => Some(FrameKind::HelloAck),
            8 => Some(FrameKind::Control),
            9 => Some(FrameKind::ControlReply),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version the frame was encoded under. Responses echo the
    /// version of the request they answer, so a v1 peer never sees a v2
    /// header byte.
    pub version: u8,
    pub kind: FrameKind,
    /// Correlates responses with requests on a connection; the server
    /// echoes the id of the request it is answering.
    pub request_id: u64,
    /// UTF-8 JSON, interpreted by the `wire` layer according to `kind`.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame at the current protocol version.
    pub fn new(kind: FrameKind, request_id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            version: VERSION,
            kind,
            request_id,
            payload,
        }
    }

    /// A frame at an explicit protocol version (used to answer v1 peers).
    pub fn versioned(version: u8, kind: FrameKind, request_id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            version,
            kind,
            request_id,
            payload,
        }
    }
}

/// Everything that can go wrong at the framing layer. All variants are
/// data, never panics — network bytes are untrusted input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Clean EOF on a frame boundary: the peer closed the connection.
    Closed,
    /// No byte arrived before the transport's read timeout while waiting
    /// for a new frame; the caller may poll and retry.
    Idle,
    /// EOF or a terminal stall in the middle of a frame.
    Truncated { expected: usize, got: usize },
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown [`FrameKind`] discriminant.
    BadKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`] (or, on encode, the
    /// payload itself does).
    TooLarge { len: u64, max: u32 },
    /// Transport-level I/O failure.
    Io(io::ErrorKind, String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Idle => write!(f, "no frame before read timeout"),
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: got {got} of {expected} bytes")
            }
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Io(kind, msg) => write!(f, "i/o error ({kind:?}): {msg}"),
        }
    }
}

/// Serializes a frame to bytes. Fails only when the payload exceeds
/// [`MAX_PAYLOAD`].
pub fn encode(frame: &Frame) -> Result<Vec<u8>, FrameError> {
    let len = frame.payload.len();
    if len as u64 > MAX_PAYLOAD as u64 {
        return Err(FrameError::TooLarge {
            len: len as u64,
            max: MAX_PAYLOAD,
        });
    }
    if frame.version < VERSION_V1 || frame.version > VERSION {
        return Err(FrameError::BadVersion(frame.version));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + len);
    out.extend_from_slice(&MAGIC);
    out.push(frame.version);
    out.push(frame.kind as u8);
    out.extend_from_slice(&frame.request_id.to_le_bytes());
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.extend_from_slice(&frame.payload);
    Ok(out)
}

/// Writes one frame to the transport and flushes it.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), FrameError> {
    let bytes = encode(frame)?;
    w.write_all(&bytes)
        .and_then(|()| w.flush())
        .map_err(|e| FrameError::Io(e.kind(), e.to_string()))
}

/// True for the error kinds a read timeout surfaces as (platform-dependent).
fn is_timeout(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Fills `buf` completely, tolerating split reads. `already` bytes of the
/// frame were consumed before this call (0 while reading the header);
/// `expected` is the full frame region being read, for error reporting.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    already: usize,
    expected: usize,
) -> Result<(), FrameError> {
    let mut got = 0;
    let mut stalls = 0u32;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if already + got == 0 {
                    return Err(FrameError::Closed);
                }
                return Err(FrameError::Truncated {
                    expected,
                    got: already + got,
                });
            }
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => {
                if already + got == 0 {
                    return Err(FrameError::Idle);
                }
                // Mid-frame: the peer started a frame and stalled. Retry a
                // bounded number of times, then declare the frame dead so a
                // half-sent header cannot pin this thread forever.
                stalls += 1;
                if stalls > MAX_MID_FRAME_STALLS {
                    return Err(FrameError::Truncated {
                        expected,
                        got: already + got,
                    });
                }
            }
            Err(e) => return Err(FrameError::Io(e.kind(), e.to_string())),
        }
    }
    Ok(())
}

/// Reads one frame, validating magic, version, kind and length before
/// touching the payload. Split and coalesced reads are handled; see the
/// module docs for the timeout contract.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_full(r, &mut header, 0, HEADER_LEN)?;
    let magic = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = header[4];
    if !(VERSION_V1..=VERSION).contains(&version) {
        return Err(FrameError::BadVersion(version));
    }
    let kind = FrameKind::from_u8(header[5]).ok_or(FrameError::BadKind(header[5]))?;
    let mut id_bytes = [0u8; 8];
    id_bytes.copy_from_slice(&header[6..14]);
    let request_id = u64::from_le_bytes(id_bytes);
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&header[14..18]);
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_PAYLOAD {
        return Err(FrameError::TooLarge {
            len: len as u64,
            max: MAX_PAYLOAD,
        });
    }
    let mut payload = vec![0u8; len as usize];
    read_full(r, &mut payload, HEADER_LEN, HEADER_LEN + len as usize)?;
    Ok(Frame {
        version,
        kind,
        request_id,
        payload,
    })
}
