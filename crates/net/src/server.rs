//! The sharded serving front end: a TCP accept loop fronting N engine
//! replicas behind a rendezvous-hash router with bounded admission.
//!
//! ```text
//! conn reader ──┬─ Hello/HelloAck (inline)
//!               └─▶ conn workers ──decode──▶ router ──(session shard)──▶ replica 0 queue ─▶ dispatchers ─▶ serve() engine
//!      ▲                            │                                    replica 1 queue ─▶ ...
//!      └──────────reassemble────────┴─ per-(slot) replies via mpsc
//! ```
//!
//! Each replica is its own [`FrozenModel`] rebuilt from the shared weight
//! snapshot plus its own [`serve`] micro-batching engine; a small pool of
//! *dispatcher* threads per replica pulls routed work items off the
//! replica's bounded queue and submits them to the engine, so concurrent
//! requests still coalesce into micro-batches. Sessions of one request
//! can shard to different replicas; the handler reassembles rows by slot,
//! which is score-safe because every replica holds bitwise-identical
//! weights (pinned by `tests/net_equivalence.rs`).
//!
//! **Connection multiplexing (protocol v2).** Every connection runs a
//! reader thread plus [`ServerConfig::conn_workers`] request workers:
//! the reader demultiplexes incoming frames into a per-connection queue,
//! workers process requests concurrently, and whole-frame writes are
//! serialized on a write lock — so one connection can carry many requests
//! in flight, completing out of order (responses are keyed by request id).
//! `Hello` handshakes are answered inline by the reader so negotiation
//! never queues behind scoring. Responses echo the *request frame's*
//! protocol version, so a v1 peer never sees a v2 header and needs no
//! handshake at all.
//!
//! **Control plane (protocol v2).** `Control` frames carry the
//! zero-downtime snapshot lifecycle: `LoadSnapshot` stages an `EMBSRSNP`
//! blob in every alive replica's engine (bypassing admission), `Activate`
//! atomically flips scoring to a staged version with no drain — in-flight
//! batches finish under the version that scored them and every response
//! is tagged with it — and `Status` reports per-replica active/staged
//! versions plus session-repr cache counters.
//!
//! **Failure semantics** (exercised by the fault-injection suite):
//!
//! * *Replica death* ([`Server::kill_replica`]) — the replica is marked
//!   dead under its queue lock (no new work can slip in), its queued items
//!   are re-routed to survivors via the rendezvous hash over the reduced
//!   alive set (queued control commands fail `Unavailable`), and its
//!   thread is joined. In-flight items it already popped complete
//!   normally: zero wrong answers, and the only error responses are the
//!   bounded set that could not be re-homed.
//! * *Overload* — a shedding request whose target queue is at
//!   [`ServerConfig::admission_cap`] is refused with a typed `Overloaded`
//!   error, never silently dropped; the server counts every rejection so
//!   load generators can reconcile their observed rejection rate exactly.
//! * *Deadline expiry* — the client's `deadline_us` budget rides the wire;
//!   dispatchers shed work whose budget lapsed in the router queue and
//!   pass the *remaining* budget to the engine, which sheds again at
//!   drain time. A slow replica therefore produces timely
//!   `DeadlineExpired` errors, not hangs.
//! * *Shutdown* ([`Server::shutdown`] or drop) — closes admission, fails
//!   queued work with `Unavailable`, and joins the accept loop, every
//!   connection handler, and every replica: no thread outlives the handle.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use embsr_obs::trace::{self, TraceCtx};
use embsr_obs::{metrics, Stopwatch};
use embsr_serve::{
    serve, top_k_of_row, Client, EngineConfig, EngineStatus, FrozenModel, ScoreBatch,
    ScoreResponse, ScoredItem, SubmitOptions, SwapError, TopKResponse,
};
use embsr_sessions::Session;
use embsr_train::SessionModel;

use crate::frame::{self, Frame, FrameError, FrameKind, VERSION, VERSION_V1};
use crate::shard;
use crate::wire::{self, ControlReply, ControlRequest, NetError, Request, RequestEnvelope,
    Response, ServerStatus};

/// Counter of requests received by connection handlers.
pub const METRIC_NET_REQUESTS: &str = "net.requests";
/// Counter of requests refused by admission control.
pub const METRIC_NET_REJECTED: &str = "net.rejected";
/// Counter of sessions re-routed off a dead replica.
pub const METRIC_NET_REROUTED: &str = "net.rerouted_sessions";
/// Counter of router-level deadline expiries (engine-level ones land in
/// `serve.deadline_expired`).
pub const METRIC_NET_DEADLINE_EXPIRED: &str = "net.deadline_expired";
/// Counter of control-plane commands processed.
pub const METRIC_NET_CONTROL: &str = "net.control_requests";
/// Histogram of server-side request latency (decode → response written),
/// in microseconds.
pub const METRIC_NET_LATENCY_US: &str = "net.request_latency_us";

/// A request stuck longer than this (e.g. every replica died mid-flight
/// without its reply channel closing) is failed as `Unavailable` rather
/// than pinning its handler forever.
const REQUEST_STALL_CEILING_US: u64 = 60_000_000;

/// Tuning knobs of the networked server.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Engine replicas (each its own snapshot rebuild + worker pool).
    pub replicas: usize,
    /// Dispatcher threads per replica pulling routed work into the engine;
    /// more dispatchers mean more concurrent requests coalescing into one
    /// engine's micro-batches.
    pub dispatchers: usize,
    /// Request workers per connection: the per-connection concurrency
    /// ceiling of the multiplexed protocol (a pipelining client can keep
    /// this many requests of one connection in flight at once).
    pub conn_workers: usize,
    /// Per-replica engine configuration.
    pub engine: EngineConfig,
    /// Bounded admission: work items allowed to wait in one replica's
    /// router queue before a *shedding* request is refused.
    pub admission_cap: usize,
    /// Socket read timeout; also the shutdown polling cadence of idle
    /// connection handlers.
    pub read_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            replicas: 2,
            dispatchers: 2,
            conn_workers: 8,
            engine: EngineConfig::default(),
            admission_cap: 64,
            read_timeout_ms: 20,
        }
    }
}

/// Point-in-time request accounting, exact (not sampled). The admission
/// tests reconcile `rejected` against client-observed `Overloaded`
/// responses one-for-one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered with scores/recommendations.
    pub completed: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Sessions re-homed off a dead replica.
    pub rerouted_sessions: u64,
    /// Requests failed because their deadline budget lapsed.
    pub deadline_expired: u64,
    /// Requests failed because no replica could answer.
    pub unavailable: u64,
    /// Requests whose payload did not decode.
    pub bad_requests: u64,
    /// Control-plane commands received (snapshot staging/activation and
    /// status probes).
    pub control: u64,
}

/// One routed unit of work: the slice of a request's sessions that shard
/// to one replica.
struct WorkItem {
    /// `(slot in the originating request, session)` pairs.
    sessions: Vec<(usize, Session)>,
    /// Top-k cutoff; `None` for full score rows.
    k: Option<usize>,
    /// Remaining deadline budget at enqueue, µs (`0` = none).
    deadline_us: u64,
    /// Started when the item entered a router queue.
    enqueued: Stopwatch,
    /// Server-side request span; engine spans nest under it.
    ctx: TraceCtx,
    reply: Sender<Reply>,
}

enum Reply {
    /// Score rows plus the snapshot version that produced them.
    Rows(Vec<(usize, Vec<f32>)>, u64),
    /// Top-k rows plus the snapshot version that produced them.
    Items(Vec<(usize, Vec<ScoredItem>)>, u64),
    Failed(NetError),
}

/// What a control command produced on one replica.
enum ControlOutcome {
    Done,
    Status(EngineStatus),
}

/// A control command fanned out to one replica's engine.
struct ControlJob {
    replica: usize,
    cmd: ControlRequest,
    reply: Sender<(usize, Result<ControlOutcome, NetError>)>,
}

/// A queued unit on a replica: routed scoring work or a control command.
enum Work {
    Score(WorkItem),
    Control(ControlJob),
}

struct ReplicaState {
    jobs: VecDeque<Work>,
    alive: bool,
    /// Fault injection: artificial per-item latency, µs.
    delay_us: u64,
}

struct ReplicaQueue {
    state: Mutex<ReplicaState>,
    arrivals: Condvar,
}

fn lock_state(q: &ReplicaQueue) -> MutexGuard<'_, ReplicaState> {
    match q.state.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Poison-tolerant lock for plain data (a panicked peer cannot leave a
/// socket guard or receiver structurally broken).
fn lock_plain<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // lock: recover from poisoning — the protected state is still sound.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct Inner {
    queues: Vec<ReplicaQueue>,
    shutdown: AtomicBool,
    admission_cap: usize,
    conn_workers: usize,
    read_timeout_ms: u64,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    completed: AtomicU64,
    rejected: AtomicU64,
    rerouted: AtomicU64,
    deadline_expired: AtomicU64,
    unavailable: AtomicU64,
    bad_requests: AtomicU64,
    control: AtomicU64,
}

impl Inner {
    fn is_shutdown(&self) -> bool {
        // ordering: SeqCst — pairs with the store in `begin_shutdown`; a
        // handler woken by the shutdown self-connect must observe the flag
        // or it would go back to sleep and never be joined.
        self.shutdown.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn alive_mask(inner: &Inner) -> Vec<bool> {
    inner.queues.iter().map(|q| lock_state(q).alive).collect()
}

enum PushRefusal {
    Full { queued: usize, cap: usize },
    Dead(WorkItem),
}

fn push_item(inner: &Inner, idx: usize, item: WorkItem, shed: bool) -> Result<(), PushRefusal> {
    let q = &inner.queues[idx];
    let mut st = lock_state(q);
    if !st.alive {
        return Err(PushRefusal::Dead(item));
    }
    if shed && st.jobs.len() >= inner.admission_cap {
        let queued = st.jobs.len();
        return Err(PushRefusal::Full {
            queued,
            cap: inner.admission_cap,
        });
    }
    st.jobs.push_back(Work::Score(item));
    drop(st);
    q.arrivals.notify_one();
    Ok(())
}

/// Shards `pairs` over the alive replicas and enqueues one [`WorkItem`]
/// per target. A replica dying between the alive snapshot and the push
/// bounces its slice back for re-routing over the reduced set; the loop is
/// bounded by the replica count, after which routing reports
/// `Unavailable` instead of spinning.
fn route_and_enqueue(
    inner: &Inner,
    pairs: Vec<(usize, Session)>,
    k: Option<usize>,
    opts: SubmitOptions,
    ctx: TraceCtx,
    reply: &Sender<Reply>,
) -> Result<(), NetError> {
    let mut remaining = pairs;
    for attempt in 0..=inner.queues.len() {
        let alive = alive_mask(inner);
        if !alive.iter().any(|&a| a) {
            return Err(NetError::Unavailable("no replicas alive".into()));
        }
        if attempt > 0 {
            let n = remaining.len() as u64;
            // ordering: Relaxed — statistics counter, no synchronization
            // rides on it.
            inner.rerouted.fetch_add(n, Ordering::Relaxed);
            if metrics::enabled() {
                metrics::counter(METRIC_NET_REROUTED).add(n);
            }
        }
        let mut groups: Vec<Vec<(usize, Session)>> =
            (0..inner.queues.len()).map(|_| Vec::new()).collect();
        for (slot, session) in remaining.drain(..) {
            if let Some(target) = shard::route(session.id, &alive) {
                groups[target].push((slot, session));
            }
        }
        let mut bounced: Vec<(usize, Session)> = Vec::new();
        for (idx, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let item = WorkItem {
                sessions: group,
                k,
                deadline_us: opts.deadline_us,
                enqueued: Stopwatch::start(),
                ctx,
                reply: reply.clone(),
            };
            match push_item(inner, idx, item, opts.shed) {
                Ok(()) => {}
                Err(PushRefusal::Full { queued, cap }) => {
                    return Err(NetError::Overloaded { queued, cap });
                }
                Err(PushRefusal::Dead(item)) => bounced.extend(item.sessions),
            }
        }
        if bounced.is_empty() {
            return Ok(());
        }
        remaining = bounced;
    }
    Err(NetError::Unavailable(
        "routing did not converge (replicas flapping)".into(),
    ))
}

// ---------------------------------------------------------------------------
// Dispatchers (router queue → engine)
// ---------------------------------------------------------------------------

fn pop_work(inner: &Inner, idx: usize) -> Option<(Work, u64)> {
    let q = &inner.queues[idx];
    let mut st = lock_state(q);
    loop {
        if let Some(work) = st.jobs.pop_front() {
            return Some((work, st.delay_us));
        }
        if !st.alive || inner.is_shutdown() {
            return None;
        }
        // The timeout bounds the damage of a lost notification; liveness
        // is re-checked on every wakeup (hence the loop).
        st = match q.arrivals.wait_timeout(st, Duration::from_millis(20)) {
            Ok((guard, _)) => guard,
            Err(poisoned) => poisoned.into_inner().0,
        };
    }
}

fn handle_item(client: &Client<'_>, item: WorkItem, injected_delay_us: u64) {
    if injected_delay_us > 0 {
        // Fault injection: a slow replica. Sleeping *before* the deadline
        // check is what turns the injected latency into observable
        // `DeadlineExpired` errors rather than silent slowness.
        std::thread::sleep(Duration::from_micros(injected_delay_us));
    }
    let WorkItem {
        sessions,
        k,
        deadline_us,
        enqueued,
        ctx,
        reply,
    } = item;
    let waited_us = enqueued.elapsed_us();
    if deadline_us != 0 && waited_us >= deadline_us {
        // ordering via metrics registry only; no shared state here.
        if metrics::enabled() {
            metrics::counter(METRIC_NET_DEADLINE_EXPIRED).inc();
        }
        let _ = reply.send(Reply::Failed(NetError::DeadlineExpired { waited_us }));
        return;
    }
    let remaining_us = if deadline_us == 0 {
        0
    } else {
        deadline_us - waited_us
    };
    let opts = SubmitOptions {
        deadline_us: remaining_us,
        // Router-level admission already ran; the engine queue is sized by
        // the engine config and must not double-reject.
        shed: false,
    };
    let (slots, sessions): (Vec<usize>, Vec<Session>) = sessions.into_iter().unzip();
    match client.try_score_in(ScoreBatch { sessions }, opts, ctx) {
        Ok(resp) => match k {
            None => {
                let _ = reply.send(Reply::Rows(
                    slots.into_iter().zip(resp.scores).collect(),
                    resp.model_version,
                ));
            }
            Some(k) => {
                let _select = trace::child(ctx, "top_k");
                let items: Vec<(usize, Vec<ScoredItem>)> = slots
                    .into_iter()
                    .zip(resp.scores.iter().map(|row| top_k_of_row(row, k)))
                    .collect();
                drop(_select);
                let _ = reply.send(Reply::Items(items, resp.model_version));
            }
        },
        Err(e) => {
            let _ = reply.send(Reply::Failed(e.into()));
        }
    }
}

fn swap_to_net(e: SwapError) -> NetError {
    match e {
        SwapError::UnknownVersion(_) | SwapError::WrongLayout { .. } | SwapError::Malformed(_) => {
            NetError::BadRequest(e.to_string())
        }
    }
}

/// Applies one control command on this replica's engine and reports back.
fn handle_control(client: &Client<'_>, job: ControlJob) {
    let outcome = match &job.cmd {
        ControlRequest::LoadSnapshot { version, snapshot } => client
            .stage_snapshot(*version, snapshot)
            .map(|()| ControlOutcome::Done)
            .map_err(swap_to_net),
        ControlRequest::Activate { version } => client
            .activate(*version)
            .map(|()| ControlOutcome::Done)
            .map_err(swap_to_net),
        ControlRequest::Status => Ok(ControlOutcome::Status(client.status())),
    };
    let _ = job.reply.send((job.replica, outcome));
}

#[allow(clippy::too_many_arguments)]
fn run_replica<M, F>(
    idx: usize,
    inner: Arc<Inner>,
    snapshot: Arc<Vec<f32>>,
    max_session_len: usize,
    tier: embsr_serve::KernelTier,
    factory: Arc<F>,
    engine: EngineConfig,
    dispatchers: usize,
) where
    M: SessionModel,
    F: Fn() -> M + Send + Sync + 'static,
{
    // the replica (and, via `serve`, its engine workers) scores on the
    // source model's kernel tier
    let mut frozen = FrozenModel::from_snapshot(factory(), &snapshot, max_session_len);
    frozen.set_tier(tier);
    let worker_factory = Arc::clone(&factory);
    serve(&frozen, move || worker_factory(), engine, |client| {
        std::thread::scope(|scope| {
            for _ in 0..dispatchers.max(1) {
                let inner = &inner;
                scope.spawn(move || {
                    while let Some((work, delay_us)) = pop_work(inner, idx) {
                        match work {
                            Work::Score(item) => handle_item(client, item, delay_us),
                            // Control commands skip the fault-injection
                            // delay: they model the operator plane, not the
                            // data plane.
                            Work::Control(job) => handle_control(client, job),
                        }
                    }
                });
            }
        });
    });
}

// ---------------------------------------------------------------------------
// Control-plane fan-out
// ---------------------------------------------------------------------------

/// Fans one control command out to every alive replica's engine and folds
/// the answers: lifecycle commands must succeed everywhere (`Done`),
/// status concatenates per-replica reports in replica order. Control
/// bypasses admission (the operator plane must work *because* the data
/// plane is saturated).
fn process_control(inner: &Inner, cmd: ControlRequest) -> Result<ControlReply, NetError> {
    let _span = embsr_obs::span("embsr_net", "process_control");
    let (tx, rx) = std::sync::mpsc::channel();
    let mut fanned = 0usize;
    for (idx, q) in inner.queues.iter().enumerate() {
        let job = ControlJob {
            replica: idx,
            cmd: cmd.clone(),
            reply: tx.clone(),
        };
        let mut st = lock_state(q);
        if !st.alive {
            continue;
        }
        st.jobs.push_back(Work::Control(job));
        drop(st);
        q.arrivals.notify_one();
        fanned += 1;
    }
    drop(tx);
    if fanned == 0 {
        return Err(NetError::Unavailable("no replicas alive".into()));
    }
    let mut statuses: Vec<(usize, EngineStatus)> = Vec::new();
    let mut got = 0usize;
    let stall = Stopwatch::start();
    while got < fanned {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok((idx, Ok(outcome))) => {
                got += 1;
                if let ControlOutcome::Status(s) = outcome {
                    statuses.push((idx, s));
                }
            }
            // First failure wins; replicas that already applied the command
            // keep it staged (staging is idempotent — the operator
            // re-issues after fixing the cause).
            Ok((_, Err(e))) => return Err(e),
            Err(RecvTimeoutError::Timeout) => {
                if inner.is_shutdown() {
                    return Err(NetError::Unavailable("server shutting down".into()));
                }
                if stall.elapsed_us() > REQUEST_STALL_CEILING_US {
                    return Err(NetError::Unavailable("control command stalled".into()));
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(NetError::Unavailable(
                    "replica dropped the control command".into(),
                ));
            }
        }
    }
    match cmd {
        ControlRequest::Status => {
            statuses.sort_by_key(|&(idx, _)| idx);
            Ok(ControlReply::Status(ServerStatus {
                replicas: statuses.into_iter().map(|(_, s)| s).collect(),
            }))
        }
        ControlRequest::LoadSnapshot { version, .. } | ControlRequest::Activate { version } => {
            Ok(ControlReply::Done { version })
        }
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

enum Outcome {
    Scores(ScoreResponse),
    Recs(TopKResponse),
}

fn run_request(inner: &Inner, env: RequestEnvelope, ctx: TraceCtx) -> Result<Outcome, NetError> {
    let n = env.sessions.len();
    let (tx, rx) = std::sync::mpsc::channel::<Reply>();
    // Empty sessions are answered inline with empty rows, mirroring the
    // in-process engine: they carry nothing to score and nothing to shard.
    let pairs: Vec<(usize, Session)> = env
        .sessions
        .into_iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .collect();
    let expected = pairs.len();
    {
        let _route = trace::child(ctx, "route");
        route_and_enqueue(inner, pairs, env.k, env.opts, ctx, &tx)?;
    }
    drop(tx);
    let mut rows: Vec<Vec<f32>> = vec![Vec::new(); n];
    let mut items: Vec<Vec<ScoredItem>> = vec![Vec::new(); n];
    // The newest snapshot version that contributed rows: one request's
    // sessions can straddle an activation across replicas, and the tag
    // reports the newest weights involved (0 = nothing scored).
    let mut model_version = 0u64;
    let mut got = 0usize;
    let stall = Stopwatch::start();
    while got < expected {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Reply::Rows(slice, version)) => {
                model_version = model_version.max(version);
                for (slot, row) in slice {
                    rows[slot] = row;
                    got += 1;
                }
            }
            Ok(Reply::Items(slice, version)) => {
                model_version = model_version.max(version);
                for (slot, recs) in slice {
                    items[slot] = recs;
                    got += 1;
                }
            }
            Ok(Reply::Failed(e)) => return Err(e),
            Err(RecvTimeoutError::Timeout) => {
                if inner.is_shutdown() {
                    return Err(NetError::Unavailable("server shutting down".into()));
                }
                if stall.elapsed_us() > REQUEST_STALL_CEILING_US {
                    return Err(NetError::Unavailable("request stalled".into()));
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(NetError::Unavailable(
                    "replica dropped the request".into(),
                ));
            }
        }
    }
    Ok(match env.k {
        None => Outcome::Scores(ScoreResponse {
            scores: rows,
            model_version,
        }),
        Some(_) => Outcome::Recs(TopKResponse {
            items,
            model_version,
        }),
    })
}

/// An error response, framed at `version` so the peer can parse it.
fn error_frame(version: u8, request_id: u64, err: &NetError) -> Frame {
    Frame::versioned(
        version,
        FrameKind::ErrorResponse,
        request_id,
        wire::encode_error(err),
    )
}

fn account<T>(inner: &Inner, result: &Result<T, NetError>) {
    // ordering: Relaxed (all) — exact statistics counters; readers snapshot
    // them after quiescing, no synchronization rides on the values.
    match result {
        Ok(_) => {
            inner.completed.fetch_add(1, Ordering::Relaxed);
        }
        Err(NetError::Overloaded { .. }) => {
            inner.rejected.fetch_add(1, Ordering::Relaxed);
            if metrics::enabled() {
                metrics::counter(METRIC_NET_REJECTED).inc();
            }
        }
        Err(NetError::DeadlineExpired { .. }) => {
            inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
        }
        Err(NetError::Unavailable(_)) => {
            inner.unavailable.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            inner.bad_requests.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn process_request(inner: &Inner, req: Frame) -> Frame {
    let id = req.request_id;
    let version = req.version;
    let top_k = match req.kind {
        FrameKind::ScoreRequest => false,
        FrameKind::TopKRequest => true,
        FrameKind::Control => {
            // ordering: Relaxed — statistics counter, no synchronization.
            inner.control.fetch_add(1, Ordering::Relaxed);
            if metrics::enabled() {
                metrics::counter(METRIC_NET_CONTROL).inc();
            }
            let result = match wire::decode_request_frame(req.kind, &req.payload) {
                Ok(Request::Control(cmd)) => process_control(inner, cmd),
                Ok(_) => Err(NetError::BadRequest("control frame expected".into())),
                Err(e) => Err(e),
            };
            account(inner, &result);
            return match result {
                Ok(reply) => {
                    let (kind, payload) = wire::encode_response(&Response::Control(reply));
                    Frame::versioned(version, kind, id, payload)
                }
                Err(e) => error_frame(version, id, &e),
            };
        }
        other => {
            let e = NetError::BadRequest(format!("unexpected frame kind {other:?}"));
            account(inner, &Err::<(), _>(e.clone()));
            return error_frame(version, id, &e);
        }
    };
    let env = match wire::decode_request(&req.payload, top_k) {
        Ok(env) => env,
        Err(e) => {
            account(inner, &Err::<(), _>(e.clone()));
            return error_frame(version, id, &e);
        }
    };
    // The client's root span crossed the wire inside the payload; nest the
    // server-side work under it so one tree spans the whole request.
    let span = trace::child(env.ctx, "server_request");
    let result = run_request(inner, env, span.ctx());
    drop(span);
    account(inner, &result);
    match result {
        Ok(Outcome::Scores(resp)) => Frame::versioned(
            version,
            FrameKind::ScoreResponse,
            id,
            wire::encode_score_response(&resp),
        ),
        Ok(Outcome::Recs(resp)) => Frame::versioned(
            version,
            FrameKind::TopKResponse,
            id,
            wire::encode_top_k_response(&resp),
        ),
        Err(e) => error_frame(version, id, &e),
    }
}

/// One connection: a reader demultiplexing frames into a per-connection
/// queue drained by [`ServerConfig::conn_workers`] request workers, whose
/// responses are written whole-frame under a shared write lock — so many
/// requests of one connection proceed concurrently and complete out of
/// order. `Hello` frames are answered inline by the reader.
fn handle_conn(stream: TcpStream, inner: Arc<Inner>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(inner.read_timeout_ms.max(1))));
    let write = Mutex::new(());
    let write_frame = |frame: &Frame| -> bool {
        // lock: whole-frame writes from concurrent workers must not
        // interleave mid-frame.
        let _serialize = lock_plain(&write);
        let mut writer = &stream;
        frame::write_frame(&mut writer, frame).is_ok()
    };
    let (tx, rx) = std::sync::mpsc::channel::<Frame>();
    let rx = Mutex::new(rx);
    std::thread::scope(|scope| {
        for _ in 0..inner.conn_workers.max(1) {
            let rx = &rx;
            let inner = &inner;
            let write_frame = &write_frame;
            scope.spawn(move || loop {
                // lock: held across recv — idle workers queue on the mutex
                // and take requests in arrival order, one each.
                let req = lock_plain(rx).recv();
                let Ok(req) = req else { return };
                let watch = Stopwatch::start();
                if metrics::enabled() {
                    metrics::counter(METRIC_NET_REQUESTS).inc();
                }
                let resp = process_request(inner, req);
                if !write_frame(&resp) {
                    return;
                }
                if metrics::enabled() {
                    metrics::histogram(METRIC_NET_LATENCY_US).record(watch.elapsed_us());
                }
            });
        }
        loop {
            let mut reader = &stream;
            match frame::read_frame(&mut reader) {
                Ok(req) if req.kind == FrameKind::Hello => {
                    // Inline so negotiation never queues behind scoring.
                    let resp = match wire::decode_request_frame(req.kind, &req.payload) {
                        Ok(Request::Hello { max_version }) => {
                            let version = max_version.min(VERSION).max(VERSION_V1);
                            let (kind, payload) =
                                wire::encode_response(&Response::HelloAck { version });
                            Frame::versioned(req.version, kind, req.request_id, payload)
                        }
                        Ok(_) => error_frame(
                            req.version,
                            req.request_id,
                            &NetError::BadRequest("hello frame expected".into()),
                        ),
                        Err(e) => error_frame(req.version, req.request_id, &e),
                    };
                    if !write_frame(&resp) {
                        break;
                    }
                }
                Ok(req) => {
                    if tx.send(req).is_err() {
                        break;
                    }
                }
                Err(FrameError::Idle) => {
                    if inner.is_shutdown() {
                        break;
                    }
                }
                Err(FrameError::Closed) => break,
                Err(
                    e @ (FrameError::BadMagic(_)
                    | FrameError::BadVersion(_)
                    | FrameError::BadKind(_)
                    | FrameError::TooLarge { .. }),
                ) => {
                    // Protocol violation: tell the peer why, then drop the
                    // connection — framing sync is lost. Id 0 marks it
                    // connection-level; framed at v1 so any peer parses it.
                    let err = NetError::Frame(e);
                    account(&inner, &Err::<(), _>(err.clone()));
                    let _ = write_frame(&error_frame(VERSION_V1, 0, &err));
                    break;
                }
                Err(_) => break,
            }
        }
        // Reader done: close the queue so idle workers drain out. Workers
        // mid-request finish and write (or fail) their response first —
        // the scope join below waits for them.
        drop(tx);
    });
}

// ---------------------------------------------------------------------------
// The server handle
// ---------------------------------------------------------------------------

/// A running networked serving instance; see the module docs for the
/// architecture. Dropping the handle shuts the server down and joins every
/// thread it spawned.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
    replicas: Mutex<Vec<Option<JoinHandle<()>>>>,
    down: AtomicBool,
}

impl Server {
    /// Binds `127.0.0.1:0` and starts `cfg.replicas` engine replicas, each
    /// rebuilt from `frozen`'s weight snapshot via `factory` (the same
    /// replication contract as [`serve`] itself).
    pub fn start<M, F>(
        frozen: &FrozenModel<M>,
        factory: F,
        cfg: ServerConfig,
    ) -> Result<Server, NetError>
    where
        M: SessionModel,
        F: Fn() -> M + Send + Sync + 'static,
    {
        let _span = embsr_obs::span("embsr_net", "server_start");
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| NetError::Unavailable(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| NetError::Unavailable(format!("local_addr failed: {e}")))?;
        let replicas = cfg.replicas.max(1);
        let inner = Arc::new(Inner {
            queues: (0..replicas)
                .map(|_| ReplicaQueue {
                    state: Mutex::new(ReplicaState {
                        jobs: VecDeque::new(),
                        alive: true,
                        delay_us: 0,
                    }),
                    arrivals: Condvar::new(),
                })
                .collect(),
            shutdown: AtomicBool::new(false),
            admission_cap: cfg.admission_cap.max(1),
            conn_workers: cfg.conn_workers.max(1),
            read_timeout_ms: cfg.read_timeout_ms,
            handlers: Mutex::new(Vec::new()),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            control: AtomicU64::new(0),
        });
        let factory = Arc::new(factory);
        let snapshot = Arc::new(frozen.snapshot().to_vec());
        let max_session_len = frozen.max_session_len();
        let tier = frozen.tier();
        let mut replica_handles = Vec::with_capacity(replicas);
        for idx in 0..replicas {
            let inner_r = Arc::clone(&inner);
            let snapshot_r = Arc::clone(&snapshot);
            let factory_r = Arc::clone(&factory);
            let engine = cfg.engine;
            let dispatchers = cfg.dispatchers;
            let handle = std::thread::Builder::new()
                .name(format!("embsr-net-replica-{idx}"))
                .spawn(move || {
                    run_replica(
                        idx,
                        inner_r,
                        snapshot_r,
                        max_session_len,
                        tier,
                        factory_r,
                        engine,
                        dispatchers,
                    )
                })
                .map_err(|e| NetError::Unavailable(format!("replica spawn failed: {e}")))?;
            replica_handles.push(Some(handle));
        }
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("embsr-net-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_inner.is_shutdown() {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let conn_inner = Arc::clone(&accept_inner);
                    let spawned = std::thread::Builder::new()
                        .name("embsr-net-conn".into())
                        .spawn(move || handle_conn(stream, conn_inner));
                    if let Ok(handle) = spawned {
                        let mut handlers = lock_plain(&accept_inner.handlers);
                        handlers.push(handle);
                    }
                }
            })
            .map_err(|e| NetError::Unavailable(format!("accept spawn failed: {e}")))?;
        Ok(Server {
            inner,
            addr,
            accept: Mutex::new(Some(accept)),
            replicas: Mutex::new(replica_handles),
            down: AtomicBool::new(false),
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Exact request accounting so far.
    pub fn stats(&self) -> ServerStats {
        // ordering: Relaxed (all) — see `account`; callers quiesce traffic
        // before reconciling counts (they pair with `metrics::` snapshots).
        ServerStats {
            completed: self.inner.completed.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            rerouted_sessions: self.inner.rerouted.load(Ordering::Relaxed),
            deadline_expired: self.inner.deadline_expired.load(Ordering::Relaxed),
            unavailable: self.inner.unavailable.load(Ordering::Relaxed),
            bad_requests: self.inner.bad_requests.load(Ordering::Relaxed),
            control: self.inner.control.load(Ordering::Relaxed),
        }
    }

    /// Fault injection: adds `delay_us` of artificial latency in front of
    /// every work item replica `idx` dispatches. Returns false for an
    /// unknown replica.
    pub fn set_replica_delay_us(&self, idx: usize, delay_us: u64) -> bool {
        // Fault-injection knob; the faults suite pairs it with `metrics::`
        // snapshots.
        let Some(q) = self.inner.queues.get(idx) else {
            return false;
        };
        lock_state(q).delay_us = delay_us;
        true
    }

    /// Fault injection: kills replica `idx`. The replica is marked dead
    /// under its queue lock, its queued work is re-routed to the surviving
    /// replicas (or failed `Unavailable` when none survive; queued control
    /// commands always fail — the operator re-issues against the reduced
    /// set), and its thread is joined before this returns. Work it had
    /// already started completes normally. Returns false for an unknown
    /// replica.
    pub fn kill_replica(&self, idx: usize) -> bool {
        let _span = embsr_obs::span("embsr_net", "kill_replica");
        let Some(q) = self.inner.queues.get(idx) else {
            return false;
        };
        let drained: Vec<Work> = {
            let mut st = lock_state(q);
            st.alive = false;
            st.jobs.drain(..).collect()
        };
        q.arrivals.notify_all();
        for work in drained {
            match work {
                Work::Score(item) => {
                    let WorkItem {
                        sessions,
                        k,
                        deadline_us,
                        ctx,
                        reply,
                        ..
                    } = item;
                    let opts = SubmitOptions {
                        deadline_us,
                        // Re-routes never shed: admission already accepted
                        // this work, so refusing it now would be a silent
                        // drop in disguise. The deadline still bounds it.
                        shed: false,
                    };
                    if let Err(e) = route_and_enqueue(&self.inner, sessions, k, opts, ctx, &reply) {
                        let _ = reply.send(Reply::Failed(e));
                    }
                }
                Work::Control(job) => {
                    let _ = job.reply.send((
                        job.replica,
                        Err(NetError::Unavailable("replica died".into())),
                    ));
                }
            }
        }
        let handle = {
            let mut replicas = lock_plain(&self.replicas);
            replicas.get_mut(idx).and_then(Option::take)
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        true
    }

    fn begin_shutdown(&self) {
        // ordering: SeqCst — the `down` swap makes shutdown run-once; the
        // shutdown store must totally order with the queue mutexes and the
        // accept wake-up below, or a handler/dispatcher woken by them
        // could still read the flag as false and sleep again, deadlocking
        // the joins that follow.
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop: `incoming()` has no timeout, so poke it
        // with a throwaway connection. Join it *before* draining handler
        // handles so no late-accepted connection can slip past the joins.
        let _ = TcpStream::connect(self.addr);
        let accept = {
            let mut slot = lock_plain(&self.accept);
            slot.take()
        };
        if let Some(handle) = accept {
            let _ = handle.join();
        }
        // Close every replica and fail whatever was still queued.
        for q in &self.inner.queues {
            let drained: Vec<Work> = {
                let mut st = lock_state(q);
                st.alive = false;
                st.jobs.drain(..).collect()
            };
            q.arrivals.notify_all();
            for work in drained {
                let err = NetError::Unavailable("server shutting down".into());
                match work {
                    Work::Score(item) => {
                        let _ = item.reply.send(Reply::Failed(err));
                    }
                    Work::Control(job) => {
                        let _ = job.reply.send((job.replica, Err(err)));
                    }
                }
            }
        }
        let replica_handles: Vec<JoinHandle<()>> = {
            let mut replicas = lock_plain(&self.replicas);
            replicas.iter_mut().filter_map(Option::take).collect()
        };
        for handle in replica_handles {
            let _ = handle.join();
        }
        let handler_handles: Vec<JoinHandle<()>> = {
            let mut handlers = lock_plain(&self.inner.handlers);
            handlers.drain(..).collect()
        };
        for handle in handler_handles {
            let _ = handle.join();
        }
    }

    /// Stops accepting, fails queued work, and joins every spawned thread
    /// (accept loop, connection handlers, replicas). Idempotent; also runs
    /// on drop.
    pub fn shutdown(self) {
        let _span = embsr_obs::span("embsr_net", "server_shutdown");
        self.begin_shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}
