//! Consistent session-key sharding via rendezvous (highest-random-weight)
//! hashing.
//!
//! Each session is routed to the *alive* replica with the highest
//! pseudo-random weight `h(session_key, replica)`. Two properties make
//! this the right shape for replica routing:
//!
//! * **Determinism** — the same key always lands on the same replica while
//!   the alive set is unchanged, so per-session state (warm caches, future
//!   stickiness) has a stable home.
//! * **Minimal movement** — when a replica dies, only the keys that were
//!   mapped *to it* move (to their second-choice replica); every other
//!   key keeps its replica. Mod-N hashing would reshuffle nearly all keys.
//!
//! The weight function is SplitMix64 over the key XOR a per-replica
//! stream: cheap, dependency-free, and well-mixed enough that shards
//! balance to within sampling noise (the unit tests check both the
//! balance and the minimal-movement property).

/// SplitMix64: the 64-bit finalizer used across the workspace's test RNGs;
/// here it is the sharding hash.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rendezvous weight of `replica` for `session_key`.
pub fn weight(session_key: u64, replica: usize) -> u64 {
    // Mixing the replica id through SplitMix64 first gives each replica an
    // independent hash stream; XOR alone would correlate adjacent ids.
    splitmix64(session_key ^ splitmix64(replica as u64))
}

/// Picks the alive replica with the highest rendezvous weight for
/// `session_key`, or `None` when no replica is alive. `alive[i]` is
/// replica `i`'s liveness; indices are stable across deaths, which is what
/// preserves the minimal-movement property.
pub fn route(session_key: u64, alive: &[bool]) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for (idx, &up) in alive.iter().enumerate() {
        if !up {
            continue;
        }
        let w = weight(session_key, idx);
        // Strict > with ascending index scan: ties break to the lowest
        // index, deterministically.
        if best.map(|(bw, _)| w > bw).unwrap_or(true) {
            best = Some((w, idx));
        }
    }
    best.map(|(_, idx)| idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let alive = vec![true; 4];
        for key in 0..1000u64 {
            let a = route(key, &alive).expect("some replica");
            let b = route(key, &alive).expect("some replica");
            assert_eq!(a, b);
            assert!(a < 4);
        }
        assert_eq!(route(7, &[]), None);
        assert_eq!(route(7, &[false, false]), None);
    }

    #[test]
    fn shards_balance_within_sampling_noise() {
        let alive = vec![true; 4];
        let mut counts = [0usize; 4];
        let n = 40_000u64;
        for key in 0..n {
            counts[route(key, &alive).expect("alive")] += 1;
        }
        let expect = n as usize / 4;
        for (idx, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "replica {idx} holds {c} of {n} keys, expected ~{expect}"
            );
        }
    }

    #[test]
    fn replica_death_moves_only_its_own_keys() {
        let alive = vec![true; 4];
        let mut degraded = alive.clone();
        degraded[2] = false;
        let mut moved = 0usize;
        let mut owned_by_dead = 0usize;
        for key in 0..10_000u64 {
            let before = route(key, &alive).expect("alive");
            let after = route(key, &degraded).expect("alive");
            assert_ne!(after, 2, "dead replica must receive nothing");
            if before == 2 {
                owned_by_dead += 1;
            } else {
                assert_eq!(
                    before, after,
                    "key {key} moved despite its replica surviving"
                );
            }
            if before != after {
                moved += 1;
            }
        }
        assert_eq!(moved, owned_by_dead, "exactly the dead replica's keys move");
        assert!(owned_by_dead > 0, "shard 2 owned some keys");
    }

    #[test]
    fn revival_restores_the_original_assignment() {
        let alive = vec![true; 3];
        let mut degraded = alive.clone();
        degraded[0] = false;
        for key in 0..2_000u64 {
            let original = route(key, &alive).expect("alive");
            let _ = route(key, &degraded);
            assert_eq!(route(key, &alive).expect("alive"), original);
        }
    }
}
