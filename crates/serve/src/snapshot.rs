//! Reduced-precision weight snapshots: the `EMBSRSNP` binary format.
//!
//! A serving snapshot is a flat weight vector plus the serving horizon,
//! stored at a chosen precision:
//!
//! ```text
//! magic "EMBSRSNP" | u32 version | u8 precision | u64 max_session_len |
//!   u64 weight count | weights (f32 LE, or u16 LE half bits)
//! ```
//!
//! f16/bf16 snapshots are ~2× smaller on disk and on the wire. The cast is
//! absorbed **at freeze time**: [`quantize_weights`] rounds every weight to
//! the reduced grid and immediately widens it back to `f32`, and the frozen
//! model *serves those quantized values*. Because encode∘decode is
//! idempotent (grid points re-encode to the same bits — asserted in
//! `embsr_tensor::half`), a replica rebuilt anywhere from the snapshot bytes
//! is bitwise-identical to the master frozen model: the precision loss
//! happens exactly once, at freeze, never per hop.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use embsr_tensor::half;

const MAGIC: &[u8; 8] = b"EMBSRSNP";
const VERSION: u32 = 1;

/// Storage precision of a serving snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// Full `f32` weights: byte-exact with the trained parameters.
    F32,
    /// IEEE binary16: ~2× smaller, 11 significand bits.
    F16,
    /// bfloat16: ~2× smaller, f32's exponent range, 8 significand bits.
    Bf16,
}

impl Precision {
    /// Stable lower-case name, used in manifests, benches and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Bf16 => "bf16",
        }
    }

    /// Parses a precision name as produced by [`Precision::name`].
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f32" => Some(Precision::F32),
            "f16" => Some(Precision::F16),
            "bf16" => Some(Precision::Bf16),
            _ => None,
        }
    }

    /// Bytes each weight occupies in the encoded snapshot.
    pub fn bytes_per_weight(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F16 | Precision::Bf16 => 2,
        }
    }

    fn tag(self) -> u8 {
        match self {
            Precision::F32 => 0,
            Precision::F16 => 1,
            Precision::Bf16 => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Precision> {
        match tag {
            0 => Some(Precision::F32),
            1 => Some(Precision::F16),
            2 => Some(Precision::Bf16),
            _ => None,
        }
    }
}

/// Rounds every weight to the `precision` grid and widens back to `f32`.
/// Identity for [`Precision::F32`]; idempotent for all precisions.
pub fn quantize_weights(weights: &[f32], precision: Precision) -> Vec<f32> {
    let _span = embsr_obs::span("embsr_serve", "quantize_weights");
    match precision {
        Precision::F32 => weights.to_vec(),
        Precision::F16 => half::cast_f16_to_f32(&half::cast_f32_to_f16(weights)),
        Precision::Bf16 => half::cast_bf16_to_f32(&half::cast_f32_to_bf16(weights)),
    }
}

/// A snapshot decoded back to `f32` weights plus its stored metadata.
pub struct DecodedSnapshot {
    /// Widened weights — already on the `precision` grid, ready for
    /// `import_params`.
    pub weights: Vec<f32>,
    /// The serving horizon the snapshot was frozen with.
    pub max_session_len: usize,
    /// The precision the weights were stored at.
    pub precision: Precision,
}

/// Encodes weights into `EMBSRSNP` bytes. `weights` should already be on
/// the `precision` grid (the frozen model's are); encoding merely narrows
/// the representation.
pub fn encode_snapshot(weights: &[f32], max_session_len: usize, precision: Precision) -> Vec<u8> {
    let _span = embsr_obs::span("embsr_serve", "encode_snapshot");
    let header = MAGIC.len() + 4 + 1 + 8 + 8;
    let mut out = Vec::with_capacity(header + weights.len() * precision.bytes_per_weight());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(precision.tag());
    out.extend_from_slice(&(max_session_len as u64).to_le_bytes());
    out.extend_from_slice(&(weights.len() as u64).to_le_bytes());
    match precision {
        Precision::F32 => {
            for &v in weights {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Precision::F16 => {
            for b in half::cast_f32_to_f16(weights) {
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        Precision::Bf16 => {
            for b in half::cast_f32_to_bf16(weights) {
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
    }
    out
}

/// Decodes `EMBSRSNP` bytes, widening reduced-precision weights to `f32`.
///
/// # Errors
/// Fails on bad magic, unknown version/precision, or truncated data.
pub fn decode_snapshot(bytes: &[u8]) -> io::Result<DecodedSnapshot> {
    let _span = embsr_obs::span("embsr_serve", "decode_snapshot");
    let mut r = bytes;
    let mut magic = [0u8; 8];
    read_into(&mut r, &mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an EMBSR snapshot (bad magic)"));
    }
    let version = {
        let mut b = [0u8; 4];
        read_into(&mut r, &mut b)?;
        u32::from_le_bytes(b)
    };
    if version != VERSION {
        return Err(bad(&format!("unsupported snapshot version {version}")));
    }
    let mut tag = [0u8; 1];
    read_into(&mut r, &mut tag)?;
    let precision = Precision::from_tag(tag[0])
        .ok_or_else(|| bad(&format!("unknown precision tag {}", tag[0])))?;
    let max_session_len = read_u64(&mut r)? as usize;
    let count = read_u64(&mut r)? as usize;
    let expected = count * precision.bytes_per_weight();
    if r.len() != expected {
        return Err(bad(&format!(
            "snapshot payload is {} bytes, header promises {expected}",
            r.len()
        )));
    }
    let weights = match precision {
        Precision::F32 => r
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect(),
        Precision::F16 => r
            .chunks_exact(2)
            .map(|c| half::f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
            .collect(),
        Precision::Bf16 => r
            .chunks_exact(2)
            .map(|c| half::bf16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
            .collect(),
    };
    Ok(DecodedSnapshot {
        weights,
        max_session_len,
        precision,
    })
}

/// Writes an encoded snapshot to `path`.
pub fn save_snapshot(
    path: &Path,
    weights: &[f32],
    max_session_len: usize,
    precision: Precision,
) -> io::Result<()> {
    let _span = embsr_obs::span("embsr_serve", "save_snapshot");
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&encode_snapshot(weights, max_session_len, precision))?;
    w.flush()
}

/// Reads and decodes a snapshot from `path`.
pub fn load_snapshot(path: &Path) -> io::Result<DecodedSnapshot> {
    let _span = embsr_obs::span("embsr_serve", "load_snapshot");
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_snapshot(&bytes)
}

fn read_into(r: &mut &[u8], buf: &mut [u8]) -> io::Result<()> {
    Read::read_exact(r, buf)
}

fn read_u64(r: &mut &[u8]) -> io::Result<u64> {
    let mut b = [0u8; 8];
    read_into(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_weights() -> Vec<f32> {
        (0..517).map(|i| (i as f32 * 0.173).sin() * 3.0).collect()
    }

    #[test]
    fn f32_round_trip_is_byte_exact() {
        let ws = toy_weights();
        let enc = encode_snapshot(&ws, 48, Precision::F32);
        let dec = decode_snapshot(&enc).unwrap();
        assert_eq!(dec.max_session_len, 48);
        assert_eq!(dec.precision, Precision::F32);
        let a: Vec<u32> = ws.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = dec.weights.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn reduced_snapshots_are_half_the_size() {
        let ws = toy_weights();
        let full = encode_snapshot(&ws, 32, Precision::F32).len();
        for p in [Precision::F16, Precision::Bf16] {
            let reduced = encode_snapshot(&ws, 32, p).len();
            // payload exactly halves; the 29-byte header bounds the ratio
            assert_eq!(reduced, full - ws.len() * 2, "{p:?}");
            assert!((full as f64 / reduced as f64) > 1.9, "{p:?}: {full} vs {reduced}");
        }
    }

    #[test]
    fn quantize_then_encode_is_stable_across_hops() {
        // Master quantizes once; every further encode/decode hop must be
        // byte-identical (this is what makes remote replicas bitwise-equal).
        let ws = toy_weights();
        for p in [Precision::F16, Precision::Bf16] {
            let q = quantize_weights(&ws, p);
            let hop1 = encode_snapshot(&q, 32, p);
            let dec1 = decode_snapshot(&hop1).unwrap();
            let hop2 = encode_snapshot(&dec1.weights, 32, p);
            assert_eq!(hop1, hop2, "{p:?} re-encode drifted");
            let q_bits: Vec<u32> = q.iter().map(|v| v.to_bits()).collect();
            let d_bits: Vec<u32> = dec1.weights.iter().map(|v| v.to_bits()).collect();
            assert_eq!(q_bits, d_bits, "{p:?} decode drifted from quantized master");
        }
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let ws = toy_weights();
        let enc = encode_snapshot(&ws, 32, Precision::Bf16);
        assert!(decode_snapshot(&enc[..10]).is_err(), "truncated header");
        assert!(decode_snapshot(&enc[..enc.len() - 3]).is_err(), "truncated payload");
        let mut bad_magic = enc.clone();
        bad_magic[0] = b'X';
        assert!(decode_snapshot(&bad_magic).is_err());
        let mut bad_tag = enc.clone();
        bad_tag[12] = 9;
        assert!(decode_snapshot(&bad_tag).is_err());
    }

    #[test]
    fn precision_names_round_trip() {
        for p in [Precision::F32, Precision::F16, Precision::Bf16] {
            assert_eq!(Precision::parse(p.name()), Some(p));
        }
        assert_eq!(Precision::parse("f64"), None);
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let ws = toy_weights();
        let q = quantize_weights(&ws, Precision::F16);
        let path = std::env::temp_dir().join(format!("embsr_snap_{}.snp", std::process::id()));
        save_snapshot(&path, &q, 24, Precision::F16).unwrap();
        let on_disk = std::fs::metadata(&path).unwrap().len() as usize;
        assert_eq!(on_disk, 29 + ws.len() * 2, "header + u16 payload");
        let dec = load_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(dec.max_session_len, 24);
        assert_eq!(dec.precision, Precision::F16);
        let a: Vec<u32> = q.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = dec.weights.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }
}
