//! # embsr-serve
//!
//! The serving layer: batched, tape-free inference behind a batch-first
//! prediction API.
//!
//! * [`FrozenModel`] — a [`SessionModel`](embsr_train::SessionModel) frozen
//!   for inference: weights captured as a flat snapshot (`export_params`),
//!   every forward wrapped in `embsr_tensor::inference_mode` so no autograd
//!   tape is recorded and activations recycle through the buffer pool.
//! * [`ScoreBatch`] / [`TopK`] — the request/response pairs: full-vocabulary
//!   score rows for the eval harness, top-`k` recommendations for an
//!   endpoint.
//! * [`serve`] — a micro-batching engine on `embsr-pool` workers: requests
//!   from concurrent callers coalesce into batches of up to
//!   [`EngineConfig::max_batch`] sessions, held open at most
//!   [`EngineConfig::flush_deadline_us`]; latency, batch-occupancy and
//!   queue-depth land in `embsr_obs` histograms, and when request tracing
//!   is on ([`embsr_obs::trace`]) every request emits a reconstructable
//!   span tree (`score_request` → `queue_wait` / `batch_assembly` /
//!   `scoring`, plus `top_k` selection).
//!
//! Serving defaults to the **vectorized kernel tier** with optional
//! f16/bf16 frozen snapshots ([`snapshot`]). The equivalence contract is
//! tiered (`tests/serving_equivalence.rs`): batched-vs-single stays
//! **bitwise** within any tier (GEMM rows are independent reductions, so
//! batching changes throughput, never scores); the packed tier stays
//! bitwise with the taped training path; the vectorized tier and reduced
//! precisions are epsilon-gated with **exact Hit@20/MRR@20 identity**.

mod api;
mod cache;
mod engine;
mod frozen;
pub mod snapshot;

pub use api::{top_k_of_row, ScoreBatch, ScoreResponse, ScoredItem, TopK, TopKResponse};
pub use cache::{
    CacheStats, ReprCache, METRIC_CACHE_BYTES, METRIC_CACHE_EVICTIONS, METRIC_CACHE_HITS,
    METRIC_CACHE_MISSES,
};
pub use engine::{
    serve, Client, EngineConfig, EngineStatus, ServeError, SubmitOptions, SwapError,
    METRIC_BATCH_SESSIONS, METRIC_DEADLINE_EXPIRED, METRIC_QUEUE_DEPTH, METRIC_REJECTED,
    METRIC_REQUEST_LATENCY_US, METRIC_SESSIONS_SCORED, METRIC_SNAPSHOT_SWAPS,
};
pub use frozen::FrozenModel;
pub use snapshot::Precision;
// downstream crates (embsr-net) pick tiers without a direct tensor edge
pub use embsr_tensor::kernels::KernelTier;

#[cfg(test)]
pub(crate) mod testing {
    use embsr_sessions::{MicroBehavior, Session};
    use embsr_tensor::{uniform_init, Rng, Tensor};
    use embsr_train::SessionModel;

    /// Minimal deterministic model: logits are the mean of the weight rows
    /// of the session's items, so scores depend on the whole (truncated)
    /// session and on the weights — enough to catch snapshot or batching
    /// mix-ups.
    pub struct ToyModel {
        weight: Tensor,
        num_items: usize,
    }

    impl ToyModel {
        pub fn new(num_items: usize, seed: u64) -> Self {
            let mut rng = Rng::seed_from_u64(seed);
            ToyModel {
                weight: uniform_init(&[num_items, num_items], &mut rng),
                num_items,
            }
        }
    }

    impl SessionModel for ToyModel {
        fn name(&self) -> &str {
            "Toy"
        }
        fn num_items(&self) -> usize {
            self.num_items
        }
        fn parameters(&self) -> Vec<Tensor> {
            vec![self.weight.clone()]
        }
        fn logits(&self, session: &Session, _training: bool, _rng: &mut Rng) -> Tensor {
            let idx: Vec<usize> = session.events.iter().map(|e| e.item as usize).collect();
            assert!(!idx.is_empty(), "empty session");
            self.weight.gather_rows(&idx).mean_rows()
        }
    }

    /// [`ToyModel`] with the repr seam: the "representation" is the logits
    /// row itself and the final GEMM is the identity, which satisfies the
    /// bitwise factoring contract trivially. Exercises the cached scoring
    /// path (plain `ToyModel` keeps the seamless default and exercises the
    /// fallback).
    pub struct ReprToyModel(pub ToyModel);

    impl SessionModel for ReprToyModel {
        fn name(&self) -> &str {
            "ReprToy"
        }
        fn num_items(&self) -> usize {
            self.0.num_items()
        }
        fn parameters(&self) -> Vec<Tensor> {
            self.0.parameters()
        }
        fn logits(&self, session: &Session, training: bool, rng: &mut Rng) -> Tensor {
            self.0.logits(session, training, rng)
        }
        fn repr_infer(&self, session: &Session) -> Option<Tensor> {
            Some(self.logits_infer(session))
        }
        fn logits_of_reprs(&self, reprs: &Tensor) -> Option<Tensor> {
            Some(reprs.clone())
        }
    }

    pub fn sess(items: &[u32]) -> Session {
        Session {
            id: 0,
            events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
        }
    }
}
