//! Frozen model snapshots for inference.

use std::cell::Cell;
use std::io;
use std::path::Path;

use embsr_sessions::Session;
use embsr_tensor::kernels::{self, KernelTier};
use embsr_tensor::{export_params, import_params, inference_mode, Tensor};
use embsr_train::{truncate_session, SessionModel};

use crate::api::{top_k_of_row, ScoredItem};
use crate::cache::ReprCache;
use crate::snapshot::{self, Precision};

/// A [`SessionModel`] frozen for serving: the weights are captured as a flat
/// `f32` snapshot (via `export_params`) and every forward runs tape-free
/// inside [`inference_mode`], so scoring records no autograd graph and
/// recycles activations through the tensor buffer pool.
///
/// Serving runs on the vectorized kernel tier by default
/// ([`KernelTier::Simd`]): scores are epsilon-close to the scalar-reference
/// training numerics and deterministic for a given build, but not bitwise
/// equal to the taped path. Call [`FrozenModel::set_tier`] with
/// [`KernelTier::Packed`] to recover the bitwise contract (the packed tier is
/// pinned to the scalar reference).
///
/// Freezing can also quantize weights to f16/bf16
/// ([`FrozenModel::freeze_with_precision`]): the rounding happens **once**,
/// at freeze — the frozen model serves the quantized values, so replicas
/// rebuilt from the snapshot anywhere are bitwise-identical to the master.
///
/// The snapshot is plain `Send + Sync` data; worker threads replicate the
/// model by constructing a fresh instance and calling
/// [`FrozenModel::from_snapshot`] (tensors are `Rc`-backed and cannot cross
/// threads themselves).
pub struct FrozenModel<M: SessionModel> {
    model: M,
    snapshot: Vec<f32>,
    max_session_len: usize,
    tier: KernelTier,
    precision: Precision,
    /// Whether the model exposes the repr seam (`SessionModel::repr_infer`),
    /// probed lazily on the first cached scoring call. `None` = unknown.
    repr_capable: Cell<Option<bool>>,
}

impl<M: SessionModel> FrozenModel<M> {
    /// Freezes `model` as-is, capturing its current weights at full `f32`
    /// precision. Sessions longer than `max_session_len` micro-behaviors are
    /// truncated to their suffix before scoring, matching the training-time
    /// protocol.
    pub fn freeze(model: M, max_session_len: usize) -> Self {
        Self::freeze_with_precision(model, max_session_len, Precision::F32)
    }

    /// Freezes `model`, rounding every weight to the `precision` grid. For
    /// [`Precision::F16`] / [`Precision::Bf16`] the snapshot serializes at
    /// half the size ([`FrozenModel::snapshot_bytes`]) and the model's
    /// working weights **are** the quantized values — the precision loss
    /// happens here, exactly once, never again per snapshot hop.
    pub fn freeze_with_precision(model: M, max_session_len: usize, precision: Precision) -> Self {
        let _span = embsr_obs::span("embsr_serve", "freeze");
        let snapshot = snapshot::quantize_weights(&export_params(&model.parameters()), precision);
        if precision != Precision::F32 {
            import_params(&model.parameters(), &snapshot);
        }
        FrozenModel {
            model,
            snapshot,
            max_session_len,
            tier: KernelTier::Simd,
            precision,
            repr_capable: Cell::new(None),
        }
    }

    /// Rebuilds a frozen replica from a weight snapshot taken by
    /// [`FrozenModel::freeze`] on an architecturally identical model
    /// (same constructor arguments — the flat layout must match).
    pub fn from_snapshot(model: M, snapshot: &[f32], max_session_len: usize) -> Self {
        let _span = embsr_obs::span("embsr_serve", "from_snapshot");
        import_params(&model.parameters(), snapshot);
        FrozenModel {
            model,
            snapshot: snapshot.to_vec(),
            max_session_len,
            tier: KernelTier::Simd,
            precision: Precision::F32,
            repr_capable: Cell::new(None),
        }
    }

    /// Replaces the weights (and horizon) of a live replica in place — the
    /// zero-downtime hot-swap primitive. The model instance, kernel tier
    /// and any caller-held state survive; only the parameters change. The
    /// new snapshot must match the model's flat parameter layout.
    ///
    /// # Errors
    /// Fails (leaving the replica untouched) when the weight count differs
    /// from the model's layout.
    pub fn swap_snapshot(
        &mut self,
        snapshot: &[f32],
        max_session_len: usize,
        precision: Precision,
    ) -> io::Result<()> {
        let _span = embsr_obs::span("embsr_serve", "swap_snapshot");
        let expected: usize = self.model.parameters().iter().map(|p| p.len()).sum();
        if snapshot.len() != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "snapshot has {} weights, model expects {expected}",
                    snapshot.len()
                ),
            ));
        }
        import_params(&self.model.parameters(), snapshot);
        self.snapshot = snapshot.to_vec();
        self.max_session_len = max_session_len;
        self.precision = precision;
        Ok(())
    }

    /// Rebuilds a frozen replica from serialized `EMBSRSNP` bytes
    /// ([`FrozenModel::snapshot_bytes`]), restoring the stored horizon and
    /// precision. This is the wire format: reduced-precision snapshots ship
    /// at half the bytes and decode to the exact quantized weights the
    /// master serves.
    ///
    /// # Errors
    /// Fails on malformed bytes or a weight count that does not match the
    /// model's parameter layout.
    pub fn from_snapshot_bytes(model: M, bytes: &[u8]) -> io::Result<Self> {
        let _span = embsr_obs::span("embsr_serve", "from_snapshot_bytes");
        let dec = snapshot::decode_snapshot(bytes)?;
        let expected: usize = model.parameters().iter().map(|p| p.len()).sum();
        if dec.weights.len() != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "snapshot has {} weights, model expects {expected}",
                    dec.weights.len()
                ),
            ));
        }
        let mut frozen = Self::from_snapshot(model, &dec.weights, dec.max_session_len);
        frozen.precision = dec.precision;
        Ok(frozen)
    }

    /// Serializes the frozen model to `EMBSRSNP` bytes at its freeze
    /// precision (reduced precisions re-narrow losslessly — the working
    /// weights already sit on the grid).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let _span = embsr_obs::span("embsr_serve", "snapshot_bytes");
        snapshot::encode_snapshot(&self.snapshot, self.max_session_len, self.precision)
    }

    /// Writes the serialized snapshot to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let _span = embsr_obs::span("embsr_serve", "save");
        snapshot::save_snapshot(path, &self.snapshot, self.max_session_len, self.precision)
    }

    /// Loads a snapshot saved by [`FrozenModel::save`] into a fresh,
    /// architecturally identical model.
    ///
    /// # Errors
    /// Fails on I/O errors, malformed bytes, or a layout mismatch.
    pub fn load(model: M, path: &Path) -> io::Result<Self> {
        let _span = embsr_obs::span("embsr_serve", "load");
        let dec = snapshot::load_snapshot(path)?;
        Self::from_snapshot_bytes(
            model,
            &snapshot::encode_snapshot(&dec.weights, dec.max_session_len, dec.precision),
        )
    }

    /// The flat weight snapshot (feed to [`FrozenModel::from_snapshot`]).
    /// For reduced-precision freezes these are the quantized values widened
    /// to `f32`.
    pub fn snapshot(&self) -> &[f32] {
        &self.snapshot
    }

    /// The session-truncation horizon.
    pub fn max_session_len(&self) -> usize {
        self.max_session_len
    }

    /// The kernel tier scoring runs under ([`KernelTier::Simd`] by default).
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// Selects the kernel tier for scoring. [`KernelTier::Packed`] restores
    /// bitwise equality with the taped training forward; [`KernelTier::Simd`]
    /// (the default) trades that for vectorized throughput while staying
    /// epsilon-equivalent and rank-preserving.
    pub fn set_tier(&mut self, tier: KernelTier) {
        self.tier = tier;
    }

    /// The precision the weights were frozen at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Model name.
    pub fn name(&self) -> &str {
        self.model.name()
    }

    /// Item vocabulary size `|V|`.
    pub fn num_items(&self) -> usize {
        self.model.num_items()
    }

    /// Scores the full vocabulary for one session, tape-free.
    ///
    /// An empty session carries no evidence to condition on; it yields an
    /// empty row (mirroring the eval harness, which skips empty prefixes)
    /// rather than tripping a model assert on a serving thread.
    pub fn score(&self, session: &Session) -> Vec<f32> {
        if session.is_empty() {
            return Vec::new();
        }
        let _span =
            embsr_obs::span("embsr_serve", "score").with_close_level(embsr_obs::Level::Trace);
        let truncated = truncate_session(session, self.max_session_len);
        kernels::with_tier(self.tier, || {
            inference_mode(|| self.model.logits_infer(&truncated)).to_vec()
        })
    }

    /// Scores the full vocabulary for a batch of sessions, tape-free and
    /// batched: one `num_items`-length row per session, in input order.
    ///
    /// Row `i` is bitwise-equal to `self.score(&sessions[i])` **at the same
    /// tier** — the batched forward shares the item-table pass across the
    /// batch but computes each row with the same per-row reduction order as
    /// the per-session path. Empty sessions get an empty row, like
    /// [`FrozenModel::score`].
    pub fn score_batch(&self, sessions: &[Session]) -> Vec<Vec<f32>> {
        let _span = embsr_obs::span("embsr_serve", "score_batch")
            .with_close_level(embsr_obs::Level::Trace);
        let truncated: Vec<Session> = sessions
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| truncate_session(s, self.max_session_len))
            .collect();
        if truncated.is_empty() {
            return sessions.iter().map(|_| Vec::new()).collect();
        }
        let refs: Vec<&Session> = truncated.iter().collect();
        let logits =
            kernels::with_tier(self.tier, || inference_mode(|| self.model.logits_batch(&refs)));
        let v = self.model.num_items();
        assert_eq!(logits.rows(), refs.len(), "one logit row per session");
        assert_eq!(logits.cols(), v, "full-vocabulary rows");
        let flat = logits.to_vec();
        // One chunk per non-empty session, guaranteed by the row assert above.
        let mut scored = flat.chunks(v).map(|row| row.to_vec());
        sessions
            .iter()
            .map(|s| {
                if s.is_empty() {
                    Vec::new()
                } else {
                    scored.next().unwrap_or_default()
                }
            })
            .collect()
    }

    /// [`FrozenModel::score_batch`] through the session-repr cache: each
    /// non-empty session's representation is either a cache hit (the
    /// encoder is skipped entirely) or computed via
    /// [`SessionModel::repr_infer`] and inserted; the batch then runs the
    /// same final logits GEMM as the uncached path.
    ///
    /// **Bitwise contract:** every row equals the `score_batch` row at the
    /// same tier. Hits replay the exact `f32` values the encoder produced
    /// (keys verify the exact event sequence, so a hash collision is a
    /// miss, never a wrong answer), and the GEMM consumes identical inputs
    /// either way. Models without the repr seam fall back to
    /// [`FrozenModel::score_batch`] transparently.
    pub fn score_batch_cached(
        &self,
        sessions: &[Session],
        cache: &ReprCache,
        version: u64,
    ) -> Vec<Vec<f32>> {
        if self.repr_capable.get() == Some(false) {
            return self.score_batch(sessions);
        }
        let _span = embsr_obs::span("embsr_serve", "score_batch_cached")
            .with_close_level(embsr_obs::Level::Trace);
        let truncated: Vec<Session> = sessions
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| truncate_session(s, self.max_session_len))
            .collect();
        if truncated.is_empty() {
            return sessions.iter().map(|_| Vec::new()).collect();
        }
        // Probe the seam once per replica; models that keep the default
        // `repr_infer = None` use the plain batched path forever after.
        if self.repr_capable.get().is_none() {
            let capable = kernels::with_tier(self.tier, || {
                inference_mode(|| self.model.repr_infer(&truncated[0]).is_some())
            });
            self.repr_capable.set(Some(capable));
            if !capable {
                return self.score_batch(sessions);
            }
        }
        let logits: Option<embsr_tensor::Tensor> = kernels::with_tier(self.tier, || {
            inference_mode(|| {
                let mut rows: Vec<Tensor> = Vec::with_capacity(truncated.len());
                for s in &truncated {
                    let repr = match cache.lookup(version, &s.events) {
                        Some(v) => {
                            let d = v.len();
                            Tensor::from_vec(v, &[d])
                        }
                        None => {
                            let r = self.model.repr_infer(s)?;
                            cache.insert(version, &s.events, r.to_vec());
                            r
                        }
                    };
                    rows.push(repr);
                }
                self.model.logits_of_reprs(&Tensor::stack_rows(&rows))
            })
        });
        let logits = match logits {
            Some(l) => l,
            // An override answering `repr_infer` but not `logits_of_reprs`
            // (or vice versa) violates the seam contract; serve correctly
            // anyway via the uncached path.
            None => return self.score_batch(sessions),
        };
        let v = self.model.num_items();
        assert_eq!(logits.rows(), truncated.len(), "one logit row per session");
        assert_eq!(logits.cols(), v, "full-vocabulary rows");
        let flat = logits.to_vec();
        let mut scored = flat.chunks(v).map(|row| row.to_vec());
        sessions
            .iter()
            .map(|s| {
                if s.is_empty() {
                    Vec::new()
                } else {
                    scored.next().unwrap_or_default()
                }
            })
            .collect()
    }

    /// The `k` best items per session, best-first (ties broken by ascending
    /// item id).
    pub fn top_k(&self, sessions: &[Session], k: usize) -> Vec<Vec<ScoredItem>> {
        let _span =
            embsr_obs::span("embsr_serve", "top_k").with_close_level(embsr_obs::Level::Trace);
        self.score_batch(sessions)
            .iter()
            .map(|row| top_k_of_row(row, k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{sess, ReprToyModel, ToyModel};

    #[test]
    fn snapshot_round_trips_weights() {
        let frozen = FrozenModel::freeze(ToyModel::new(6, 7), 32);
        let replica = FrozenModel::from_snapshot(ToyModel::new(6, 99), frozen.snapshot(), 32);
        let s = sess(&[1, 3]);
        assert_eq!(frozen.score(&s), replica.score(&s));
        assert_eq!(frozen.num_items(), 6);
        assert_eq!(frozen.tier(), KernelTier::Simd);
        assert_eq!(frozen.precision(), Precision::F32);
    }

    #[test]
    fn batched_rows_match_single_scores() {
        let frozen = FrozenModel::freeze(ToyModel::new(8, 3), 32);
        let sessions = vec![sess(&[1]), sess(&[2, 5]), sess(&[7, 0, 4])];
        let rows = frozen.score_batch(&sessions);
        assert_eq!(rows.len(), 3);
        for (s, row) in sessions.iter().zip(&rows) {
            assert_eq!(row, &frozen.score(s));
        }
        assert!(frozen.score_batch(&[]).is_empty());
    }

    #[test]
    fn empty_sessions_score_as_empty_rows() {
        let frozen = FrozenModel::freeze(ToyModel::new(5, 6), 32);
        assert!(frozen.score(&sess(&[])).is_empty());
        let rows = frozen.score_batch(&[sess(&[]), sess(&[1, 2]), sess(&[])]);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].is_empty());
        assert_eq!(rows[1], frozen.score(&sess(&[1, 2])));
        assert!(rows[2].is_empty());
        // all-empty batches skip the forward entirely
        assert_eq!(frozen.score_batch(&[sess(&[])]), vec![Vec::<f32>::new()]);
    }

    #[test]
    fn top_k_orders_by_score() {
        let frozen = FrozenModel::freeze(ToyModel::new(5, 1), 32);
        let recs = frozen.top_k(&[sess(&[2])], 3);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].len(), 3);
        assert!(recs[0][0].score >= recs[0][1].score);
    }

    #[test]
    fn long_sessions_are_truncated_to_the_horizon() {
        let frozen = FrozenModel::freeze(ToyModel::new(4, 2), 2);
        // with max_session_len = 2 only the last two events matter
        let long = sess(&[3, 3, 3, 1, 2]);
        let short = sess(&[1, 2]);
        assert_eq!(frozen.score(&long), frozen.score(&short));
    }

    #[test]
    fn tier_override_changes_dispatch_not_ranking() {
        let mut packed = FrozenModel::freeze(ToyModel::new(16, 9), 32);
        packed.set_tier(KernelTier::Packed);
        let simd = FrozenModel::freeze(ToyModel::new(16, 9), 32);
        let s = sess(&[3, 1, 4, 1, 5]);
        let a = packed.score(&s);
        let b = simd.score(&s);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn reduced_precision_freeze_serves_quantized_weights() {
        for p in [Precision::F16, Precision::Bf16] {
            let frozen = FrozenModel::freeze_with_precision(ToyModel::new(6, 7), 32, p);
            assert_eq!(frozen.precision(), p);
            // working weights == snapshot (the quantized grid), so a replica
            // rebuilt from the f32 snapshot scores bitwise-identically
            let replica = FrozenModel::from_snapshot(ToyModel::new(6, 99), frozen.snapshot(), 32);
            let s = sess(&[1, 3, 2]);
            assert_eq!(frozen.score(&s), replica.score(&s));
        }
    }

    #[test]
    fn snapshot_bytes_round_trip_preserves_scores_and_size() {
        // big enough that the 29-byte header doesn't mask the 2× payload
        let full = FrozenModel::freeze(ToyModel::new(64, 7), 16);
        let half = FrozenModel::freeze_with_precision(ToyModel::new(64, 7), 16, Precision::F16);
        let full_bytes = full.snapshot_bytes();
        let half_bytes = half.snapshot_bytes();
        assert!(
            (full_bytes.len() as f64 / half_bytes.len() as f64) > 1.9,
            "{} vs {}",
            full_bytes.len(),
            half_bytes.len()
        );
        let replica = FrozenModel::from_snapshot_bytes(ToyModel::new(64, 99), &half_bytes).unwrap();
        assert_eq!(replica.precision(), Precision::F16);
        assert_eq!(replica.max_session_len(), 16);
        let s = sess(&[4, 2]);
        assert_eq!(half.score(&s), replica.score(&s));
        // layout mismatch is rejected, not mis-imported
        assert!(FrozenModel::from_snapshot_bytes(ToyModel::new(7, 0), &half_bytes).is_err());
    }

    #[test]
    fn swap_snapshot_replaces_weights_in_place() {
        let next = FrozenModel::freeze(ToyModel::new(6, 8), 16);
        let mut live = FrozenModel::freeze(ToyModel::new(6, 7), 32);
        let s = sess(&[1, 3]);
        let before = live.score(&s);
        live.swap_snapshot(next.snapshot(), next.max_session_len(), next.precision())
            .unwrap();
        assert_eq!(live.score(&s), next.score(&s));
        assert_ne!(live.score(&s), before);
        assert_eq!(live.max_session_len(), 16);
        // a wrong-layout snapshot is rejected and the replica is untouched
        let wrong = FrozenModel::freeze(ToyModel::new(9, 0), 16);
        assert!(live
            .swap_snapshot(wrong.snapshot(), 16, Precision::F32)
            .is_err());
        assert_eq!(live.score(&s), next.score(&s));
    }

    #[test]
    fn cached_scores_are_bitwise_equal_cold_and_warm() {
        let frozen = FrozenModel::freeze(ReprToyModel(ToyModel::new(8, 3)), 32);
        let cache = crate::cache::ReprCache::new(64);
        let sessions = vec![sess(&[1]), sess(&[2, 5]), sess(&[]), sess(&[7, 0, 4])];
        let plain = frozen.score_batch(&sessions);
        let cold = frozen.score_batch_cached(&sessions, &cache, 1);
        let warm = frozen.score_batch_cached(&sessions, &cache, 1);
        for (p, (c, w)) in plain.iter().zip(cold.iter().zip(&warm)) {
            let pb: Vec<u32> = p.iter().map(|x| x.to_bits()).collect();
            assert_eq!(pb, c.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
            assert_eq!(pb, w.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
        }
        let stats = cache.stats();
        assert!(stats.hits >= 3, "warm pass should hit: {stats:?}");
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn models_without_the_repr_seam_fall_back_to_uncached_scoring() {
        let frozen = FrozenModel::freeze(ToyModel::new(8, 3), 32);
        let cache = crate::cache::ReprCache::new(64);
        let sessions = vec![sess(&[1]), sess(&[2, 5])];
        assert_eq!(
            frozen.score_batch_cached(&sessions, &cache, 1),
            frozen.score_batch(&sessions)
        );
        // second call takes the remembered-incapable early exit
        assert_eq!(
            frozen.score_batch_cached(&sessions, &cache, 1),
            frozen.score_batch(&sessions)
        );
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let frozen =
            FrozenModel::freeze_with_precision(ToyModel::new(5, 11), 8, Precision::Bf16);
        let path = std::env::temp_dir().join(format!("embsr_frozen_{}.snp", std::process::id()));
        frozen.save(&path).unwrap();
        let loaded = FrozenModel::load(ToyModel::new(5, 0), &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.precision(), Precision::Bf16);
        assert_eq!(loaded.max_session_len(), 8);
        let s = sess(&[1, 4]);
        assert_eq!(frozen.score(&s), loaded.score(&s));
    }
}
