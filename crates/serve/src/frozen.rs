//! Frozen model snapshots for inference.

use embsr_sessions::Session;
use embsr_tensor::{export_params, import_params, inference_mode};
use embsr_train::{truncate_session, SessionModel};

use crate::api::{top_k_of_row, ScoredItem};

/// A [`SessionModel`] frozen for serving: the weights are captured as a flat
/// `f32` snapshot (via `export_params`) and every forward runs tape-free
/// inside [`inference_mode`], so scoring records no autograd graph and
/// recycles activations through the tensor buffer pool.
///
/// The snapshot is plain `Send + Sync` data; worker threads replicate the
/// model by constructing a fresh instance and calling
/// [`FrozenModel::from_snapshot`] (tensors are `Rc`-backed and cannot cross
/// threads themselves).
pub struct FrozenModel<M: SessionModel> {
    model: M,
    snapshot: Vec<f32>,
    max_session_len: usize,
}

impl<M: SessionModel> FrozenModel<M> {
    /// Freezes `model` as-is, capturing its current weights. Sessions longer
    /// than `max_session_len` micro-behaviors are truncated to their suffix
    /// before scoring, matching the training-time protocol.
    pub fn freeze(model: M, max_session_len: usize) -> Self {
        let _span = embsr_obs::span("embsr_serve", "freeze");
        let snapshot = export_params(&model.parameters());
        FrozenModel {
            model,
            snapshot,
            max_session_len,
        }
    }

    /// Rebuilds a frozen replica from a weight snapshot taken by
    /// [`FrozenModel::freeze`] on an architecturally identical model
    /// (same constructor arguments — the flat layout must match).
    pub fn from_snapshot(model: M, snapshot: &[f32], max_session_len: usize) -> Self {
        let _span = embsr_obs::span("embsr_serve", "from_snapshot");
        import_params(&model.parameters(), snapshot);
        FrozenModel {
            model,
            snapshot: snapshot.to_vec(),
            max_session_len,
        }
    }

    /// The flat weight snapshot (feed to [`FrozenModel::from_snapshot`]).
    pub fn snapshot(&self) -> &[f32] {
        &self.snapshot
    }

    /// The session-truncation horizon.
    pub fn max_session_len(&self) -> usize {
        self.max_session_len
    }

    /// Model name.
    pub fn name(&self) -> &str {
        self.model.name()
    }

    /// Item vocabulary size `|V|`.
    pub fn num_items(&self) -> usize {
        self.model.num_items()
    }

    /// Scores the full vocabulary for one session, tape-free.
    ///
    /// An empty session carries no evidence to condition on; it yields an
    /// empty row (mirroring the eval harness, which skips empty prefixes)
    /// rather than tripping a model assert on a serving thread.
    pub fn score(&self, session: &Session) -> Vec<f32> {
        if session.is_empty() {
            return Vec::new();
        }
        let _span =
            embsr_obs::span("embsr_serve", "score").with_close_level(embsr_obs::Level::Trace);
        let truncated = truncate_session(session, self.max_session_len);
        inference_mode(|| self.model.logits_infer(&truncated)).to_vec()
    }

    /// Scores the full vocabulary for a batch of sessions, tape-free and
    /// batched: one `num_items`-length row per session, in input order.
    ///
    /// Row `i` is bitwise-equal to `self.score(&sessions[i])` — the batched
    /// forward shares the item-table pass across the batch but computes each
    /// row with the same sequential dot products as the per-session path.
    /// Empty sessions get an empty row, like [`FrozenModel::score`].
    pub fn score_batch(&self, sessions: &[Session]) -> Vec<Vec<f32>> {
        let _span = embsr_obs::span("embsr_serve", "score_batch")
            .with_close_level(embsr_obs::Level::Trace);
        let truncated: Vec<Session> = sessions
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| truncate_session(s, self.max_session_len))
            .collect();
        if truncated.is_empty() {
            return sessions.iter().map(|_| Vec::new()).collect();
        }
        let refs: Vec<&Session> = truncated.iter().collect();
        let logits = inference_mode(|| self.model.logits_batch(&refs));
        let v = self.model.num_items();
        assert_eq!(logits.rows(), refs.len(), "one logit row per session");
        assert_eq!(logits.cols(), v, "full-vocabulary rows");
        let flat = logits.to_vec();
        // One chunk per non-empty session, guaranteed by the row assert above.
        let mut scored = flat.chunks(v).map(|row| row.to_vec());
        sessions
            .iter()
            .map(|s| {
                if s.is_empty() {
                    Vec::new()
                } else {
                    scored.next().unwrap_or_default()
                }
            })
            .collect()
    }

    /// The `k` best items per session, best-first (ties broken by ascending
    /// item id).
    pub fn top_k(&self, sessions: &[Session], k: usize) -> Vec<Vec<ScoredItem>> {
        let _span =
            embsr_obs::span("embsr_serve", "top_k").with_close_level(embsr_obs::Level::Trace);
        self.score_batch(sessions)
            .iter()
            .map(|row| top_k_of_row(row, k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{sess, ToyModel};

    #[test]
    fn snapshot_round_trips_weights() {
        let frozen = FrozenModel::freeze(ToyModel::new(6, 7), 32);
        let replica = FrozenModel::from_snapshot(ToyModel::new(6, 99), frozen.snapshot(), 32);
        let s = sess(&[1, 3]);
        assert_eq!(frozen.score(&s), replica.score(&s));
        assert_eq!(frozen.num_items(), 6);
    }

    #[test]
    fn batched_rows_match_single_scores() {
        let frozen = FrozenModel::freeze(ToyModel::new(8, 3), 32);
        let sessions = vec![sess(&[1]), sess(&[2, 5]), sess(&[7, 0, 4])];
        let rows = frozen.score_batch(&sessions);
        assert_eq!(rows.len(), 3);
        for (s, row) in sessions.iter().zip(&rows) {
            assert_eq!(row, &frozen.score(s));
        }
        assert!(frozen.score_batch(&[]).is_empty());
    }

    #[test]
    fn empty_sessions_score_as_empty_rows() {
        let frozen = FrozenModel::freeze(ToyModel::new(5, 6), 32);
        assert!(frozen.score(&sess(&[])).is_empty());
        let rows = frozen.score_batch(&[sess(&[]), sess(&[1, 2]), sess(&[])]);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].is_empty());
        assert_eq!(rows[1], frozen.score(&sess(&[1, 2])));
        assert!(rows[2].is_empty());
        // all-empty batches skip the forward entirely
        assert_eq!(frozen.score_batch(&[sess(&[])]), vec![Vec::<f32>::new()]);
    }

    #[test]
    fn top_k_orders_by_score() {
        let frozen = FrozenModel::freeze(ToyModel::new(5, 1), 32);
        let recs = frozen.top_k(&[sess(&[2])], 3);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].len(), 3);
        assert!(recs[0][0].score >= recs[0][1].score);
    }

    #[test]
    fn long_sessions_are_truncated_to_the_horizon() {
        let frozen = FrozenModel::freeze(ToyModel::new(4, 2), 2);
        // with max_session_len = 2 only the last two events matter
        let long = sess(&[3, 3, 3, 1, 2]);
        let short = sess(&[1, 2]);
        assert_eq!(frozen.score(&long), frozen.score(&short));
    }
}
