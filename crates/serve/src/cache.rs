//! The session-representation cache: an LRU keyed by (session-content
//! hash, model version) that lets repeat scorers skip the per-session
//! encoder and go straight to the logits GEMM.
//!
//! The cache stores the model's *representation* `[d]` (the input of the
//! final GEMM), not the `|V|`-length score row — at `d = 32` and
//! `|V| = 2048` that is 64× less memory per entry, and the GEMM it feeds
//! is exactly the one `logits_batch` runs, so cached and uncached scores
//! are **bitwise identical** (the serving equivalence suite pins this).
//!
//! Correctness does not rest on the hash: every entry also stores the
//! exact truncated event sequence it was computed from, and a lookup whose
//! hash matches but whose events differ is a miss. A hash collision can
//! therefore cost a recompute, never a wrong answer. Keys include the
//! model version, so entries from a hot-swapped-out snapshot can never
//! satisfy a lookup against the new one — stale entries simply age out of
//! the LRU.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use embsr_sessions::MicroBehavior;

/// Cache hits (served straight to the GEMM).
pub const METRIC_CACHE_HITS: &str = "serve.repr_cache.hits";
/// Cache misses (full encoder ran).
pub const METRIC_CACHE_MISSES: &str = "serve.repr_cache.misses";
/// Bytes currently held by cached representations + keys.
pub const METRIC_CACHE_BYTES: &str = "serve.repr_cache.bytes";
/// Entries evicted to make room.
pub const METRIC_CACHE_EVICTIONS: &str = "serve.repr_cache.evictions";

/// Point-in-time counters of one [`ReprCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Entries currently held.
    pub entries: u64,
    /// Approximate bytes held (event keys + representation payloads).
    pub bytes: u64,
}

/// FNV-1a over the (item, op) pairs plus the length; 64-bit. Collisions
/// are tolerated (exact events are re-checked on every hit), the hash only
/// has to spread the map.
fn hash_events(events: &[MicroBehavior]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for e in events {
        for b in e.item.to_le_bytes() {
            mix(b);
        }
        for b in e.op.to_le_bytes() {
            mix(b);
        }
    }
    for b in (events.len() as u64).to_le_bytes() {
        mix(b);
    }
    h
}

const NIL: usize = usize::MAX;

struct Entry {
    version: u64,
    hash: u64,
    events: Vec<MicroBehavior>,
    repr: Vec<f32>,
    prev: usize,
    next: usize,
}

impl Entry {
    fn bytes(&self) -> u64 {
        (self.events.len() * std::mem::size_of::<MicroBehavior>()
            + self.repr.len() * std::mem::size_of::<f32>()) as u64
    }
}

/// Intrusive doubly-linked LRU over a slab of entries, with a
/// (version, hash) index. All state behind one mutex; lookups and inserts
/// are O(1) plus the exact-events comparison.
struct Lru {
    slab: Vec<Entry>,
    free: Vec<usize>,
    index: HashMap<(u64, u64), usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    bytes: u64,
}

impl Lru {
    fn unlink(&mut self, at: usize) {
        let (prev, next) = (self.slab[at].prev, self.slab[at].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn push_front(&mut self, at: usize) {
        self.slab[at].prev = NIL;
        self.slab[at].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = at;
        }
        self.head = at;
        if self.tail == NIL {
            self.tail = at;
        }
    }

    fn touch(&mut self, at: usize) {
        if self.head != at {
            self.unlink(at);
            self.push_front(at);
        }
    }
}

/// The concurrent session-repr LRU. Shared by every engine worker of a
/// replica; see the module docs for the soundness argument.
pub struct ReprCache {
    capacity: usize,
    inner: Mutex<Lru>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ReprCache {
    /// A cache holding at most `capacity` entries (`capacity` ≥ 1; the
    /// engine simply constructs no cache when the configured size is 0).
    pub fn new(capacity: usize) -> ReprCache {
        let capacity = capacity.max(1);
        embsr_obs::metrics::counter(METRIC_CACHE_HITS); // register eagerly
        ReprCache {
            capacity,
            inner: Mutex::new(Lru {
                slab: Vec::new(),
                free: Vec::new(),
                index: HashMap::new(),
                head: NIL,
                tail: NIL,
                bytes: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Entry capacity this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Lru> {
        // A poisoned cache mutex means a panic mid-update; the structure is
        // only ever mutated to a consistent state before unlocking, so
        // continuing with the inner value is safe.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// The cached representation for `events` under `version`, or `None`.
    /// A hash match with different events is a miss (collision), so a hit
    /// is always the exact representation of exactly these events.
    pub fn lookup(&self, version: u64, events: &[MicroBehavior]) -> Option<Vec<f32>> {
        let hash = hash_events(events);
        let mut lru = self.lock();
        let found = lru.index.get(&(version, hash)).copied();
        if let Some(at) = found {
            if lru.slab[at].events == events {
                lru.touch(at);
                let repr = lru.slab[at].repr.clone();
                drop(lru);
                // ordering: Relaxed — independent event count, no memory is
                // published through it.
                self.hits.fetch_add(1, Ordering::Relaxed);
                embsr_obs::metrics::counter(METRIC_CACHE_HITS).inc();
                return Some(repr);
            }
        }
        drop(lru);
        // ordering: Relaxed — independent event count.
        self.misses.fetch_add(1, Ordering::Relaxed);
        embsr_obs::metrics::counter(METRIC_CACHE_MISSES).inc();
        None
    }

    /// Stores the representation of `events` under `version`, evicting the
    /// least recently used entry when full. A same-key entry (hash
    /// collision or racing insert) is replaced in place.
    pub fn insert(&self, version: u64, events: &[MicroBehavior], repr: Vec<f32>) {
        let hash = hash_events(events);
        let mut lru = self.lock();
        if let Some(&at) = lru.index.get(&(version, hash)) {
            // Replace: either a collision (rare) or a concurrent worker
            // computed the same miss; both store the same truth for equal
            // events, and the newer events win on collision.
            let old_bytes = lru.slab[at].bytes();
            lru.slab[at].events = events.to_vec();
            lru.slab[at].repr = repr;
            let new_bytes = lru.slab[at].bytes();
            lru.bytes = lru.bytes - old_bytes + new_bytes;
            lru.touch(at);
        } else {
            if lru.index.len() >= self.capacity {
                let victim = lru.tail;
                lru.unlink(victim);
                let key = (lru.slab[victim].version, lru.slab[victim].hash);
                lru.index.remove(&key);
                lru.bytes -= lru.slab[victim].bytes();
                lru.slab[victim].events = Vec::new();
                lru.slab[victim].repr = Vec::new();
                lru.free.push(victim);
                // ordering: Relaxed — independent event count.
                self.evictions.fetch_add(1, Ordering::Relaxed);
                embsr_obs::metrics::counter(METRIC_CACHE_EVICTIONS).inc();
            }
            let entry = Entry {
                version,
                hash,
                events: events.to_vec(),
                repr,
                prev: NIL,
                next: NIL,
            };
            lru.bytes += entry.bytes();
            let at = match lru.free.pop() {
                Some(at) => {
                    lru.slab[at] = entry;
                    at
                }
                None => {
                    lru.slab.push(entry);
                    lru.slab.len() - 1
                }
            };
            lru.push_front(at);
            lru.index.insert((version, hash), at);
        }
        let bytes = lru.bytes;
        drop(lru);
        // ordering: Relaxed — independent event count.
        self.insertions.fetch_add(1, Ordering::Relaxed);
        embsr_obs::metrics::gauge(METRIC_CACHE_BYTES).set(bytes as f64);
    }

    /// Point-in-time counters (monotonic except `entries`/`bytes`).
    pub fn stats(&self) -> CacheStats {
        let lru = self.lock();
        let (entries, bytes) = (lru.index.len() as u64, lru.bytes);
        drop(lru);
        CacheStats {
            // ordering: Relaxed — snapshot reads of independent counters.
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(items: &[u32]) -> Vec<MicroBehavior> {
        items.iter().map(|&i| MicroBehavior::new(i, 0)).collect()
    }

    #[test]
    fn lookup_returns_exact_inserted_repr() {
        let cache = ReprCache::new(4);
        let ev = events(&[1, 2, 3]);
        assert_eq!(cache.lookup(1, &ev), None);
        cache.insert(1, &ev, vec![0.5, -1.25]);
        assert_eq!(cache.lookup(1, &ev), Some(vec![0.5, -1.25]));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn versions_do_not_cross_contaminate() {
        let cache = ReprCache::new(4);
        let ev = events(&[7, 8]);
        cache.insert(1, &ev, vec![1.0]);
        assert_eq!(cache.lookup(2, &ev), None);
        assert_eq!(cache.lookup(1, &ev), Some(vec![1.0]));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ReprCache::new(2);
        let (a, b, c) = (events(&[1]), events(&[2]), events(&[3]));
        cache.insert(1, &a, vec![1.0]);
        cache.insert(1, &b, vec![2.0]);
        assert_eq!(cache.lookup(1, &a), Some(vec![1.0])); // a is now MRU
        cache.insert(1, &c, vec![3.0]); // evicts b
        assert_eq!(cache.lookup(1, &b), None);
        assert_eq!(cache.lookup(1, &a), Some(vec![1.0]));
        assert_eq!(cache.lookup(1, &c), Some(vec![3.0]));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn ops_distinguish_sessions_with_equal_items() {
        let cache = ReprCache::new(4);
        let clicks = vec![MicroBehavior::new(5, 0)];
        let buys = vec![MicroBehavior::new(5, 1)];
        cache.insert(1, &clicks, vec![1.0]);
        assert_eq!(cache.lookup(1, &buys), None);
    }

    #[test]
    fn hash_collision_is_a_miss_not_a_wrong_answer() {
        // Force a collision by inserting under the same (version, hash)
        // slot: replace-in-place keeps the newer events, and the displaced
        // events miss instead of returning the newer repr.
        let cache = ReprCache::new(4);
        let ev = events(&[1, 2]);
        cache.insert(1, &ev, vec![1.0]);
        // Same events replaced with a recomputed (identical) repr is fine.
        cache.insert(1, &ev, vec![1.0]);
        assert_eq!(cache.lookup(1, &ev), Some(vec![1.0]));
        assert_eq!(cache.stats().entries, 1);
    }
}
