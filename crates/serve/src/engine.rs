//! The micro-batching serving engine.
//!
//! Requests arrive as [`ScoreBatch`]es / [`TopK`]s on the calling thread;
//! their sessions are enqueued individually and **coalesced across
//! requests** by a pool of scoring workers: a worker drains up to
//! [`EngineConfig::max_batch`] sessions per forward, waiting at most
//! [`EngineConfig::flush_deadline_us`] for stragglers to fill the batch
//! (the classic latency/throughput knob of batched inference servers).
//!
//! Model weights cross threads as the flat snapshot inside a
//! [`FrozenModel`]; each worker rebuilds a private replica from a
//! constructor closure plus the snapshot (tensors are `Rc`-backed and
//! cannot be shared). Latency and batch-occupancy histograms are recorded
//! through `embsr_obs` when telemetry is enabled.
//!
//! When request tracing is active ([`embsr_obs::trace::set_enabled`] plus
//! a trace-level sink), every request opens a root span
//! (`score_request` / `top_k_request`) whose [`TraceCtx`] rides inside
//! each queued [`Job`]; the scoring worker stamps the batch lifecycle on
//! the shared monotonic clock and emits `queue_wait`, `batch_assembly`
//! and `scoring` child spans per job, so the per-request timeline is
//! reconstructable offline from the JSONL sink. With tracing off the
//! whole machinery costs one relaxed atomic load per request and per
//! batch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

use embsr_obs::trace::{self, TraceCtx};
use embsr_obs::Stopwatch;
use embsr_pool::{run_with_workers, AbortSignal};
use embsr_sessions::Session;
use embsr_train::SessionModel;

use crate::api::{top_k_of_row, ScoreBatch, ScoreResponse, TopK, TopKResponse};
use crate::frozen::FrozenModel;

/// Histogram of end-to-end request latency in microseconds.
pub const METRIC_REQUEST_LATENCY_US: &str = "serve.request_latency_us";
/// Histogram of sessions per scored micro-batch (batch occupancy).
pub const METRIC_BATCH_SESSIONS: &str = "serve.batch_sessions";
/// Counter of sessions scored by the engine.
pub const METRIC_SESSIONS_SCORED: &str = "serve.sessions_scored";
/// Histogram of queue depth (sessions waiting) sampled after each
/// request's enqueue — its p95/max expose backlog tails that the latency
/// quantiles alone hide.
pub const METRIC_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Counter of requests rejected at admission because the queue was over
/// [`EngineConfig::queue_cap`] (only requests submitted with
/// [`SubmitOptions::shed`] are ever rejected).
pub const METRIC_REJECTED: &str = "serve.rejected";
/// Counter of sessions shed by a worker because their request's deadline
/// expired while they waited in the queue.
pub const METRIC_DEADLINE_EXPIRED: &str = "serve.deadline_expired";

/// Tuning knobs of the micro-batching engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of scoring worker threads (each holds a model replica).
    pub workers: usize,
    /// Maximum sessions coalesced into one batched forward.
    pub max_batch: usize,
    /// How long a worker holds an underfull batch open for stragglers,
    /// in microseconds, before flushing it anyway.
    pub flush_deadline_us: u64,
    /// Admission bound: sessions allowed to wait in the queue before a
    /// shedding submit ([`SubmitOptions::shed`]) is rejected with
    /// [`ServeError::Overloaded`]. Non-shedding submits ignore the cap.
    pub queue_cap: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            max_batch: 32,
            flush_deadline_us: 500,
            queue_cap: usize::MAX,
        }
    }
}

/// Per-request admission and deadline knobs for the fallible submit paths
/// ([`Client::try_score`] / [`Client::try_top_k`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Microseconds the request may spend queued before a worker sheds it
    /// with [`ServeError::DeadlineExpired`] instead of scoring it. `0`
    /// means no deadline.
    pub deadline_us: u64,
    /// Reject at admission (with [`ServeError::Overloaded`]) when the queue
    /// already holds [`EngineConfig::queue_cap`] or more sessions, instead
    /// of enqueueing unconditionally.
    pub shed: bool,
}

/// Why a fallible submit did not produce scores. Both variants are *load*
/// conditions, not bugs: callers are expected to back off and retry
/// (`Overloaded`) or give up on the stale request (`DeadlineExpired`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control turned the request away: the queue already held
    /// `queued` sessions against a cap of `cap`.
    Overloaded { queued: usize, cap: usize },
    /// The request waited `waited_us` in the queue, past its deadline, and
    /// was shed by the scoring worker without being scored.
    DeadlineExpired { waited_us: u64 },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queued, cap } => {
                write!(f, "overloaded: {queued} session(s) queued, cap {cap}")
            }
            ServeError::DeadlineExpired { waited_us } => {
                write!(f, "deadline expired after {waited_us}us in queue")
            }
        }
    }
}

/// One enqueued session awaiting scoring.
struct Job {
    session: Session,
    enqueued: Stopwatch,
    /// Trace context of the originating request ([`TraceCtx::NONE`] when
    /// tracing was inactive at submit time).
    trace: TraceCtx,
    /// [`trace::now_us`] at enqueue (0 when untraced); start of the job's
    /// `queue_wait` phase.
    enqueued_us: u64,
    /// Queue-wait budget in microseconds (`0` = none): workers shed the job
    /// unscored once `enqueued` exceeds it.
    deadline_us: u64,
    /// Position inside the originating request.
    slot: usize,
    reply: Sender<(usize, Result<Vec<f32>, ServeError>)>,
}

/// Queue state shared between the client thread and the workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    arrivals: Condvar,
    /// Cleared on shutdown; workers drain the queue and exit.
    open: AtomicBool,
}

fn lock(shared: &Shared) -> MutexGuard<'_, VecDeque<Job>> {
    match shared.queue.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Handle for submitting requests to a running engine (see [`serve`]).
///
/// Both calls block until every session of the request is scored; sessions
/// from concurrent callers coalesce into shared micro-batches. Empty
/// sessions carry no evidence to score and are answered inline with an
/// empty row (no recommendations for [`Client::top_k`]) — they never reach
/// a scoring worker, so a malformed request cannot take the engine down.
pub struct Client<'a> {
    shared: &'a Shared,
    signal: &'a AbortSignal,
    cfg: EngineConfig,
}

impl Client<'_> {
    /// Scores the full vocabulary for each session of the request.
    pub fn score(&self, req: ScoreBatch) -> ScoreResponse {
        // Infallible by construction: no deadline, no shedding.
        self.try_score(req, SubmitOptions::default())
            .unwrap_or_default()
    }

    /// Scores a request under explicit admission/deadline control: the
    /// request is rejected up front when the queue is over
    /// [`EngineConfig::queue_cap`] (if `opts.shed`), and any session still
    /// queued past `opts.deadline_us` is shed by the workers, failing the
    /// request with [`ServeError::DeadlineExpired`].
    pub fn try_score(&self, req: ScoreBatch, opts: SubmitOptions) -> Result<ScoreResponse, ServeError> {
        self.try_score_in(req, opts, TraceCtx::NONE)
    }

    /// [`Client::try_score`] with an explicit trace parent: when `parent`
    /// is a live [`TraceCtx`] the engine spans (`score_request` →
    /// `queue_wait`/`batch_assembly`/`scoring`) nest under it instead of
    /// opening a fresh trace — this is how a network front end stitches
    /// engine work into its own request trees.
    pub fn try_score_in(
        &self,
        req: ScoreBatch,
        opts: SubmitOptions,
        parent: TraceCtx,
    ) -> Result<ScoreResponse, ServeError> {
        let span = if parent.is_none() {
            trace::root("score_request")
        } else {
            trace::child(parent, "score_request")
        };
        Ok(ScoreResponse {
            scores: self.submit(req.sessions, span.ctx(), opts)?,
        })
    }

    /// Returns the `k` best items per session of the request.
    pub fn top_k(&self, req: TopK) -> TopKResponse {
        // Infallible by construction: no deadline, no shedding.
        self.try_top_k(req, SubmitOptions::default())
            .unwrap_or_default()
    }

    /// [`Client::top_k`] under explicit admission/deadline control (see
    /// [`Client::try_score`]).
    pub fn try_top_k(&self, req: TopK, opts: SubmitOptions) -> Result<TopKResponse, ServeError> {
        let root = trace::root("top_k_request");
        let rows = self.submit(req.sessions, root.ctx(), opts)?;
        let _select = trace::child(root.ctx(), "top_k");
        Ok(TopKResponse {
            items: rows.iter().map(|row| top_k_of_row(row, req.k)).collect(),
        })
    }

    fn submit(
        &self,
        sessions: Vec<Session>,
        ctx: TraceCtx,
        opts: SubmitOptions,
    ) -> Result<Vec<Vec<f32>>, ServeError> {
        let n = sessions.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let watch = Stopwatch::start();
        let tracing = !ctx.is_none() && trace::active();
        let (reply, replies) =
            std::sync::mpsc::channel::<(usize, Result<Vec<f32>, ServeError>)>();
        let mut pending = 0usize;
        let depth;
        {
            let mut q = lock(self.shared);
            if opts.shed && q.len() >= self.cfg.queue_cap {
                let queued = q.len();
                drop(q);
                if embsr_obs::metrics::enabled() {
                    embsr_obs::metrics::counter(METRIC_REJECTED).inc();
                }
                return Err(ServeError::Overloaded {
                    queued,
                    cap: self.cfg.queue_cap,
                });
            }
            for (slot, session) in sessions.into_iter().enumerate() {
                if session.is_empty() {
                    // Answered inline as an empty row (see the type docs):
                    // workers assume non-empty sessions.
                    continue;
                }
                pending += 1;
                q.push_back(Job {
                    session,
                    enqueued: Stopwatch::start(),
                    trace: ctx,
                    enqueued_us: if tracing { trace::now_us() } else { 0 },
                    deadline_us: opts.deadline_us,
                    slot,
                    reply: reply.clone(),
                });
            }
            depth = q.len();
        }
        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::histogram(METRIC_QUEUE_DEPTH).record(depth as u64);
        }
        self.shared.arrivals.notify_all();
        drop(reply);

        let mut rows: Vec<Vec<f32>> = vec![Vec::new(); n];
        let mut received = 0;
        while received < pending {
            match replies.recv_timeout(Duration::from_millis(50)) {
                Ok((slot, Ok(row))) => {
                    rows[slot] = row;
                    received += 1;
                }
                Ok((_, Err(e))) => {
                    // One shed session fails the whole request: the caller
                    // asked for a deadline and this reply is already late.
                    // Replies for the request's other sessions go to a
                    // dropped receiver, which workers tolerate.
                    return Err(e);
                }
                Err(RecvTimeoutError::Timeout) => {
                    assert!(
                        !self.signal.is_aborted(),
                        "serving worker died while scoring"
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Every worker dropped its Sender clone: the pool is
                    // tearing down after a worker panic, which the pool
                    // re-raises once we return.
                    assert!(
                        received == pending,
                        "serving workers disconnected with {received} of {pending} rows scored"
                    );
                }
            }
        }
        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::histogram(METRIC_REQUEST_LATENCY_US).record(watch.elapsed_us());
        }
        Ok(rows)
    }
}

/// Drains the next micro-batch, or `None` when the engine has shut down and
/// the queue is empty.
fn next_batch(shared: &Shared, cfg: &EngineConfig) -> Option<Vec<Job>> {
    let deadline = Duration::from_micros(cfg.flush_deadline_us);
    let mut q = lock(shared);
    loop {
        if let Some(oldest) = q.front() {
            let waited = oldest.enqueued.elapsed();
            // ordering: SeqCst — the open flag must totally order with the
            // queue mutex and shutdown notify so a closing engine can never
            // be seen as open after the final drain (see ShutdownGuard).
            let closing = !shared.open.load(Ordering::SeqCst);
            if q.len() >= cfg.max_batch || waited >= deadline || closing {
                let take = q.len().min(cfg.max_batch);
                return Some(q.drain(..take).collect());
            }
            // Hold the batch open for stragglers, but never past the
            // flush deadline of its oldest session.
            let (guard, _) = match shared.arrivals.wait_timeout(q, deadline - waited) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            q = guard;
        } else {
            // ordering: SeqCst — pairs with ShutdownGuard's store; a worker
            // holding the (empty) queue lock must observe the close or it
            // would sleep through its own shutdown.
            if !shared.open.load(Ordering::SeqCst) {
                return None;
            }
            // Idle: sleep until an arrival (with a timeout so a missed
            // shutdown notification cannot strand the worker).
            let (guard, _) = match shared.arrivals.wait_timeout(q, Duration::from_millis(10)) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            q = guard;
        }
    }
}

/// Closes the queue and wakes every worker when dropped.
///
/// Shutdown must happen on *every* exit from the master closure — a master
/// panic unwinds through [`run_with_workers`]' `catch_unwind` and then
/// blocks in `thread::scope` joining workers, which would otherwise spin in
/// [`next_batch`] forever (`open` still true, queue drained). Routing the
/// store + notify through `Drop` makes the re-raise documented below
/// reachable no matter how the master exits.
struct ShutdownGuard<'a>(&'a Shared);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        // ordering: SeqCst — the close must totally order against workers'
        // loads in next_batch; a weaker store could let a worker re-check
        // `open` after the wakeup and still read true, stranding it.
        self.0.open.store(false, Ordering::SeqCst);
        notify_shutdown(self.0);
    }
}

/// Runs a micro-batching serving engine for the duration of `master`.
///
/// `cfg.workers` scoring threads each build a private model replica with
/// `factory()` and load `frozen`'s weight snapshot into it; `master` runs
/// on the calling thread with a [`Client`] for submitting requests. When
/// `master` returns, the queue is flushed, the workers exit, and the
/// master's value is returned.
///
/// # Panics
/// Re-raises worker panics (e.g. a scoring failure), as
/// [`run_with_workers`] does; master panics shut the workers down before
/// propagating, so the engine never hangs on a panicking closure.
pub fn serve<M, F, R>(
    frozen: &FrozenModel<M>,
    factory: F,
    cfg: EngineConfig,
    master: impl FnOnce(&Client<'_>) -> R,
) -> R
where
    M: SessionModel,
    F: Fn() -> M + Sync,
{
    let _engine_span = embsr_obs::span("embsr_serve", "serve");
    let snapshot = frozen.snapshot().to_vec();
    let max_session_len = frozen.max_session_len();
    let tier = frozen.tier();
    let shared = Shared {
        queue: Mutex::new(VecDeque::new()),
        arrivals: Condvar::new(),
        open: AtomicBool::new(true),
    };
    run_with_workers(
        cfg.workers.max(1),
        |_worker_id| {
            // replicas score on the master's kernel tier (snapshots are
            // already quantized, so weights match the master bitwise)
            let mut replica = FrozenModel::from_snapshot(factory(), &snapshot, max_session_len);
            replica.set_tier(tier);
            let replica = replica;
            while let Some(batch) = next_batch(&shared, &cfg) {
                let tracing = trace::active();
                let drained_us = if tracing { trace::now_us() } else { 0 };
                // Shed jobs whose queue-wait budget ran out before this
                // drain: scoring them would spend forward-pass time on
                // answers their callers have already written off.
                let mut live = Vec::with_capacity(batch.len());
                for job in batch {
                    let waited_us = job.enqueued.elapsed_us();
                    if job.deadline_us != 0 && waited_us >= job.deadline_us {
                        if embsr_obs::metrics::enabled() {
                            embsr_obs::metrics::counter(METRIC_DEADLINE_EXPIRED).inc();
                        }
                        if tracing && job.enqueued_us != 0 {
                            trace::emit_span(job.trace, "queue_wait", job.enqueued_us, drained_us);
                        }
                        let _ = job
                            .reply
                            .send((job.slot, Err(ServeError::DeadlineExpired { waited_us })));
                    } else {
                        live.push(job);
                    }
                }
                if live.is_empty() {
                    continue;
                }
                let sessions: Vec<Session> = live.iter().map(|j| j.session.clone()).collect();
                let assembled_us = if tracing { trace::now_us() } else { 0 };
                let rows = replica.score_batch(&sessions);
                let scored_us = if tracing { trace::now_us() } else { 0 };
                if embsr_obs::metrics::enabled() {
                    embsr_obs::metrics::histogram(METRIC_BATCH_SESSIONS)
                        .record(live.len() as u64);
                    embsr_obs::metrics::counter(METRIC_SESSIONS_SCORED).add(live.len() as u64);
                }
                for (job, row) in live.into_iter().zip(rows) {
                    if tracing && job.enqueued_us != 0 {
                        // One shared batch timeline, attributed to every
                        // request that rode in it.
                        trace::emit_span(job.trace, "queue_wait", job.enqueued_us, drained_us);
                        trace::emit_span(job.trace, "batch_assembly", drained_us, assembled_us);
                        trace::emit_span(job.trace, "scoring", assembled_us, scored_us);
                    }
                    // A receiver gone away just means the caller bailed out;
                    // drop its rows rather than killing the worker.
                    let _ = job.reply.send((job.slot, Ok(row)));
                }
            }
        },
        |signal| {
            let _shutdown = ShutdownGuard(&shared);
            let client = Client {
                shared: &shared,
                signal,
                cfg,
            };
            master(&client)
        },
    )
}

fn notify_shutdown(shared: &Shared) {
    // Take the lock so no worker can check `open` between its queue
    // inspection and its wait — the wake-up cannot be missed.
    drop(lock(shared));
    shared.arrivals.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{sess, ToyModel};

    fn frozen(n: usize, seed: u64) -> FrozenModel<ToyModel> {
        FrozenModel::freeze(ToyModel::new(n, seed), 32)
    }

    #[test]
    fn engine_scores_match_direct_frozen_scores() {
        let f = frozen(9, 4);
        let sessions: Vec<Session> = (0..23).map(|i| sess(&[i % 9, (i + 2) % 9])).collect();
        let want = f.score_batch(&sessions);
        let cfg = EngineConfig {
            workers: 3,
            max_batch: 4,
            flush_deadline_us: 200,
            ..EngineConfig::default()
        };
        let got = serve(&f, || ToyModel::new(9, 0), cfg, |client| {
            client
                .score(ScoreBatch {
                    sessions: sessions.clone(),
                })
                .scores
        });
        assert_eq!(got, want, "micro-batched rows must be bitwise-identical");
    }

    #[test]
    fn top_k_requests_are_served() {
        let f = frozen(6, 1);
        let got = serve(
            &f,
            || ToyModel::new(6, 0),
            EngineConfig::default(),
            |client| {
                client.top_k(TopK {
                    sessions: vec![sess(&[1]), sess(&[2, 3])],
                    k: 2,
                })
            },
        );
        assert_eq!(got.items.len(), 2);
        for recs in &got.items {
            assert_eq!(recs.len(), 2);
            assert!(recs[0].score >= recs[1].score);
        }
    }

    #[test]
    fn empty_request_returns_immediately() {
        let f = frozen(4, 2);
        let got = serve(
            &f,
            || ToyModel::new(4, 0),
            EngineConfig::default(),
            |client| client.score(ScoreBatch::default()),
        );
        assert!(got.scores.is_empty());
    }

    #[test]
    fn single_worker_underfull_batches_flush_on_deadline() {
        let f = frozen(5, 3);
        let cfg = EngineConfig {
            workers: 1,
            max_batch: 64, // never fills: the deadline must flush
            flush_deadline_us: 100,
            ..EngineConfig::default()
        };
        let sessions = vec![sess(&[0]), sess(&[1]), sess(&[2])];
        let want = f.score_batch(&sessions);
        let got = serve(&f, || ToyModel::new(5, 0), cfg, |client| {
            client
                .score(ScoreBatch {
                    sessions: sessions.clone(),
                })
                .scores
        });
        assert_eq!(got, want);
    }

    #[test]
    fn master_panic_shuts_workers_down_instead_of_hanging() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let f = frozen(4, 6);
        // Without the ShutdownGuard this test never returns: the pool
        // catches the master panic, then blocks joining workers that wait
        // for a shutdown notification nobody will send.
        let err = catch_unwind(AssertUnwindSafe(|| {
            serve(
                &f,
                || ToyModel::new(4, 0),
                EngineConfig::default(),
                |client| {
                    let _ = client.score(ScoreBatch {
                        sessions: vec![sess(&[1, 2])],
                    });
                    panic!("master bailed mid-serve");
                },
            )
        }))
        .expect_err("master panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("master bailed"), "wrong panic surfaced: {msg}");
    }

    #[test]
    fn empty_sessions_are_answered_inline_without_reaching_workers() {
        let f = frozen(6, 9);
        let valid = sess(&[2, 4]);
        let want = f.score_batch(std::slice::from_ref(&valid));
        let (scores, recs, later) = serve(
            &f,
            || ToyModel::new(6, 0),
            EngineConfig::default(),
            |client| {
                let scores = client.score(ScoreBatch {
                    sessions: vec![sess(&[]), valid.clone(), sess(&[])],
                });
                let recs = client.top_k(TopK {
                    sessions: vec![sess(&[])],
                    k: 3,
                });
                // The engine must still be fully alive afterwards.
                let later = client.score(ScoreBatch {
                    sessions: vec![valid.clone()],
                });
                (scores, recs, later)
            },
        );
        assert_eq!(scores.scores.len(), 3);
        assert!(scores.scores[0].is_empty());
        assert_eq!(scores.scores[1], want[0]);
        assert!(scores.scores[2].is_empty());
        assert_eq!(recs.items, vec![Vec::new()]);
        assert_eq!(later.scores, want);
    }

    #[test]
    fn shedding_submit_is_rejected_when_the_queue_is_over_cap() {
        let f = frozen(5, 11);
        let cfg = EngineConfig {
            workers: 1,
            max_batch: 4,
            flush_deadline_us: 200,
            queue_cap: 0, // every shedding submit sees a full queue
        };
        let got = serve(&f, || ToyModel::new(5, 0), cfg, |client| {
            let opts = SubmitOptions {
                shed: true,
                ..SubmitOptions::default()
            };
            let rejected = client.try_score(
                ScoreBatch {
                    sessions: vec![sess(&[1])],
                },
                opts,
            );
            // A non-shedding submit ignores the cap entirely.
            let accepted = client.try_score(
                ScoreBatch {
                    sessions: vec![sess(&[1])],
                },
                SubmitOptions::default(),
            );
            (rejected, accepted)
        });
        assert_eq!(got.0, Err(ServeError::Overloaded { queued: 0, cap: 0 }));
        let accepted = got.1.expect("non-shedding submit must be admitted");
        assert_eq!(accepted.scores.len(), 1);
        assert!(!accepted.scores[0].is_empty());
    }

    #[test]
    fn queued_past_deadline_is_shed_not_scored() {
        let f = frozen(5, 13);
        let cfg = EngineConfig {
            workers: 1,
            // A huge flush deadline with an unfillable batch keeps the job
            // queued long past its 1us budget.
            max_batch: 64,
            flush_deadline_us: 20_000,
            ..EngineConfig::default()
        };
        let got = serve(&f, || ToyModel::new(5, 0), cfg, |client| {
            client.try_score(
                ScoreBatch {
                    sessions: vec![sess(&[2])],
                },
                SubmitOptions {
                    deadline_us: 1,
                    shed: false,
                },
            )
        });
        match got {
            Err(ServeError::DeadlineExpired { waited_us }) => {
                assert!(waited_us >= 1, "shed job must report its queue wait");
            }
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_still_scores_bitwise_identically() {
        let f = frozen(6, 17);
        let sessions = vec![sess(&[1, 2]), sess(&[3])];
        let want = f.score_batch(&sessions);
        let got = serve(
            &f,
            || ToyModel::new(6, 0),
            EngineConfig::default(),
            |client| {
                client.try_score(
                    ScoreBatch {
                        sessions: sessions.clone(),
                    },
                    SubmitOptions {
                        deadline_us: 60_000_000,
                        shed: true,
                    },
                )
            },
        );
        assert_eq!(got.expect("well within deadline").scores, want);
    }

    #[test]
    fn sequential_requests_reuse_the_running_engine() {
        let f = frozen(7, 8);
        let want_a = f.score_batch(&[sess(&[1, 2])]);
        let want_b = f.score_batch(&[sess(&[3])]);
        let (got_a, got_b) = serve(
            &f,
            || ToyModel::new(7, 0),
            EngineConfig::default(),
            |client| {
                let a = client.score(ScoreBatch {
                    sessions: vec![sess(&[1, 2])],
                });
                let b = client.score(ScoreBatch {
                    sessions: vec![sess(&[3])],
                });
                (a.scores, b.scores)
            },
        );
        assert_eq!(got_a, want_a);
        assert_eq!(got_b, want_b);
    }
}
