//! The micro-batching serving engine.
//!
//! Requests arrive as [`ScoreBatch`]es / [`TopK`]s on the calling thread;
//! their sessions are enqueued individually and **coalesced across
//! requests** by a pool of scoring workers: a worker drains up to
//! [`EngineConfig::max_batch`] sessions per forward, waiting at most
//! [`EngineConfig::flush_deadline_us`] for stragglers to fill the batch
//! (the classic latency/throughput knob of batched inference servers).
//!
//! Model weights cross threads as the flat snapshot inside a
//! [`FrozenModel`]; each worker rebuilds a private replica from a
//! constructor closure plus the snapshot (tensors are `Rc`-backed and
//! cannot be shared). Latency and batch-occupancy histograms are recorded
//! through `embsr_obs` when telemetry is enabled.
//!
//! When request tracing is active ([`embsr_obs::trace::set_enabled`] plus
//! a trace-level sink), every request opens a root span
//! (`score_request` / `top_k_request`) whose [`TraceCtx`] rides inside
//! each queued [`Job`]; the scoring worker stamps the batch lifecycle on
//! the shared monotonic clock and emits `queue_wait`, `batch_assembly`
//! and `scoring` child spans per job, so the per-request timeline is
//! reconstructable offline from the JSONL sink. With tracing off the
//! whole machinery costs one relaxed atomic load per request and per
//! batch.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use embsr_obs::trace::{self, TraceCtx};
use embsr_obs::Stopwatch;
use embsr_pool::{run_with_workers, AbortSignal};
use embsr_sessions::Session;
use embsr_train::SessionModel;

use crate::api::{top_k_of_row, ScoreBatch, ScoreResponse, TopK, TopKResponse};
use crate::cache::{CacheStats, ReprCache};
use crate::frozen::FrozenModel;
use crate::snapshot::{self, Precision};

/// Histogram of end-to-end request latency in microseconds.
pub const METRIC_REQUEST_LATENCY_US: &str = "serve.request_latency_us";
/// Histogram of sessions per scored micro-batch (batch occupancy).
pub const METRIC_BATCH_SESSIONS: &str = "serve.batch_sessions";
/// Counter of sessions scored by the engine.
pub const METRIC_SESSIONS_SCORED: &str = "serve.sessions_scored";
/// Histogram of queue depth (sessions waiting) sampled after each
/// request's enqueue — its p95/max expose backlog tails that the latency
/// quantiles alone hide.
pub const METRIC_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Counter of requests rejected at admission because the queue was over
/// [`EngineConfig::queue_cap`] (only requests submitted with
/// [`SubmitOptions::shed`] are ever rejected).
pub const METRIC_REJECTED: &str = "serve.rejected";
/// Counter of sessions shed by a worker because their request's deadline
/// expired while they waited in the queue.
pub const METRIC_DEADLINE_EXPIRED: &str = "serve.deadline_expired";
/// Counter of per-worker replica rebuilds triggered by snapshot
/// activation ([`Client::activate`]); `workers` increments per swap.
pub const METRIC_SNAPSHOT_SWAPS: &str = "serve.snapshot_swaps";

/// Tuning knobs of the micro-batching engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of scoring worker threads (each holds a model replica).
    pub workers: usize,
    /// Maximum sessions coalesced into one batched forward.
    pub max_batch: usize,
    /// How long a worker holds an underfull batch open for stragglers,
    /// in microseconds, before flushing it anyway.
    pub flush_deadline_us: u64,
    /// Admission bound: sessions allowed to wait in the queue before a
    /// shedding submit ([`SubmitOptions::shed`]) is rejected with
    /// [`ServeError::Overloaded`]. Non-shedding submits ignore the cap.
    pub queue_cap: usize,
    /// Entry capacity of the session-repr cache shared by this engine's
    /// workers; `0` (the default) disables caching. Only models exposing
    /// the repr seam ([`SessionModel::repr_infer`]) are cached — others
    /// fall back to uncached scoring transparently.
    pub repr_cache: usize,
    /// Version tag of the snapshot the engine starts serving; responses
    /// carry the tag of the snapshot that scored them.
    pub initial_version: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            max_batch: 32,
            flush_deadline_us: 500,
            queue_cap: usize::MAX,
            repr_cache: 0,
            initial_version: 1,
        }
    }
}

/// Per-request admission and deadline knobs for the fallible submit paths
/// ([`Client::try_score`] / [`Client::try_top_k`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Microseconds the request may spend queued before a worker sheds it
    /// with [`ServeError::DeadlineExpired`] instead of scoring it. `0`
    /// means no deadline.
    pub deadline_us: u64,
    /// Reject at admission (with [`ServeError::Overloaded`]) when the queue
    /// already holds [`EngineConfig::queue_cap`] or more sessions, instead
    /// of enqueueing unconditionally.
    pub shed: bool,
}

/// Why a fallible submit did not produce scores. Both variants are *load*
/// conditions, not bugs: callers are expected to back off and retry
/// (`Overloaded`) or give up on the stale request (`DeadlineExpired`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control turned the request away: the queue already held
    /// `queued` sessions against a cap of `cap`.
    Overloaded { queued: usize, cap: usize },
    /// The request waited `waited_us` in the queue, past its deadline, and
    /// was shed by the scoring worker without being scored.
    DeadlineExpired { waited_us: u64 },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queued, cap } => {
                write!(f, "overloaded: {queued} session(s) queued, cap {cap}")
            }
            ServeError::DeadlineExpired { waited_us } => {
                write!(f, "deadline expired after {waited_us}us in queue")
            }
        }
    }
}

/// Why a control-plane call ([`Client::stage_snapshot`] /
/// [`Client::activate`]) was refused. All variants leave serving
/// untouched: a bad snapshot can never reach a replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwapError {
    /// [`Client::activate`] named a version that was never staged.
    UnknownVersion(u64),
    /// The staged snapshot's weight count does not match the serving
    /// model's parameter layout.
    WrongLayout { expected: usize, got: usize },
    /// The snapshot bytes failed to decode (`EMBSRSNP` framing).
    Malformed(String),
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::UnknownVersion(v) => write!(f, "version {v} was never staged"),
            SwapError::WrongLayout { expected, got } => {
                write!(f, "snapshot has {got} weights, model expects {expected}")
            }
            SwapError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
        }
    }
}

/// Point-in-time control-plane view of one engine ([`Client::status`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStatus {
    /// Version currently scoring new batches.
    pub active_version: u64,
    /// Every staged version (including the active one), ascending.
    pub staged: Vec<u64>,
    /// Session-repr cache counters (all zero when the cache is disabled).
    pub cache: CacheStats,
}

/// A decoded snapshot held by the [`ModelBank`], ready for replicas to
/// import.
struct StagedSnapshot {
    weights: Vec<f32>,
    max_session_len: usize,
    precision: Precision,
}

/// The staged-snapshot registry shared by an engine's workers: versions
/// accumulate under the mutex, activation atomically flips `active` and
/// bumps `epoch`, and workers compare `epoch` against their local copy
/// between batches — the flip itself never blocks scoring.
struct ModelBank {
    versions: Mutex<BTreeMap<u64, Arc<StagedSnapshot>>>,
    /// Version new batches must score under.
    active: AtomicU64,
    /// Bumped on every activation; workers rebuild when it moves.
    epoch: AtomicU64,
    /// Flat weight count of the serving model's layout; staging validates
    /// against it so a wrong-architecture snapshot is refused up front.
    expected_weights: usize,
}

impl ModelBank {
    fn new(initial_version: u64, initial: StagedSnapshot) -> ModelBank {
        let expected_weights = initial.weights.len();
        let mut versions = BTreeMap::new();
        versions.insert(initial_version, Arc::new(initial));
        ModelBank {
            versions: Mutex::new(versions),
            active: AtomicU64::new(initial_version),
            epoch: AtomicU64::new(0),
            expected_weights,
        }
    }

    fn lock_versions(&self) -> MutexGuard<'_, BTreeMap<u64, Arc<StagedSnapshot>>> {
        match self.versions.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn stage(&self, version: u64, snap: StagedSnapshot) -> Result<(), SwapError> {
        if snap.weights.len() != self.expected_weights {
            return Err(SwapError::WrongLayout {
                expected: self.expected_weights,
                got: snap.weights.len(),
            });
        }
        self.lock_versions().insert(version, Arc::new(snap));
        Ok(())
    }

    fn activate(&self, version: u64) -> Result<(), SwapError> {
        let versions = self.lock_versions();
        if !versions.contains_key(&version) {
            return Err(SwapError::UnknownVersion(version));
        }
        // Both stores happen under the versions lock, so a worker that
        // observes the new epoch and then calls `active_state` (which takes
        // the same lock) is guaranteed to see this activation or a later one.
        // ordering: SeqCst — the flip must totally order against workers'
        // epoch loads; a weaker pair could let a worker read the new epoch
        // but a stale active version without the lock round trip.
        self.active.store(version, Ordering::SeqCst);
        // ordering: SeqCst — published after `active` so epoch movement
        // implies the new active version is visible.
        self.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn active_version(&self) -> u64 {
        // ordering: SeqCst — pairs with the store in `activate`.
        self.active.load(Ordering::SeqCst)
    }

    fn epoch(&self) -> u64 {
        // ordering: SeqCst — pairs with the bump in `activate`.
        self.epoch.load(Ordering::SeqCst)
    }

    /// The consistent (epoch, version, snapshot) triple workers rebuild
    /// from; taken under the versions lock so the three never tear.
    fn active_state(&self) -> (u64, u64, Arc<StagedSnapshot>) {
        let versions = self.lock_versions();
        let epoch = self.epoch();
        let version = self.active_version();
        let snap = versions
            .get(&version)
            .cloned()
            // The active version is always a key: activation checks under
            // the same lock and staged versions are never removed.
            .unwrap_or_else(|| Arc::new(StagedSnapshot {
                weights: Vec::new(),
                max_session_len: 0,
                precision: Precision::F32,
            }));
        (epoch, version, snap)
    }

    fn staged_versions(&self) -> Vec<u64> {
        self.lock_versions().keys().copied().collect()
    }
}

/// One enqueued session awaiting scoring.
struct Job {
    session: Session,
    enqueued: Stopwatch,
    /// Trace context of the originating request ([`TraceCtx::NONE`] when
    /// tracing was inactive at submit time).
    trace: TraceCtx,
    /// [`trace::now_us`] at enqueue (0 when untraced); start of the job's
    /// `queue_wait` phase.
    enqueued_us: u64,
    /// Queue-wait budget in microseconds (`0` = none): workers shed the job
    /// unscored once `enqueued` exceeds it.
    deadline_us: u64,
    /// Position inside the originating request.
    slot: usize,
    /// Replies carry the model version that scored (or shed) the job.
    reply: Sender<(usize, u64, Result<Vec<f32>, ServeError>)>,
}

/// Queue state shared between the client thread and the workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    arrivals: Condvar,
    /// Cleared on shutdown; workers drain the queue and exit.
    open: AtomicBool,
    /// Staged snapshot versions + the active flip (hot-swap control plane).
    bank: ModelBank,
    /// Session-repr cache, when [`EngineConfig::repr_cache`] > 0.
    cache: Option<ReprCache>,
}

fn lock(shared: &Shared) -> MutexGuard<'_, VecDeque<Job>> {
    match shared.queue.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Handle for submitting requests to a running engine (see [`serve`]).
///
/// Both calls block until every session of the request is scored; sessions
/// from concurrent callers coalesce into shared micro-batches. Empty
/// sessions carry no evidence to score and are answered inline with an
/// empty row (no recommendations for [`Client::top_k`]) — they never reach
/// a scoring worker, so a malformed request cannot take the engine down.
pub struct Client<'a> {
    shared: &'a Shared,
    signal: &'a AbortSignal,
    cfg: EngineConfig,
}

impl Client<'_> {
    /// Scores the full vocabulary for each session of the request.
    pub fn score(&self, req: ScoreBatch) -> ScoreResponse {
        // Infallible by construction: no deadline, no shedding.
        self.try_score(req, SubmitOptions::default())
            .unwrap_or_default()
    }

    /// Scores a request under explicit admission/deadline control: the
    /// request is rejected up front when the queue is over
    /// [`EngineConfig::queue_cap`] (if `opts.shed`), and any session still
    /// queued past `opts.deadline_us` is shed by the workers, failing the
    /// request with [`ServeError::DeadlineExpired`].
    pub fn try_score(&self, req: ScoreBatch, opts: SubmitOptions) -> Result<ScoreResponse, ServeError> {
        self.try_score_in(req, opts, TraceCtx::NONE)
    }

    /// [`Client::try_score`] with an explicit trace parent: when `parent`
    /// is a live [`TraceCtx`] the engine spans (`score_request` →
    /// `queue_wait`/`batch_assembly`/`scoring`) nest under it instead of
    /// opening a fresh trace — this is how a network front end stitches
    /// engine work into its own request trees.
    pub fn try_score_in(
        &self,
        req: ScoreBatch,
        opts: SubmitOptions,
        parent: TraceCtx,
    ) -> Result<ScoreResponse, ServeError> {
        let span = if parent.is_none() {
            trace::root("score_request")
        } else {
            trace::child(parent, "score_request")
        };
        let (scores, model_version) = self.submit(req.sessions, span.ctx(), opts)?;
        Ok(ScoreResponse {
            scores,
            model_version,
        })
    }

    /// Returns the `k` best items per session of the request.
    pub fn top_k(&self, req: TopK) -> TopKResponse {
        // Infallible by construction: no deadline, no shedding.
        self.try_top_k(req, SubmitOptions::default())
            .unwrap_or_default()
    }

    /// [`Client::top_k`] under explicit admission/deadline control (see
    /// [`Client::try_score`]).
    pub fn try_top_k(&self, req: TopK, opts: SubmitOptions) -> Result<TopKResponse, ServeError> {
        let root = trace::root("top_k_request");
        let (rows, model_version) = self.submit(req.sessions, root.ctx(), opts)?;
        let _select = trace::child(root.ctx(), "top_k");
        Ok(TopKResponse {
            items: rows.iter().map(|row| top_k_of_row(row, req.k)).collect(),
            model_version,
        })
    }

    /// Stages serialized `EMBSRSNP` snapshot bytes under `version` without
    /// touching live scoring; flip to it later with [`Client::activate`].
    /// Staging an already-staged version replaces it (it only takes effect
    /// on the next activation).
    pub fn stage_snapshot(&self, version: u64, bytes: &[u8]) -> Result<(), SwapError> {
        let _span = embsr_obs::span("embsr_serve", "stage_snapshot");
        let dec = snapshot::decode_snapshot(bytes)
            .map_err(|e| SwapError::Malformed(e.to_string()))?;
        self.shared.bank.stage(
            version,
            StagedSnapshot {
                weights: dec.weights,
                max_session_len: dec.max_session_len,
                precision: dec.precision,
            },
        )
    }

    /// Atomically makes a staged `version` the one scoring new batches.
    /// In-flight batches finish under the version they started with (their
    /// responses are tagged accordingly); no request is dropped or drained.
    pub fn activate(&self, version: u64) -> Result<(), SwapError> {
        let _span = embsr_obs::span("embsr_serve", "activate");
        self.shared.bank.activate(version)?;
        // Wake idle workers so they rebuild ahead of the next arrival.
        self.shared.arrivals.notify_all();
        Ok(())
    }

    /// The version tag new batches are scored under.
    pub fn active_version(&self) -> u64 {
        self.shared.bank.active_version()
    }

    /// Control-plane snapshot: active/staged versions + cache counters.
    pub fn status(&self) -> EngineStatus {
        let _span = embsr_obs::span("embsr_serve", "engine_status")
            .with_close_level(embsr_obs::Level::Trace);
        EngineStatus {
            active_version: self.shared.bank.active_version(),
            staged: self.shared.bank.staged_versions(),
            cache: self
                .shared
                .cache
                .as_ref()
                .map(ReprCache::stats)
                .unwrap_or_default(),
        }
    }

    fn submit(
        &self,
        sessions: Vec<Session>,
        ctx: TraceCtx,
        opts: SubmitOptions,
    ) -> Result<(Vec<Vec<f32>>, u64), ServeError> {
        let n = sessions.len();
        if n == 0 {
            return Ok((Vec::new(), self.shared.bank.active_version()));
        }
        let watch = Stopwatch::start();
        let tracing = !ctx.is_none() && trace::active();
        let (reply, replies) =
            std::sync::mpsc::channel::<(usize, u64, Result<Vec<f32>, ServeError>)>();
        let mut pending = 0usize;
        let depth;
        {
            let mut q = lock(self.shared);
            if opts.shed && q.len() >= self.cfg.queue_cap {
                let queued = q.len();
                drop(q);
                if embsr_obs::metrics::enabled() {
                    embsr_obs::metrics::counter(METRIC_REJECTED).inc();
                }
                return Err(ServeError::Overloaded {
                    queued,
                    cap: self.cfg.queue_cap,
                });
            }
            for (slot, session) in sessions.into_iter().enumerate() {
                if session.is_empty() {
                    // Answered inline as an empty row (see the type docs):
                    // workers assume non-empty sessions.
                    continue;
                }
                pending += 1;
                q.push_back(Job {
                    session,
                    enqueued: Stopwatch::start(),
                    trace: ctx,
                    enqueued_us: if tracing { trace::now_us() } else { 0 },
                    deadline_us: opts.deadline_us,
                    slot,
                    reply: reply.clone(),
                });
            }
            depth = q.len();
        }
        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::histogram(METRIC_QUEUE_DEPTH).record(depth as u64);
        }
        self.shared.arrivals.notify_all();
        drop(reply);

        let mut rows: Vec<Vec<f32>> = vec![Vec::new(); n];
        // Mixed-version batches can happen mid-swap; the response reports
        // the newest contributing version.
        let mut model_version = 0u64;
        let mut received = 0;
        while received < pending {
            match replies.recv_timeout(Duration::from_millis(50)) {
                Ok((slot, version, Ok(row))) => {
                    rows[slot] = row;
                    model_version = model_version.max(version);
                    received += 1;
                }
                Ok((_, _, Err(e))) => {
                    // One shed session fails the whole request: the caller
                    // asked for a deadline and this reply is already late.
                    // Replies for the request's other sessions go to a
                    // dropped receiver, which workers tolerate.
                    return Err(e);
                }
                Err(RecvTimeoutError::Timeout) => {
                    assert!(
                        !self.signal.is_aborted(),
                        "serving worker died while scoring"
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Every worker dropped its Sender clone: the pool is
                    // tearing down after a worker panic, which the pool
                    // re-raises once we return.
                    assert!(
                        received == pending,
                        "serving workers disconnected with {received} of {pending} rows scored"
                    );
                }
            }
        }
        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::histogram(METRIC_REQUEST_LATENCY_US).record(watch.elapsed_us());
        }
        if pending == 0 {
            // Only empty sessions: nothing scored, tag the current version.
            model_version = self.shared.bank.active_version();
        }
        Ok((rows, model_version))
    }
}

/// Drains the next micro-batch, or `None` when the engine has shut down and
/// the queue is empty.
fn next_batch(shared: &Shared, cfg: &EngineConfig) -> Option<Vec<Job>> {
    let deadline = Duration::from_micros(cfg.flush_deadline_us);
    let mut q = lock(shared);
    loop {
        if let Some(oldest) = q.front() {
            let waited = oldest.enqueued.elapsed();
            // ordering: SeqCst — the open flag must totally order with the
            // queue mutex and shutdown notify so a closing engine can never
            // be seen as open after the final drain (see ShutdownGuard).
            let closing = !shared.open.load(Ordering::SeqCst);
            if q.len() >= cfg.max_batch || waited >= deadline || closing {
                let take = q.len().min(cfg.max_batch);
                return Some(q.drain(..take).collect());
            }
            // Hold the batch open for stragglers, but never past the
            // flush deadline of its oldest session.
            let (guard, _) = match shared.arrivals.wait_timeout(q, deadline - waited) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            q = guard;
        } else {
            // ordering: SeqCst — pairs with ShutdownGuard's store; a worker
            // holding the (empty) queue lock must observe the close or it
            // would sleep through its own shutdown.
            if !shared.open.load(Ordering::SeqCst) {
                return None;
            }
            // Idle: sleep until an arrival (with a timeout so a missed
            // shutdown notification cannot strand the worker).
            let (guard, _) = match shared.arrivals.wait_timeout(q, Duration::from_millis(10)) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            q = guard;
        }
    }
}

/// Closes the queue and wakes every worker when dropped.
///
/// Shutdown must happen on *every* exit from the master closure — a master
/// panic unwinds through [`run_with_workers`]' `catch_unwind` and then
/// blocks in `thread::scope` joining workers, which would otherwise spin in
/// [`next_batch`] forever (`open` still true, queue drained). Routing the
/// store + notify through `Drop` makes the re-raise documented below
/// reachable no matter how the master exits.
struct ShutdownGuard<'a>(&'a Shared);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        // ordering: SeqCst — the close must totally order against workers'
        // loads in next_batch; a weaker store could let a worker re-check
        // `open` after the wakeup and still read true, stranding it.
        self.0.open.store(false, Ordering::SeqCst);
        notify_shutdown(self.0);
    }
}

/// Runs a micro-batching serving engine for the duration of `master`.
///
/// `cfg.workers` scoring threads each build a private model replica with
/// `factory()` and load `frozen`'s weight snapshot into it; `master` runs
/// on the calling thread with a [`Client`] for submitting requests. When
/// `master` returns, the queue is flushed, the workers exit, and the
/// master's value is returned.
///
/// # Panics
/// Re-raises worker panics (e.g. a scoring failure), as
/// [`run_with_workers`] does; master panics shut the workers down before
/// propagating, so the engine never hangs on a panicking closure.
pub fn serve<M, F, R>(
    frozen: &FrozenModel<M>,
    factory: F,
    cfg: EngineConfig,
    master: impl FnOnce(&Client<'_>) -> R,
) -> R
where
    M: SessionModel,
    F: Fn() -> M + Sync,
{
    let _engine_span = embsr_obs::span("embsr_serve", "serve");
    let tier = frozen.tier();
    let shared = Shared {
        queue: Mutex::new(VecDeque::new()),
        arrivals: Condvar::new(),
        open: AtomicBool::new(true),
        bank: ModelBank::new(
            cfg.initial_version,
            StagedSnapshot {
                weights: frozen.snapshot().to_vec(),
                max_session_len: frozen.max_session_len(),
                precision: frozen.precision(),
            },
        ),
        cache: if cfg.repr_cache > 0 {
            Some(ReprCache::new(cfg.repr_cache))
        } else {
            None
        },
    };
    run_with_workers(
        cfg.workers.max(1),
        |_worker_id| {
            // replicas score on the master's kernel tier (snapshots are
            // already quantized, so weights match the master bitwise)
            let (mut local_epoch, mut local_version, snap) = shared.bank.active_state();
            let mut replica =
                FrozenModel::from_snapshot(factory(), &snap.weights, snap.max_session_len);
            replica.set_tier(tier);
            drop(snap);
            while let Some(batch) = next_batch(&shared, &cfg) {
                // Hot-swap seam: rebuild this replica when an activation
                // moved the epoch since the last batch. The batch drained
                // above scores under the *new* version; batches drained
                // before the flip finished under the old one — either way
                // each reply is tagged with the version that scored it.
                if shared.bank.epoch() != local_epoch {
                    let (epoch, version, snap) = shared.bank.active_state();
                    if replica
                        .swap_snapshot(&snap.weights, snap.max_session_len, snap.precision)
                        .is_ok()
                    {
                        // Layout is validated at stage time, so the swap
                        // only fails on an impossible bank inconsistency —
                        // in which case the replica keeps serving the old
                        // weights rather than corrupting state.
                        local_version = version;
                        if embsr_obs::metrics::enabled() {
                            embsr_obs::metrics::counter(METRIC_SNAPSHOT_SWAPS).inc();
                        }
                    }
                    local_epoch = epoch;
                }
                let tracing = trace::active();
                let drained_us = if tracing { trace::now_us() } else { 0 };
                // Shed jobs whose queue-wait budget ran out before this
                // drain: scoring them would spend forward-pass time on
                // answers their callers have already written off.
                let mut live = Vec::with_capacity(batch.len());
                for job in batch {
                    let waited_us = job.enqueued.elapsed_us();
                    if job.deadline_us != 0 && waited_us >= job.deadline_us {
                        if embsr_obs::metrics::enabled() {
                            embsr_obs::metrics::counter(METRIC_DEADLINE_EXPIRED).inc();
                        }
                        if tracing && job.enqueued_us != 0 {
                            trace::emit_span(job.trace, "queue_wait", job.enqueued_us, drained_us);
                        }
                        let _ = job.reply.send((
                            job.slot,
                            local_version,
                            Err(ServeError::DeadlineExpired { waited_us }),
                        ));
                    } else {
                        live.push(job);
                    }
                }
                if live.is_empty() {
                    continue;
                }
                let sessions: Vec<Session> = live.iter().map(|j| j.session.clone()).collect();
                let assembled_us = if tracing { trace::now_us() } else { 0 };
                let rows = match &shared.cache {
                    Some(cache) => replica.score_batch_cached(&sessions, cache, local_version),
                    None => replica.score_batch(&sessions),
                };
                let scored_us = if tracing { trace::now_us() } else { 0 };
                if embsr_obs::metrics::enabled() {
                    embsr_obs::metrics::histogram(METRIC_BATCH_SESSIONS)
                        .record(live.len() as u64);
                    embsr_obs::metrics::counter(METRIC_SESSIONS_SCORED).add(live.len() as u64);
                }
                for (job, row) in live.into_iter().zip(rows) {
                    if tracing && job.enqueued_us != 0 {
                        // One shared batch timeline, attributed to every
                        // request that rode in it.
                        trace::emit_span(job.trace, "queue_wait", job.enqueued_us, drained_us);
                        trace::emit_span(job.trace, "batch_assembly", drained_us, assembled_us);
                        trace::emit_span(job.trace, "scoring", assembled_us, scored_us);
                    }
                    // A receiver gone away just means the caller bailed out;
                    // drop its rows rather than killing the worker.
                    let _ = job.reply.send((job.slot, local_version, Ok(row)));
                }
            }
        },
        |signal| {
            let _shutdown = ShutdownGuard(&shared);
            let client = Client {
                shared: &shared,
                signal,
                cfg,
            };
            master(&client)
        },
    )
}

fn notify_shutdown(shared: &Shared) {
    // Take the lock so no worker can check `open` between its queue
    // inspection and its wait — the wake-up cannot be missed.
    drop(lock(shared));
    shared.arrivals.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{sess, ReprToyModel, ToyModel};

    fn frozen(n: usize, seed: u64) -> FrozenModel<ToyModel> {
        FrozenModel::freeze(ToyModel::new(n, seed), 32)
    }

    #[test]
    fn engine_scores_match_direct_frozen_scores() {
        let f = frozen(9, 4);
        let sessions: Vec<Session> = (0..23).map(|i| sess(&[i % 9, (i + 2) % 9])).collect();
        let want = f.score_batch(&sessions);
        let cfg = EngineConfig {
            workers: 3,
            max_batch: 4,
            flush_deadline_us: 200,
            ..EngineConfig::default()
        };
        let got = serve(&f, || ToyModel::new(9, 0), cfg, |client| {
            client
                .score(ScoreBatch {
                    sessions: sessions.clone(),
                })
                .scores
        });
        assert_eq!(got, want, "micro-batched rows must be bitwise-identical");
    }

    #[test]
    fn top_k_requests_are_served() {
        let f = frozen(6, 1);
        let got = serve(
            &f,
            || ToyModel::new(6, 0),
            EngineConfig::default(),
            |client| {
                client.top_k(TopK {
                    sessions: vec![sess(&[1]), sess(&[2, 3])],
                    k: 2,
                })
            },
        );
        assert_eq!(got.items.len(), 2);
        for recs in &got.items {
            assert_eq!(recs.len(), 2);
            assert!(recs[0].score >= recs[1].score);
        }
    }

    #[test]
    fn empty_request_returns_immediately() {
        let f = frozen(4, 2);
        let got = serve(
            &f,
            || ToyModel::new(4, 0),
            EngineConfig::default(),
            |client| client.score(ScoreBatch::default()),
        );
        assert!(got.scores.is_empty());
    }

    #[test]
    fn single_worker_underfull_batches_flush_on_deadline() {
        let f = frozen(5, 3);
        let cfg = EngineConfig {
            workers: 1,
            max_batch: 64, // never fills: the deadline must flush
            flush_deadline_us: 100,
            ..EngineConfig::default()
        };
        let sessions = vec![sess(&[0]), sess(&[1]), sess(&[2])];
        let want = f.score_batch(&sessions);
        let got = serve(&f, || ToyModel::new(5, 0), cfg, |client| {
            client
                .score(ScoreBatch {
                    sessions: sessions.clone(),
                })
                .scores
        });
        assert_eq!(got, want);
    }

    #[test]
    fn master_panic_shuts_workers_down_instead_of_hanging() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let f = frozen(4, 6);
        // Without the ShutdownGuard this test never returns: the pool
        // catches the master panic, then blocks joining workers that wait
        // for a shutdown notification nobody will send.
        let err = catch_unwind(AssertUnwindSafe(|| {
            serve(
                &f,
                || ToyModel::new(4, 0),
                EngineConfig::default(),
                |client| {
                    let _ = client.score(ScoreBatch {
                        sessions: vec![sess(&[1, 2])],
                    });
                    panic!("master bailed mid-serve");
                },
            )
        }))
        .expect_err("master panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("master bailed"), "wrong panic surfaced: {msg}");
    }

    #[test]
    fn empty_sessions_are_answered_inline_without_reaching_workers() {
        let f = frozen(6, 9);
        let valid = sess(&[2, 4]);
        let want = f.score_batch(std::slice::from_ref(&valid));
        let (scores, recs, later) = serve(
            &f,
            || ToyModel::new(6, 0),
            EngineConfig::default(),
            |client| {
                let scores = client.score(ScoreBatch {
                    sessions: vec![sess(&[]), valid.clone(), sess(&[])],
                });
                let recs = client.top_k(TopK {
                    sessions: vec![sess(&[])],
                    k: 3,
                });
                // The engine must still be fully alive afterwards.
                let later = client.score(ScoreBatch {
                    sessions: vec![valid.clone()],
                });
                (scores, recs, later)
            },
        );
        assert_eq!(scores.scores.len(), 3);
        assert!(scores.scores[0].is_empty());
        assert_eq!(scores.scores[1], want[0]);
        assert!(scores.scores[2].is_empty());
        assert_eq!(recs.items, vec![Vec::new()]);
        assert_eq!(later.scores, want);
    }

    #[test]
    fn shedding_submit_is_rejected_when_the_queue_is_over_cap() {
        let f = frozen(5, 11);
        let cfg = EngineConfig {
            workers: 1,
            max_batch: 4,
            flush_deadline_us: 200,
            queue_cap: 0, // every shedding submit sees a full queue
            ..EngineConfig::default()
        };
        let got = serve(&f, || ToyModel::new(5, 0), cfg, |client| {
            let opts = SubmitOptions {
                shed: true,
                ..SubmitOptions::default()
            };
            let rejected = client.try_score(
                ScoreBatch {
                    sessions: vec![sess(&[1])],
                },
                opts,
            );
            // A non-shedding submit ignores the cap entirely.
            let accepted = client.try_score(
                ScoreBatch {
                    sessions: vec![sess(&[1])],
                },
                SubmitOptions::default(),
            );
            (rejected, accepted)
        });
        assert_eq!(got.0, Err(ServeError::Overloaded { queued: 0, cap: 0 }));
        let accepted = got.1.expect("non-shedding submit must be admitted");
        assert_eq!(accepted.scores.len(), 1);
        assert!(!accepted.scores[0].is_empty());
    }

    #[test]
    fn queued_past_deadline_is_shed_not_scored() {
        let f = frozen(5, 13);
        let cfg = EngineConfig {
            workers: 1,
            // A huge flush deadline with an unfillable batch keeps the job
            // queued long past its 1us budget.
            max_batch: 64,
            flush_deadline_us: 20_000,
            ..EngineConfig::default()
        };
        let got = serve(&f, || ToyModel::new(5, 0), cfg, |client| {
            client.try_score(
                ScoreBatch {
                    sessions: vec![sess(&[2])],
                },
                SubmitOptions {
                    deadline_us: 1,
                    shed: false,
                },
            )
        });
        match got {
            Err(ServeError::DeadlineExpired { waited_us }) => {
                assert!(waited_us >= 1, "shed job must report its queue wait");
            }
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_still_scores_bitwise_identically() {
        let f = frozen(6, 17);
        let sessions = vec![sess(&[1, 2]), sess(&[3])];
        let want = f.score_batch(&sessions);
        let got = serve(
            &f,
            || ToyModel::new(6, 0),
            EngineConfig::default(),
            |client| {
                client.try_score(
                    ScoreBatch {
                        sessions: sessions.clone(),
                    },
                    SubmitOptions {
                        deadline_us: 60_000_000,
                        shed: true,
                    },
                )
            },
        );
        assert_eq!(got.expect("well within deadline").scores, want);
    }

    #[test]
    fn sequential_requests_reuse_the_running_engine() {
        let f = frozen(7, 8);
        let want_a = f.score_batch(&[sess(&[1, 2])]);
        let want_b = f.score_batch(&[sess(&[3])]);
        let (got_a, got_b) = serve(
            &f,
            || ToyModel::new(7, 0),
            EngineConfig::default(),
            |client| {
                let a = client.score(ScoreBatch {
                    sessions: vec![sess(&[1, 2])],
                });
                let b = client.score(ScoreBatch {
                    sessions: vec![sess(&[3])],
                });
                (a.scores, b.scores)
            },
        );
        assert_eq!(got_a, want_a);
        assert_eq!(got_b, want_b);
    }

    #[test]
    fn hot_swap_retags_and_rescores_without_drain() {
        let f_a = frozen(5, 4);
        let f_b = frozen(5, 5);
        let sessions = vec![sess(&[1, 2]), sess(&[3])];
        let want_a = f_a.score_batch(&sessions);
        let want_b = f_b.score_batch(&sessions);
        assert_ne!(want_a, want_b, "the two seeds must score differently");
        let bytes =
            snapshot::encode_snapshot(f_b.snapshot(), f_b.max_session_len(), Precision::F32);
        let (before, after) = serve(
            &f_a,
            || ToyModel::new(5, 4),
            EngineConfig::default(),
            |client| {
                let before = client.score(ScoreBatch {
                    sessions: sessions.clone(),
                });
                client.stage_snapshot(2, &bytes).expect("stage");
                client.activate(2).expect("activate");
                let after = client.score(ScoreBatch {
                    sessions: sessions.clone(),
                });
                (before, after)
            },
        );
        assert_eq!(before.scores, want_a);
        assert_eq!(before.model_version, 1);
        assert_eq!(after.scores, want_b);
        assert_eq!(after.model_version, 2);
    }

    #[test]
    fn control_plane_rejects_bad_snapshots_and_keeps_serving() {
        let f = frozen(5, 11);
        let wrong = FrozenModel::freeze(ToyModel::new(7, 1), 32);
        let wrong_bytes = snapshot::encode_snapshot(wrong.snapshot(), 32, Precision::F32);
        let got = serve(
            &f,
            || ToyModel::new(5, 11),
            EngineConfig::default(),
            |client| {
                let malformed = client.stage_snapshot(2, b"not a snapshot");
                let layout = client.stage_snapshot(2, &wrong_bytes);
                let unknown = client.activate(9);
                let healthy = client.score(ScoreBatch {
                    sessions: vec![sess(&[1])],
                });
                (malformed, layout, unknown, healthy)
            },
        );
        assert!(matches!(got.0, Err(SwapError::Malformed(_))), "{:?}", got.0);
        assert!(
            matches!(got.1, Err(SwapError::WrongLayout { .. })),
            "{:?}",
            got.1
        );
        assert_eq!(got.2, Err(SwapError::UnknownVersion(9)));
        assert_eq!(got.3.model_version, 1, "rejections must not move the tag");
        assert_eq!(got.3.scores.len(), 1);
    }

    #[test]
    fn status_reports_active_and_staged_versions() {
        let f = frozen(5, 3);
        let bytes = snapshot::encode_snapshot(f.snapshot(), f.max_session_len(), Precision::F32);
        let (s0, s1, s2) = serve(
            &f,
            || ToyModel::new(5, 3),
            EngineConfig::default(),
            |client| {
                let s0 = client.status();
                client.stage_snapshot(7, &bytes).expect("stage");
                let s1 = client.status();
                client.activate(7).expect("activate");
                let s2 = client.status();
                (s0, s1, s2)
            },
        );
        assert_eq!(s0.active_version, 1);
        assert_eq!(s0.staged, vec![1]);
        assert_eq!(s0.cache, crate::CacheStats::default(), "cache off by default");
        assert_eq!(s1.active_version, 1);
        assert_eq!(s1.staged, vec![1, 7]);
        assert_eq!(s2.active_version, 7);
    }

    #[test]
    fn repr_cache_keeps_scores_bitwise_and_records_hits() {
        let f = FrozenModel::freeze(ReprToyModel(ToyModel::new(6, 9)), 32);
        let sessions = vec![sess(&[1, 2]), sess(&[3, 4]), sess(&[1, 2])];
        let want = f.score_batch(&sessions);
        let cfg = EngineConfig {
            repr_cache: 64,
            ..EngineConfig::default()
        };
        let (cold, warm, status) = serve(
            &f,
            || ReprToyModel(ToyModel::new(6, 9)),
            cfg,
            |client| {
                let cold = client.score(ScoreBatch {
                    sessions: sessions.clone(),
                });
                let warm = client.score(ScoreBatch {
                    sessions: sessions.clone(),
                });
                (cold, warm, client.status())
            },
        );
        for got in [&cold.scores, &warm.scores] {
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.len(), w.len());
                for (a, b) in g.iter().zip(w) {
                    assert_eq!(a.to_bits(), b.to_bits(), "cached row must be bitwise");
                }
            }
        }
        // the warm pass alone replays three sessions whose reprs are resident
        assert!(status.cache.hits >= 3, "expected warm hits: {:?}", status.cache);
        assert!(status.cache.entries >= 1);
    }
}
