//! The batch-first prediction API: request/response pairs.
//!
//! Serving traffic is expressed as *batches of session prefixes*, not single
//! sessions — the shape both the micro-batching engine and the batched
//! kernels want. A [`ScoreBatch`] asks for full-vocabulary score vectors
//! (what the eval harness consumes); a [`TopK`] asks only for the `k`
//! best-scored items per session (what a recommendation endpoint returns).

use embsr_sessions::{ItemId, Session};

/// Request: score the full item vocabulary for each session prefix.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScoreBatch {
    /// Session prefixes to score, in reply order.
    pub sessions: Vec<Session>,
}

/// Response to a [`ScoreBatch`]: one `num_items`-length score vector per
/// requested session, in request order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScoreResponse {
    /// `scores[i][v]` is the model's score of item `v` after `sessions[i]`.
    pub scores: Vec<Vec<f32>>,
    /// Snapshot version that produced the scores. During a hot-swap a
    /// batch may mix replicas on the old and new versions; the tag is the
    /// newest contributing version (0 when the server predates tagging).
    pub model_version: u64,
}

/// Request: the `k` highest-scored items for each session prefix.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TopK {
    /// Session prefixes to score, in reply order.
    pub sessions: Vec<Session>,
    /// Number of recommendations per session.
    pub k: usize,
}

/// Response to a [`TopK`]: per session, the best `k` items best-first.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TopKResponse {
    /// `items[i]` are the recommendations for `sessions[i]`, descending by
    /// score (ties broken by ascending item id, so responses are
    /// deterministic).
    pub items: Vec<Vec<ScoredItem>>,
    /// Snapshot version that produced the recommendations (see
    /// [`ScoreResponse::model_version`]).
    pub model_version: u64,
}

/// One recommended item with its score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredItem {
    /// The recommended item.
    pub item: ItemId,
    /// The model's score for it.
    pub score: f32,
}

/// Selects the `k` best items of one score row, descending by score with
/// ascending-id tie-break. `k` is clamped to the vocabulary size.
pub fn top_k_of_row(scores: &[f32], k: usize) -> Vec<ScoredItem> {
    let mut order: Vec<u32> = (0..scores.len() as u32).collect();
    order.sort_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    order
        .into_iter()
        .take(k)
        .map(|i| ScoredItem {
            item: i,
            score: scores[i as usize],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_sorts_descending_with_id_tiebreak() {
        let got = top_k_of_row(&[0.5, 2.0, 0.5, -1.0], 3);
        let items: Vec<u32> = got.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![1, 0, 2]);
        assert_eq!(got[0].score, 2.0);
    }

    #[test]
    fn top_k_clamps_to_vocabulary() {
        assert_eq!(top_k_of_row(&[1.0, 0.0], 10).len(), 2);
        assert!(top_k_of_row(&[], 3).is_empty());
    }
}
