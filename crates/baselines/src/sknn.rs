//! SKNN: session-based k-nearest-neighbors (Jannach & Ludewig, 2017).
//!
//! A test session is compared (binary cosine over item sets) against
//! training sessions that share at least one item; the scores of the `k`
//! most similar neighbors are accumulated onto their items.

use std::collections::{HashMap, HashSet};

use embsr_sessions::{Example, ItemId, Session};
use embsr_train::Recommender;

/// The session-kNN baseline.
pub struct Sknn {
    num_items: usize,
    /// Number of neighbors to use.
    pub k: usize,
    /// Cap on candidate neighbors scanned per query (most recent first),
    /// the standard SKNN efficiency trick.
    pub sample_size: usize,
    /// Item sets of the training sessions (sorted + deduped, so every
    /// iteration over a neighbor is in item-id order).
    neighbors: Vec<Vec<ItemId>>,
    /// Inverted index: item → training-session indices.
    index: HashMap<ItemId, Vec<u32>>,
}

impl Sknn {
    /// Creates SKNN with the usual defaults (k=100, sample 500).
    pub fn new(num_items: usize) -> Self {
        Sknn {
            num_items,
            k: 100,
            sample_size: 500,
            neighbors: Vec::new(),
            index: HashMap::new(),
        }
    }
}

impl Recommender for Sknn {
    fn name(&self) -> &str {
        "SKNN"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn fit(&mut self, train: &[Example], _val: &[Example]) {
        self.neighbors.clear();
        self.index.clear();
        for (i, ex) in train.iter().enumerate() {
            let mut items: Vec<ItemId> = ex.session.items().collect();
            items.push(ex.target);
            items.sort_unstable();
            items.dedup();
            for &it in &items {
                self.index.entry(it).or_default().push(i as u32);
            }
            self.neighbors.push(items);
        }
    }

    fn scores(&self, session: &Session) -> Vec<f32> {
        // distinct query items, id-sorted (for membership and the cosine)
        let mut query: Vec<ItemId> = session.items().collect();
        if query.is_empty() {
            return vec![0.0; self.num_items];
        }
        // candidate enumeration scans query items most recent first — a
        // deterministic order, unlike the hash-set iteration it replaces
        let recency: Vec<ItemId> = {
            let mut seen_items: HashSet<ItemId> = HashSet::new();
            let mut v = Vec::new();
            for &it in query.iter().rev() {
                if seen_items.insert(it) {
                    v.push(it);
                }
            }
            v
        };
        query.sort_unstable();
        query.dedup();
        // candidate sessions sharing any item, most recent first
        let mut cands: Vec<u32> = Vec::new();
        let mut seen: HashSet<u32> = HashSet::new();
        for it in &recency {
            if let Some(ids) = self.index.get(it) {
                for &id in ids.iter().rev() {
                    if seen.insert(id) {
                        cands.push(id);
                        if cands.len() >= self.sample_size {
                            break;
                        }
                    }
                }
            }
            if cands.len() >= self.sample_size {
                break;
            }
        }
        // binary cosine similarity
        let mut sims: Vec<(f32, u32)> = cands
            .into_iter()
            .map(|id| {
                let other = &self.neighbors[id as usize];
                let inter = query
                    .iter()
                    .filter(|it| other.binary_search(it).is_ok())
                    .count() as f32;
                let sim = inter / ((query.len() as f32).sqrt() * (other.len() as f32).sqrt());
                (sim, id)
            })
            .filter(|(s, _)| *s > 0.0)
            .collect();
        // equal similarities tie-break by session id so truncation is stable
        sims.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        sims.truncate(self.k);

        let mut scores = vec![0.0f32; self.num_items];
        for (sim, id) in sims {
            for &it in &self.neighbors[id as usize] {
                if query.binary_search(&it).is_err() && (it as usize) < self.num_items {
                    scores[it as usize] += sim;
                }
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    fn example(items: &[u32], target: u32) -> Example {
        Example {
            session: Session {
                id: 0,
                events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
            },
            target,
        }
    }

    fn query(items: &[u32]) -> Session {
        Session {
            id: 9,
            events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
        }
    }

    #[test]
    fn co_occurring_item_is_recommended() {
        let mut m = Sknn::new(6);
        m.fit(
            &[
                example(&[1, 2], 3),
                example(&[1, 2], 3),
                example(&[4], 5),
            ],
            &[],
        );
        let scores = m.scores(&query(&[1, 2]));
        let best = (0..6).max_by(|&a, &b| scores[a].total_cmp(&scores[b])).unwrap();
        assert_eq!(best, 3);
    }

    #[test]
    fn query_items_are_not_recommended_back() {
        let mut m = Sknn::new(4);
        m.fit(&[example(&[1, 2], 3)], &[]);
        let scores = m.scores(&query(&[1, 2]));
        assert_eq!(scores[1], 0.0);
        assert_eq!(scores[2], 0.0);
        assert!(scores[3] > 0.0);
    }

    #[test]
    fn disjoint_sessions_contribute_nothing() {
        let mut m = Sknn::new(6);
        m.fit(&[example(&[4, 5], 4)], &[]);
        assert!(m.scores(&query(&[1, 2])).iter().all(|&s| s == 0.0));
    }

    #[test]
    fn empty_query_is_safe() {
        let m = Sknn::new(3);
        assert_eq!(m.scores(&query(&[])), vec![0.0; 3]);
    }
}
