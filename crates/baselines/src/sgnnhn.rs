//! SGNN-HN (Pan et al., CIKM 2020): star graph neural network with highway
//! networks — the strongest macro-behavior baseline in the paper.
//!
//! A star node connected to every satellite propagates non-adjacent
//! information; a highway network blends pre-/post-GNN embeddings; the
//! readout attends over steps with reversed position embeddings and scores
//! with the NISER-style normalized dot product (`w_k = 12`).

use embsr_nn::{
    Dropout, Embedding, Forward, GgnnCell, Highway, Linear, Module, ModuleCtx, NormalizedScorer,
    StarAttention, StarGate,
};
use embsr_sessions::Session;
use embsr_tensor::{uniform_init, Rng, Tensor};
use embsr_train::SessionModel;

use crate::common::SessionDigraph;

/// The SGNN-HN baseline.
pub struct SgnnHn {
    items: Embedding,
    positions: Embedding,
    proj_in: Linear,
    proj_out: Linear,
    cell: GgnnCell,
    star_gate: StarGate,
    star_attn: StarAttention,
    highway: Highway,
    pos_proj: Linear,
    att_w1: Linear,
    att_w2: Linear,
    att_w3: Linear,
    q: Tensor,
    combine: Linear,
    dropout: Dropout,
    scorer: NormalizedScorer,
    layers: usize,
    num_items: usize,
    dim: usize,
    max_len: usize,
}

impl SgnnHn {
    /// Builds the model (one GNN layer, `w_k = 12` as in the paper).
    pub fn new(num_items: usize, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let max_len = 64;
        SgnnHn {
            items: Embedding::new(num_items, dim, &mut rng),
            positions: Embedding::new(max_len, dim, &mut rng),
            proj_in: Linear::new(dim, dim, &mut rng),
            proj_out: Linear::new(dim, dim, &mut rng),
            cell: GgnnCell::new(dim, &mut rng),
            star_gate: StarGate::new(dim, &mut rng),
            star_attn: StarAttention::new(dim, &mut rng),
            highway: Highway::new(dim, &mut rng),
            pos_proj: Linear::new(2 * dim, dim, &mut rng),
            att_w1: Linear::new_no_bias(dim, dim, &mut rng),
            att_w2: Linear::new(dim, dim, &mut rng),
            att_w3: Linear::new_no_bias(dim, dim, &mut rng),
            q: uniform_init(&[dim, 1], &mut rng),
            combine: Linear::new_no_bias(2 * dim, dim, &mut rng),
            dropout: Dropout::new(0.2),
            scorer: NormalizedScorer::new(12.0),
            layers: 1,
            num_items,
            dim,
            max_len,
        }
    }

    /// Combined star-graph session representation `m` (`[d]`).
    fn session_repr(&self, session: &Session, training: bool, rng: &mut Rng) -> Tensor {
        assert!(!session.is_empty(), "empty session");
        let mut ctx = ModuleCtx::new(training, rng);
        let graph = SessionDigraph::from_session(session);
        let idx: Vec<usize> = graph.nodes.iter().map(|&i| i as usize).collect();
        let h0 = self.dropout.forward(&self.items.lookup(&idx), &mut ctx); // [c, d]
        let mut star = h0.mean_rows();
        let mut h = h0.clone();
        for _ in 0..self.layers {
            let m_in = graph.a_in.matmul(&self.proj_in.apply(&h));
            let m_out = graph.a_out.matmul(&self.proj_out.apply(&h));
            let a = m_in.concat_cols(&m_out);
            let updated = self.cell.update(&a, &h);
            h = self.star_gate.propagate(&updated, &star);
            star = self.star_attn.attend(&h, &star);
        }
        let h_f = self.highway.blend(&h0, &h);

        // readout over steps with reversed position embeddings
        let steps = h_f.gather_rows(&graph.step_node); // [n, d]
        let n = steps.rows().min(self.max_len);
        let steps = steps.slice_rows(steps.rows() - n, steps.rows());
        let rev_pos: Vec<usize> = (0..n).rev().collect();
        let pos = self.positions.lookup(&rev_pos);
        // the original's position fusion: x_i = tanh(W_p [h_i ; p_i] + b)
        let with_pos = self.pos_proj.apply(&steps.concat_cols(&pos)).tanh();

        let last = with_pos.row(n - 1);
        let last_rows = Tensor::ones(&[n, 1]).matmul(&last.reshape(&[1, self.dim]));
        let star_rows = Tensor::ones(&[n, 1]).matmul(&star.reshape(&[1, self.dim]));
        let act = self
            .att_w1
            .apply(&last_rows)
            .add(&self.att_w2.apply(&with_pos))
            .add(&self.att_w3.apply(&star_rows))
            .sigmoid();
        let alpha = act.matmul(&self.q); // [n, 1]
        let alpha_full = alpha.matmul(&Tensor::ones(&[1, self.dim]));
        let s_g = alpha_full.mul(&with_pos).sum_rows();
        self.combine.apply(&s_g.concat_cols(&last))
    }
}

impl SessionModel for SgnnHn {
    fn name(&self) -> &str {
        "SGNN-HN"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.items.parameters();
        p.extend(self.positions.parameters());
        for l in [
            &self.proj_in,
            &self.proj_out,
            &self.pos_proj,
            &self.att_w1,
            &self.att_w2,
            &self.att_w3,
            &self.combine,
        ] {
            p.extend(l.parameters());
        }
        p.extend(self.cell.parameters());
        p.extend(self.star_gate.parameters());
        p.extend(self.star_attn.parameters());
        p.extend(self.highway.parameters());
        p.push(self.q.clone());
        p
    }

    fn logits(&self, session: &Session, training: bool, rng: &mut Rng) -> Tensor {
        self.scorer
            .logits(&self.session_repr(session, training, rng), &self.items.weight)
    }

    fn logits_batch(&self, sessions: &[&Session]) -> Tensor {
        assert!(!sessions.is_empty(), "logits_batch of an empty batch");
        let mut rng = Rng::seed_from_u64(0); // dropout is off: never drawn from
        let reprs: Vec<Tensor> = sessions
            .iter()
            .map(|s| self.session_repr(s, false, &mut rng))
            .collect();
        self.scorer
            .logits_rows(&Tensor::stack_rows(&reprs), &self.items.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    fn sess(items: &[u32]) -> Session {
        Session {
            id: 0,
            events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
        }
    }

    #[test]
    fn logits_bounded_by_wk() {
        let m = SgnnHn::new(6, 8, 0);
        let y = m
            .logits(&sess(&[1, 2, 3, 1]), false, &mut Rng::seed_from_u64(0))
            .to_vec();
        assert_eq!(y.len(), 6);
        assert!(y.iter().all(|v| v.abs() <= 12.0 + 1e-3));
    }

    #[test]
    fn order_matters_via_positions() {
        let m = SgnnHn::new(6, 8, 1);
        let mut rng = Rng::seed_from_u64(0);
        let a = m.logits(&sess(&[1, 2, 3]), false, &mut rng).to_vec();
        let b = m.logits(&sess(&[3, 2, 1]), false, &mut rng).to_vec();
        assert_ne!(a, b);
    }

    #[test]
    fn all_parameters_used() {
        let m = SgnnHn::new(5, 4, 2);
        m.logits(&sess(&[0, 1, 2, 1]), true, &mut Rng::seed_from_u64(0))
            .cross_entropy_single(3)
            .backward();
        for (i, p) in m.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i}");
        }
    }
}
