//! NARM (Li et al., CIKM 2017): a GRU encoder whose hidden states feed an
//! attention decoder; the session is represented by the concatenation of the
//! global (attention-pooled) and local (last hidden) vectors, projected and
//! scored bilinearly against item embeddings.

use embsr_nn::{Dropout, Embedding, Forward, Gru, Linear, Module, ModuleCtx};
use embsr_sessions::Session;
use embsr_tensor::{uniform_init, Rng, Tensor};
use embsr_train::SessionModel;

use crate::common::DotScorer;

/// The NARM baseline.
pub struct Narm {
    items: Embedding,
    gru: Gru,
    att_hidden: Linear,
    att_last: Linear,
    v: Tensor,
    project: Linear,
    dropout: Dropout,
    num_items: usize,
    dim: usize,
}

impl Narm {
    /// Builds the model.
    pub fn new(num_items: usize, dim: usize, dropout: f32, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        Narm {
            items: Embedding::new(num_items, dim, &mut rng),
            gru: Gru::new(dim, dim, &mut rng),
            att_hidden: Linear::new_no_bias(dim, dim, &mut rng),
            att_last: Linear::new_no_bias(dim, dim, &mut rng),
            v: uniform_init(&[dim, 1], &mut rng),
            project: Linear::new_no_bias(2 * dim, dim, &mut rng),
            dropout: Dropout::new(dropout),
            num_items,
            dim,
        }
    }

    /// Projected `[c_global ; h_last]` session representation (`[d]`).
    fn session_repr(&self, session: &Session, training: bool, rng: &mut Rng) -> Tensor {
        let idx: Vec<usize> = session.macro_items().iter().map(|&i| i as usize).collect();
        assert!(!idx.is_empty(), "empty session");
        let n = idx.len();
        let mut ctx = ModuleCtx::new(training, rng);
        let embs = self.dropout.forward(&self.items.lookup(&idx), &mut ctx);
        let hidden = self.gru.apply(&embs); // [n, d]
        let h_last = hidden.row(n - 1); // [d]

        // additive attention: α_j = vᵀ σ(W₁ h_last + W₂ h_j)
        let last_rows = Tensor::ones(&[n, 1]).matmul(&h_last.reshape(&[1, self.dim]));
        let act = self
            .att_last
            .apply(&last_rows)
            .add(&self.att_hidden.apply(&hidden))
            .sigmoid();
        let alpha = act.matmul(&self.v); // [n, 1]
        let alpha_full = alpha.matmul(&Tensor::ones(&[1, self.dim]));
        let c_global = alpha_full.mul(&hidden).sum_rows(); // [d]

        self.dropout.forward(
            &self.project.apply(&c_global.concat_cols(&h_last)),
            &mut ctx,
        )
    }
}

impl SessionModel for Narm {
    fn name(&self) -> &str {
        "NARM"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.items.parameters();
        p.extend(self.gru.parameters());
        p.extend(self.att_hidden.parameters());
        p.extend(self.att_last.parameters());
        p.push(self.v.clone());
        p.extend(self.project.parameters());
        p
    }

    fn logits(&self, session: &Session, training: bool, rng: &mut Rng) -> Tensor {
        let c = self.session_repr(session, training, rng);
        DotScorer::logits(&c, &self.items.weight)
    }

    fn logits_batch(&self, sessions: &[&Session]) -> Tensor {
        assert!(!sessions.is_empty(), "logits_batch of an empty batch");
        let mut rng = Rng::seed_from_u64(0); // dropout is off: never drawn from
        let reprs: Vec<Tensor> = sessions
            .iter()
            .map(|s| self.session_repr(s, false, &mut rng))
            .collect();
        DotScorer::logits_rows(&Tensor::stack_rows(&reprs), &self.items.weight)
    }

    fn repr_infer(&self, session: &Session) -> Option<Tensor> {
        let mut rng = Rng::seed_from_u64(0); // dropout is off: never drawn from
        Some(self.session_repr(session, false, &mut rng))
    }

    fn logits_of_reprs(&self, reprs: &Tensor) -> Option<Tensor> {
        Some(DotScorer::logits_rows(reprs, &self.items.weight))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    fn sess(items: &[u32]) -> Session {
        Session {
            id: 0,
            events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
        }
    }

    #[test]
    fn logits_shape_and_finite() {
        let m = Narm::new(9, 8, 0.1, 0);
        let y = m.logits(&sess(&[1, 4, 2, 4]), false, &mut Rng::seed_from_u64(0));
        assert_eq!(y.len(), 9);
        assert!(y.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn all_parameters_receive_gradients() {
        let m = Narm::new(6, 4, 0.0, 1);
        m.logits(&sess(&[0, 1, 2]), true, &mut Rng::seed_from_u64(1))
            .cross_entropy_single(3)
            .backward();
        for (i, p) in m.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }
}
