//! First-order Markov chain over macro-item transitions — the classic
//! non-neural sequential baseline underlying FPMC (paper related work [4],
//! [18]). Scores the next item by the smoothed transition frequency from the
//! session's last macro item, with a popularity back-off for unseen rows.

use std::collections::HashMap;

use embsr_sessions::{Example, ItemId, Session};
use embsr_train::Recommender;

/// The Markov-chain baseline.
pub struct MarkovChain {
    num_items: usize,
    /// Sparse transition rows `from -> [(to, count)]`, each row sorted by
    /// successor id (the map itself is only probed, never iterated).
    transitions: HashMap<ItemId, Vec<(ItemId, f32)>>,
    /// Global popularity back-off, normalized to (0, 0.5].
    popularity: Vec<f32>,
}

impl MarkovChain {
    /// Creates the baseline.
    pub fn new(num_items: usize) -> Self {
        MarkovChain {
            num_items,
            transitions: HashMap::new(),
            popularity: vec![0.0; num_items],
        }
    }
}

impl Recommender for MarkovChain {
    fn name(&self) -> &str {
        "Markov"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn fit(&mut self, train: &[Example], _val: &[Example]) {
        let mut counts: HashMap<ItemId, HashMap<ItemId, f32>> = HashMap::new();
        let mut pop = vec![0.0f32; self.num_items];
        for ex in train {
            let mut seq = ex.session.macro_items();
            seq.push(ex.target);
            for w in seq.windows(2) {
                *counts.entry(w[0]).or_default().entry(w[1]).or_insert(0.0) += 1.0;
            }
            for &it in &seq {
                if (it as usize) < self.num_items {
                    pop[it as usize] += 1.0;
                }
            }
        }
        // finalize each row as an id-sorted list so scoring iterates
        // transitions in a fixed order
        self.transitions = counts
            .into_iter()
            .map(|(from, row)| {
                let mut r: Vec<(ItemId, f32)> = row.into_iter().collect();
                r.sort_unstable_by_key(|&(to, _)| to);
                (from, r)
            })
            .collect();
        let max = pop.iter().cloned().fold(1.0f32, f32::max);
        self.popularity = pop.into_iter().map(|c| 0.5 * c / max).collect();
    }

    fn scores(&self, session: &Session) -> Vec<f32> {
        let mut scores = self.popularity.clone();
        if let Some(last) = session.macro_items().last() {
            if let Some(row) = self.transitions.get(last) {
                for &(to, count) in row {
                    if (to as usize) < self.num_items {
                        scores[to as usize] += count;
                    }
                }
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    fn example(items: &[u32], target: u32) -> Example {
        Example {
            session: Session {
                id: 0,
                events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
            },
            target,
        }
    }

    fn query(items: &[u32]) -> Session {
        Session {
            id: 9,
            events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
        }
    }

    #[test]
    fn learns_dominant_transition() {
        let mut m = MarkovChain::new(5);
        m.fit(
            &[example(&[1], 2), example(&[1], 2), example(&[1], 3)],
            &[],
        );
        let s = m.scores(&query(&[0, 1]));
        assert!(s[2] > s[3], "2 is the more frequent successor of 1");
        assert!(s[3] > s[4], "3 seen once still beats never-seen");
    }

    #[test]
    fn backs_off_to_popularity_for_unseen_context() {
        let mut m = MarkovChain::new(4);
        m.fit(&[example(&[1], 2)], &[]);
        let s = m.scores(&query(&[3])); // item 3 has no outgoing transitions
        // popularity gives items 1 and 2 non-zero mass
        assert!(s[1] > 0.0 && s[2] > 0.0);
        assert_eq!(s[0], 0.0);
    }

    #[test]
    fn uses_macro_not_micro_last_item() {
        let mut m = MarkovChain::new(5);
        m.fit(&[example(&[1], 4)], &[]);
        // two micro events on item 1: still one macro item
        let s = m.scores(&query(&[1, 1]));
        let best = (0..5).max_by(|&a, &b| s[a].total_cmp(&s[b])).unwrap();
        assert_eq!(best, 4);
    }
}
