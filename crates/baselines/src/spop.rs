//! S-POP: session popularity (paper baseline list, after GRU4Rec's setup).
//!
//! Recommends the items most frequent *within the current session*, breaking
//! ties (and filling the tail) by global training popularity. On corpora
//! where the ground truth rarely re-occurs in the session (Trivago) it
//! scores essentially zero — exactly the behaviour Table III reports.

use std::collections::HashMap;

use embsr_sessions::{Example, Session};
use embsr_train::Recommender;

/// The improved popularity baseline.
pub struct SPop {
    num_items: usize,
    global: Vec<f32>,
}

impl SPop {
    /// Creates the baseline for a vocabulary of `num_items`.
    pub fn new(num_items: usize) -> Self {
        SPop {
            num_items,
            global: vec![0.0; num_items],
        }
    }
}

impl Recommender for SPop {
    fn name(&self) -> &str {
        "S-POP"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn fit(&mut self, train: &[Example], _val: &[Example]) {
        let mut counts: HashMap<u32, f32> = HashMap::new();
        for ex in train {
            for e in &ex.session.events {
                *counts.entry(e.item).or_default() += 1.0;
            }
            *counts.entry(ex.target).or_default() += 1.0;
        }
        // drain into an id-sorted list so the normalization pass (and any
        // float it touches) runs in a fixed order
        let mut pairs: Vec<(u32, f32)> = counts.into_iter().collect();
        pairs.sort_unstable_by_key(|&(item, _)| item);
        let max = pairs.iter().map(|&(_, c)| c).fold(1.0f32, f32::max);
        for &(item, c) in &pairs {
            if (item as usize) < self.num_items {
                self.global[item as usize] = c / max; // in (0, 1]
            }
        }
    }

    fn scores(&self, session: &Session) -> Vec<f32> {
        let mut scores = vec![0.0f32; self.num_items];
        // global popularity in (0,1] as tie-breaker / tail
        scores.copy_from_slice(&self.global);
        // in-session counts dominate (integer part)
        for e in &session.events {
            if (e.item as usize) < self.num_items {
                scores[e.item as usize] += 1.0;
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    fn example(items: &[u32], target: u32) -> Example {
        Example {
            session: Session {
                id: 0,
                events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
            },
            target,
        }
    }

    #[test]
    fn in_session_items_beat_global_popularity() {
        let mut m = SPop::new(5);
        // item 0 globally hot
        m.fit(&vec![example(&[0, 0, 0, 1], 0); 10], &[]);
        let s = Session {
            id: 1,
            events: vec![MicroBehavior::new(3, 0)],
        };
        let scores = m.scores(&s);
        let best = (0..5).max_by(|&a, &b| scores[a].total_cmp(&scores[b])).unwrap();
        assert_eq!(best, 3, "session item must outrank global popularity");
    }

    #[test]
    fn repeated_session_items_rank_by_count() {
        let m = SPop::new(4);
        let s = Session {
            id: 0,
            events: vec![
                MicroBehavior::new(2, 0),
                MicroBehavior::new(1, 0),
                MicroBehavior::new(2, 1),
            ],
        };
        let scores = m.scores(&s);
        assert!(scores[2] > scores[1]);
        assert!(scores[1] > scores[0]);
    }

    #[test]
    fn unseen_items_score_zero_without_fit() {
        let m = SPop::new(3);
        let s = Session {
            id: 0,
            events: vec![],
        };
        assert_eq!(m.scores(&s), vec![0.0; 3]);
    }
}
