//! BERT4Rec (Sun et al., CIKM 2019): deep bidirectional self-attention.
//!
//! For next-item prediction a `[MASK]` token is appended to the item
//! sequence and the model predicts at the mask position — the standard
//! BERT4Rec inference protocol. We train with the same next-item objective
//! as the other baselines rather than full cloze pre-training (a scale
//! simplification documented in DESIGN.md; the bidirectional architecture is
//! faithful).

use embsr_nn::{Embedding, Ffn, Forward, Linear, Module, ModuleCtx};
use embsr_sessions::Session;
use embsr_tensor::{Rng, Tensor};
use embsr_train::SessionModel;

use crate::common::DotScorer;

/// The BERT4Rec baseline.
pub struct Bert4Rec {
    /// Item table with one extra row for the `[MASK]` token.
    items: Embedding,
    positions: Embedding,
    query: Linear,
    key: Linear,
    value: Linear,
    ffn: Ffn,
    blocks: usize,
    num_items: usize,
    dim: usize,
    max_len: usize,
}

impl Bert4Rec {
    /// Builds the model with two attention blocks.
    pub fn new(num_items: usize, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let max_len = 64;
        Bert4Rec {
            items: Embedding::new(num_items + 1, dim, &mut rng),
            positions: Embedding::new(max_len + 1, dim, &mut rng),
            query: Linear::new_no_bias(dim, dim, &mut rng),
            key: Linear::new_no_bias(dim, dim, &mut rng),
            value: Linear::new_no_bias(dim, dim, &mut rng),
            ffn: Ffn::new(dim, 0.0, &mut rng),
            blocks: 2,
            num_items,
            dim,
            max_len,
        }
    }

    fn mask_id(&self) -> usize {
        self.num_items
    }

    fn block(&self, x: &Tensor) -> Tensor {
        let scale = 1.0 / (self.dim as f32).sqrt();
        let q = self.query.apply(x);
        let k = self.key.apply(x);
        let v = self.value.apply(x);
        let att = q.matmul(&k.transpose()).mul_scalar(scale).softmax_rows();
        att.matmul(&v).add(x) // residual
    }

    /// Hidden state at the appended `[MASK]` position (`[d]`).
    fn session_repr(&self, session: &Session, training: bool, rng: &mut Rng) -> Tensor {
        let mut idx: Vec<usize> = session.macro_items().iter().map(|&i| i as usize).collect();
        assert!(!idx.is_empty(), "empty session");
        if idx.len() > self.max_len {
            idx.drain(..idx.len() - self.max_len);
        }
        idx.push(self.mask_id());
        let n = idx.len();
        let pos: Vec<usize> = (0..n).collect();
        let mut ctx = ModuleCtx::new(training, rng);
        let mut x = self.items.lookup(&idx).add(&self.positions.lookup(&pos));
        for _ in 0..self.blocks {
            x = self.ffn.forward(&self.block(&x), &mut ctx);
        }
        x.row(n - 1)
    }
}

impl SessionModel for Bert4Rec {
    fn name(&self) -> &str {
        "BERT4Rec"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.items.parameters();
        p.extend(self.positions.parameters());
        p.extend(self.query.parameters());
        p.extend(self.key.parameters());
        p.extend(self.value.parameters());
        p.extend(self.ffn.parameters());
        p
    }

    fn logits(&self, session: &Session, training: bool, rng: &mut Rng) -> Tensor {
        // score only real items (drop the mask row of the table)
        let real_items = self.items.weight.slice_rows(0, self.num_items);
        DotScorer::logits(&self.session_repr(session, training, rng), &real_items)
    }

    fn logits_batch(&self, sessions: &[&Session]) -> Tensor {
        assert!(!sessions.is_empty(), "logits_batch of an empty batch");
        let mut rng = Rng::seed_from_u64(0); // dropout is off: never drawn from
        let reprs: Vec<Tensor> = sessions
            .iter()
            .map(|s| self.session_repr(s, false, &mut rng))
            .collect();
        // the mask-row slice is computed once and amortized across the batch
        let real_items = self.items.weight.slice_rows(0, self.num_items);
        DotScorer::logits_rows(&Tensor::stack_rows(&reprs), &real_items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    fn sess(items: &[u32]) -> Session {
        Session {
            id: 0,
            events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
        }
    }

    #[test]
    fn mask_token_is_not_a_candidate() {
        let m = Bert4Rec::new(6, 8, 0);
        let y = m.logits(&sess(&[1, 2]), false, &mut Rng::seed_from_u64(0));
        assert_eq!(y.len(), 6);
    }

    #[test]
    fn bidirectional_attention_sees_whole_sequence() {
        // changing the FIRST item must change the prediction at the mask
        let m = Bert4Rec::new(8, 8, 1);
        let mut rng = Rng::seed_from_u64(0);
        let a = m.logits(&sess(&[1, 2, 3]), false, &mut rng).to_vec();
        let b = m.logits(&sess(&[4, 2, 3]), false, &mut rng).to_vec();
        assert_ne!(a, b);
    }

    #[test]
    fn long_sessions_are_truncated() {
        let m = Bert4Rec::new(10, 4, 2);
        let items: Vec<u32> = (0..200).map(|i| i % 10).collect();
        let y = m.logits(&sess(&items), false, &mut Rng::seed_from_u64(0));
        assert_eq!(y.len(), 10);
    }
}
