//! SR-GNN (Wu et al., AAAI 2019): gated GNN over the session digraph with a
//! soft-attention readout.

use embsr_nn::{Embedding, Module};
use embsr_sessions::Session;
use embsr_tensor::{Rng, Tensor};
use embsr_train::SessionModel;

use crate::common::{AttentionReadout, DotScorer, GnnEncoder, SessionDigraph};

/// The SR-GNN baseline.
pub struct SrGnn {
    items: Embedding,
    encoder: GnnEncoder,
    readout: AttentionReadout,
    num_items: usize,
}

impl SrGnn {
    /// Builds the model with one propagation layer (the original's default).
    pub fn new(num_items: usize, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        SrGnn {
            items: Embedding::new(num_items, dim, &mut rng),
            encoder: GnnEncoder::new(dim, 1, &mut rng),
            readout: AttentionReadout::new(dim, &mut rng),
            num_items,
        }
    }

    /// Encodes the session into per-step embeddings `[n, d]` (shared with
    /// GC-SAN and MKM-SR).
    pub(crate) fn encode_steps(&self, session: &Session) -> Tensor {
        let graph = SessionDigraph::from_session(session);
        let idx: Vec<usize> = graph.nodes.iter().map(|&i| i as usize).collect();
        let h = self.encoder.encode(&graph, self.items.lookup(&idx));
        h.gather_rows(&graph.step_node)
    }

    /// Soft-attention readout over the encoded steps (`[d]`).
    fn session_repr(&self, session: &Session) -> Tensor {
        assert!(!session.is_empty(), "empty session");
        let steps = self.encode_steps(session);
        let last = steps.row(steps.rows() - 1);
        self.readout.readout(&steps, &last)
    }
}

impl SessionModel for SrGnn {
    fn name(&self) -> &str {
        "SR-GNN"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.items.parameters();
        p.extend(self.encoder.parameters());
        p.extend(self.readout.parameters());
        p
    }

    fn logits(&self, session: &Session, _training: bool, _rng: &mut Rng) -> Tensor {
        DotScorer::logits(&self.session_repr(session), &self.items.weight)
    }

    fn logits_batch(&self, sessions: &[&Session]) -> Tensor {
        assert!(!sessions.is_empty(), "logits_batch of an empty batch");
        let reprs: Vec<Tensor> = sessions.iter().map(|s| self.session_repr(s)).collect();
        DotScorer::logits_rows(&Tensor::stack_rows(&reprs), &self.items.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    fn sess(items: &[u32]) -> Session {
        Session {
            id: 0,
            events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
        }
    }

    #[test]
    fn revisits_share_node_representation() {
        let m = SrGnn::new(6, 4, 0);
        let steps = m.encode_steps(&sess(&[1, 2, 1]));
        assert_eq!(steps.shape().dims(), &[3, 4]);
        // step 0 and step 2 are the same node
        let v = steps.to_vec();
        assert_eq!(&v[0..4], &v[8..12]);
    }

    #[test]
    fn logits_and_gradients() {
        let m = SrGnn::new(5, 4, 1);
        let y = m.logits(&sess(&[0, 1, 2, 1]), true, &mut Rng::seed_from_u64(0));
        assert_eq!(y.len(), 5);
        y.cross_entropy_single(3).backward();
        assert!(m.items.weight.grad().is_some());
    }
}
