//! Item-KNN (Sarwar et al., WWW 2001; paper related work [17]): item-item
//! cosine similarity over session co-occurrence. The paper notes this class
//! of method ignores item order, which is why it trails sequential models —
//! included here as that reference point.

use std::collections::HashMap;

use embsr_sessions::{Example, ItemId, Session};
use embsr_train::Recommender;

/// The item-to-item cosine baseline.
pub struct ItemKnn {
    num_items: usize,
    /// Number of neighbors kept per item.
    pub k: usize,
    /// `item -> [(similar item, cosine)]`, top-k by similarity.
    neighbors: Vec<Vec<(ItemId, f32)>>,
}

impl ItemKnn {
    /// Creates the baseline (k = 50 neighbors per item).
    pub fn new(num_items: usize) -> Self {
        ItemKnn {
            num_items,
            k: 50,
            neighbors: vec![Vec::new(); num_items],
        }
    }
}

impl Recommender for ItemKnn {
    fn name(&self) -> &str {
        "Item-KNN"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn fit(&mut self, train: &[Example], _val: &[Example]) {
        // session-level co-occurrence counts
        let mut co: HashMap<(ItemId, ItemId), f32> = HashMap::new();
        let mut freq = vec![0.0f32; self.num_items];
        for ex in train {
            let mut items: Vec<ItemId> = ex.session.items().collect();
            items.push(ex.target);
            items.sort_unstable();
            items.dedup();
            for &a in &items {
                if (a as usize) < self.num_items {
                    freq[a as usize] += 1.0;
                }
            }
            for i in 0..items.len() {
                for j in i + 1..items.len() {
                    *co.entry((items[i], items[j])).or_insert(0.0) += 1.0;
                }
            }
        }
        // cosine = co(a,b) / sqrt(freq a * freq b); drain the counts into a
        // key-sorted list so neighbor lists are built in a fixed order
        let mut pairs: Vec<((ItemId, ItemId), f32)> = co.into_iter().collect();
        pairs.sort_unstable_by_key(|&(key, _)| key);
        let mut sims: Vec<Vec<(ItemId, f32)>> = vec![Vec::new(); self.num_items];
        for &((a, b), c) in &pairs {
            let (ai, bi) = (a as usize, b as usize);
            if ai >= self.num_items || bi >= self.num_items {
                continue;
            }
            let denom = (freq[ai] * freq[bi]).sqrt();
            if denom > 0.0 {
                let sim = c / denom;
                sims[ai].push((b, sim));
                sims[bi].push((a, sim));
            }
        }
        for list in &mut sims {
            // deterministic: break similarity ties by item id so HashMap
            // iteration order cannot leak into the truncation
            list.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
            list.truncate(self.k);
        }
        self.neighbors = sims;
    }

    fn scores(&self, session: &Session) -> Vec<f32> {
        let mut scores = vec![0.0f32; self.num_items];
        for it in session.items() {
            if (it as usize) >= self.num_items {
                continue;
            }
            for &(other, sim) in &self.neighbors[it as usize] {
                scores[other as usize] += sim;
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    fn example(items: &[u32], target: u32) -> Example {
        Example {
            session: Session {
                id: 0,
                events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
            },
            target,
        }
    }

    fn query(items: &[u32]) -> Session {
        Session {
            id: 9,
            events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
        }
    }

    #[test]
    fn co_occurring_items_are_similar() {
        let mut m = ItemKnn::new(5);
        m.fit(&[example(&[1, 2], 3), example(&[1, 2], 4)], &[]);
        let s = m.scores(&query(&[1]));
        assert!(s[2] > 0.0, "1 and 2 co-occur");
        assert!(s[2] > s[3], "2 co-occurs twice, 3 once");
    }

    #[test]
    fn order_is_ignored() {
        let mut m = ItemKnn::new(6);
        m.fit(&[example(&[1, 2, 3], 4), example(&[3, 2, 1], 5)], &[]);
        let a = m.scores(&query(&[1, 2]));
        let b = m.scores(&query(&[2, 1]));
        assert_eq!(a, b, "Item-KNN is order-blind by design");
    }

    #[test]
    fn neighbor_list_is_capped() {
        let mut m = ItemKnn::new(100);
        m.k = 3;
        let train: Vec<Example> = (1..60).map(|i| example(&[0, i], i)).collect();
        m.fit(&train, &[]);
        assert!(m.neighbors[0].len() <= 3);
    }
}
