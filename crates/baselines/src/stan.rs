//! STAN: sequence and time-aware neighborhood (Garg et al., SIGIR 2019).
//!
//! Extends SKNN with three decays: (1) recency weighting of the query's own
//! items, (2) similarity weighting by neighbor-session recency (we use
//! insertion order as the time proxy — the generator emits sessions in
//! chronological order), and (3) within-neighbor weighting of items by their
//! distance to the items shared with the query.

use std::collections::{BTreeMap, HashMap, HashSet};

use embsr_sessions::{Example, ItemId, Session};
use embsr_train::Recommender;

/// The STAN baseline.
pub struct Stan {
    num_items: usize,
    pub k: usize,
    pub sample_size: usize,
    /// Decay for the query's own item recency (λ₁).
    pub lambda_recency: f32,
    /// Decay for item distance inside a neighbor session (λ₃).
    pub lambda_distance: f32,
    /// Macro-item sequences of the training sessions (target appended).
    sequences: Vec<Vec<ItemId>>,
    index: HashMap<ItemId, Vec<u32>>,
}

impl Stan {
    /// Creates STAN with moderate decay defaults.
    pub fn new(num_items: usize) -> Self {
        Stan {
            num_items,
            k: 100,
            sample_size: 500,
            lambda_recency: 0.5,
            lambda_distance: 0.4,
            sequences: Vec::new(),
            index: HashMap::new(),
        }
    }
}

impl Recommender for Stan {
    fn name(&self) -> &str {
        "STAN"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn fit(&mut self, train: &[Example], _val: &[Example]) {
        self.sequences.clear();
        self.index.clear();
        for (i, ex) in train.iter().enumerate() {
            let mut seq = ex.session.macro_items();
            seq.push(ex.target);
            let mut distinct = seq.clone();
            distinct.sort_unstable();
            distinct.dedup();
            for it in distinct {
                self.index.entry(it).or_default().push(i as u32);
            }
            self.sequences.push(seq);
        }
    }

    fn scores(&self, session: &Session) -> Vec<f32> {
        let query_seq = session.macro_items();
        if query_seq.is_empty() {
            return vec![0.0; self.num_items];
        }
        let qlen = query_seq.len();
        // recency weight of each query item (most recent position wins);
        // a BTreeMap so every later sum over the weights runs in id order
        let mut qweight: BTreeMap<ItemId, f32> = BTreeMap::new();
        for (pos, &it) in query_seq.iter().enumerate() {
            let w = (-self.lambda_recency * (qlen - 1 - pos) as f32).exp();
            let e = qweight.entry(it).or_insert(0.0);
            if w > *e {
                *e = w;
            }
        }

        // candidates, most recent training sessions first; query items are
        // scanned most recent first (a deterministic order, unlike the
        // hash-set iteration it replaces)
        let recency: Vec<ItemId> = {
            let mut v: Vec<ItemId> = Vec::new();
            for &it in query_seq.iter().rev() {
                if !v.contains(&it) {
                    v.push(it);
                }
            }
            v
        };
        let mut cands: Vec<u32> = Vec::new();
        let mut seen: HashSet<u32> = HashSet::new();
        for it in &recency {
            if let Some(ids) = self.index.get(it) {
                for &id in ids.iter().rev() {
                    if seen.insert(id) {
                        cands.push(id);
                        if cands.len() >= self.sample_size {
                            break;
                        }
                    }
                }
            }
            if cands.len() >= self.sample_size {
                break;
            }
        }

        let norm_q: f32 = qweight.values().map(|w| w * w).sum::<f32>().sqrt();
        let mut sims: Vec<(f32, u32)> = cands
            .into_iter()
            .map(|id| {
                let other = &self.sequences[id as usize];
                let mut odistinct = other.clone();
                odistinct.sort_unstable();
                odistinct.dedup();
                // id-ordered sum: the f32 accumulation order is fixed
                let inter: f32 = odistinct
                    .iter()
                    .filter_map(|it| qweight.get(it))
                    .sum();
                let sim = inter / (norm_q.max(1e-9) * (odistinct.len() as f32).sqrt());
                (sim, id)
            })
            .filter(|(s, _)| *s > 0.0)
            .collect();
        // equal similarities tie-break by session id so truncation is stable
        sims.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        sims.truncate(self.k);

        let mut scores = vec![0.0f32; self.num_items];
        for (sim, id) in sims {
            let seq = &self.sequences[id as usize];
            // anchor: latest position in the neighbor shared with the query
            let anchor = seq
                .iter()
                .enumerate()
                .filter(|(_, it)| qweight.contains_key(it))
                .map(|(p, _)| p)
                .next_back();
            let Some(anchor) = anchor else { continue };
            for (pos, &it) in seq.iter().enumerate() {
                if qweight.contains_key(&it) || (it as usize) >= self.num_items {
                    continue;
                }
                let dist = pos.abs_diff(anchor) as f32;
                scores[it as usize] += sim * (-self.lambda_distance * (dist - 1.0).max(0.0)).exp();
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    fn example(items: &[u32], target: u32) -> Example {
        Example {
            session: Session {
                id: 0,
                events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
            },
            target,
        }
    }

    fn query(items: &[u32]) -> Session {
        Session {
            id: 9,
            events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
        }
    }

    #[test]
    fn neighbor_items_near_shared_anchor_score_higher() {
        let mut m = Stan::new(8);
        // anchor item 3 at end; 4 adjacent, 7 far
        m.fit(&[example(&[7, 6, 3], 4)], &[]);
        let scores = m.scores(&query(&[3]));
        assert!(scores[4] > scores[7], "4: {}, 7: {}", scores[4], scores[7]);
    }

    #[test]
    fn recent_query_items_drive_similarity() {
        let mut m = Stan::new(10);
        m.fit(&[example(&[1], 5), example(&[2], 6)], &[]);
        // query ends with 2: the session containing 2 should dominate
        let scores = m.scores(&query(&[1, 2]));
        assert!(scores[6] > scores[5]);
    }

    #[test]
    fn empty_query_safe() {
        let m = Stan::new(3);
        assert_eq!(m.scores(&query(&[])), vec![0.0; 3]);
    }
}
