//! STAMP (Liu et al., KDD 2018): short-term attention/memory priority.
//!
//! Attention over the session items with the last click and the session mean
//! as context; two MLPs produce the general-interest and current-interest
//! vectors whose elementwise product scores the items (the paper's trilinear
//! composition).

use embsr_nn::{Embedding, Forward, Linear, Module};
use embsr_sessions::Session;
use embsr_tensor::{uniform_init, Rng, Tensor};
use embsr_train::SessionModel;

use crate::common::DotScorer;

/// The STAMP baseline.
pub struct Stamp {
    items: Embedding,
    w1: Linear,
    w2: Linear,
    w3: Linear,
    w0: Tensor,
    mlp_a: Linear,
    mlp_b: Linear,
    num_items: usize,
    dim: usize,
}

impl Stamp {
    /// Builds the model.
    pub fn new(num_items: usize, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        Stamp {
            items: Embedding::new(num_items, dim, &mut rng),
            w1: Linear::new_no_bias(dim, dim, &mut rng),
            w2: Linear::new_no_bias(dim, dim, &mut rng),
            w3: Linear::new(dim, dim, &mut rng),
            w0: uniform_init(&[dim, 1], &mut rng),
            mlp_a: Linear::new(dim, dim, &mut rng),
            mlp_b: Linear::new(dim, dim, &mut rng),
            num_items,
            dim,
        }
    }

    /// Trilinear session representation `h_s ⊙ h_t` (`[d]`).
    fn session_repr(&self, session: &Session) -> Tensor {
        let idx: Vec<usize> = session.macro_items().iter().map(|&i| i as usize).collect();
        assert!(!idx.is_empty(), "empty session");
        let n = idx.len();
        let embs = self.items.lookup(&idx); // [n, d]
        let x_t = embs.row(n - 1); // last click
        let m_s = embs.mean_rows(); // session memory

        // α_i = w0ᵀ σ(W1 x_i + W2 x_t + W3 m_s)
        let xt_rows = Tensor::ones(&[n, 1]).matmul(&x_t.reshape(&[1, self.dim]));
        let ms_rows = Tensor::ones(&[n, 1]).matmul(&m_s.reshape(&[1, self.dim]));
        let act = self
            .w1
            .apply(&embs)
            .add(&self.w2.apply(&xt_rows))
            .add(&self.w3.apply(&ms_rows))
            .sigmoid();
        let alpha = act.matmul(&self.w0); // [n, 1]
        let alpha_full = alpha.matmul(&Tensor::ones(&[1, self.dim]));
        let m_a = alpha_full.mul(&embs).sum_rows().add(&m_s); // attended memory

        let h_s = self.mlp_a.apply(&m_a).tanh();
        let h_t = self.mlp_b.apply(&x_t).tanh();
        h_s.mul(&h_t)
    }
}

impl SessionModel for Stamp {
    fn name(&self) -> &str {
        "STAMP"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.items.parameters();
        for l in [&self.w1, &self.w2, &self.w3, &self.mlp_a, &self.mlp_b] {
            p.extend(l.parameters());
        }
        p.push(self.w0.clone());
        p
    }

    fn logits(&self, session: &Session, _training: bool, _rng: &mut Rng) -> Tensor {
        DotScorer::logits(&self.session_repr(session), &self.items.weight)
    }

    fn logits_batch(&self, sessions: &[&Session]) -> Tensor {
        assert!(!sessions.is_empty(), "logits_batch of an empty batch");
        let reprs: Vec<Tensor> = sessions.iter().map(|s| self.session_repr(s)).collect();
        DotScorer::logits_rows(&Tensor::stack_rows(&reprs), &self.items.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    fn sess(items: &[u32]) -> Session {
        Session {
            id: 0,
            events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
        }
    }

    #[test]
    fn logits_shape() {
        let m = Stamp::new(8, 6, 0);
        let y = m.logits(&sess(&[1, 2, 3]), false, &mut Rng::seed_from_u64(0));
        assert_eq!(y.len(), 8);
    }

    #[test]
    fn last_item_priority_changes_output() {
        let m = Stamp::new(8, 6, 1);
        let mut rng = Rng::seed_from_u64(0);
        let a = m.logits(&sess(&[1, 2, 3]), false, &mut rng).to_vec();
        let b = m.logits(&sess(&[3, 2, 1]), false, &mut rng).to_vec();
        assert_ne!(a, b, "STAMP must be order-sensitive through the last click");
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let m = Stamp::new(5, 4, 2);
        m.logits(&sess(&[0, 1]), true, &mut Rng::seed_from_u64(1))
            .cross_entropy_single(2)
            .backward();
        for (i, p) in m.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i}");
        }
    }
}
