//! HUP (Gu et al., WSDM 2020): hierarchical user profiling.
//!
//! A two-level "behavior pyramid": a lower GRU encodes the micro-operation
//! sub-sequence of each macro item (combined with the item embedding), and
//! an upper GRU consumes the per-item vectors; attention pooling produces
//! the session representation.

use embsr_nn::{Embedding, Forward, Gru, Linear, Module};
use embsr_sessions::Session;
use embsr_tensor::{uniform_init, Rng, Tensor};
use embsr_train::SessionModel;

use crate::common::DotScorer;

/// The HUP baseline.
pub struct Hup {
    items: Embedding,
    ops: Embedding,
    op_gru: Gru,
    item_gru: Gru,
    att: Linear,
    v: Tensor,
    num_items: usize,
    dim: usize,
}

impl Hup {
    /// Builds the model.
    pub fn new(num_items: usize, num_ops: usize, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        Hup {
            items: Embedding::new(num_items, dim, &mut rng),
            ops: Embedding::new(num_ops, dim, &mut rng),
            op_gru: Gru::new(dim, dim, &mut rng),
            item_gru: Gru::new(2 * dim, dim, &mut rng),
            att: Linear::new(dim, dim, &mut rng),
            v: uniform_init(&[dim, 1], &mut rng),
            num_items,
            dim,
        }
    }

    /// Attention-pooled state of the two-level behavior pyramid (`[d]`).
    fn session_repr(&self, session: &Session) -> Tensor {
        let steps = session.macro_steps();
        assert!(!steps.is_empty(), "empty session");
        // lower level: encode each macro step's op sequence
        let mut step_vecs = Vec::with_capacity(steps.len());
        for step in &steps {
            let op_idx: Vec<usize> = step.ops.iter().map(|&o| o as usize).collect();
            let op_vec = self.op_gru.last_state(&self.ops.lookup(&op_idx)); // [d]
            let item_vec = self.items.lookup_one(step.item as usize); // [d]
            step_vecs.push(item_vec.concat_cols(&op_vec)); // [2d]
        }
        // upper level: GRU over per-item vectors
        let upper_in = Tensor::stack_rows(&step_vecs); // [n, 2d]
        let hidden = self.item_gru.apply(&upper_in); // [n, d]

        let act = self.att.apply(&hidden).tanh();
        let alpha = act.matmul(&self.v).transpose().softmax_rows(); // [1, n]
        alpha.matmul(&hidden).reshape(&[self.dim])
    }
}

impl SessionModel for Hup {
    fn name(&self) -> &str {
        "HUP"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.items.parameters();
        p.extend(self.ops.parameters());
        p.extend(self.op_gru.parameters());
        p.extend(self.item_gru.parameters());
        p.extend(self.att.parameters());
        p.push(self.v.clone());
        p
    }

    fn logits(&self, session: &Session, _training: bool, _rng: &mut Rng) -> Tensor {
        DotScorer::logits(&self.session_repr(session), &self.items.weight)
    }

    fn logits_batch(&self, sessions: &[&Session]) -> Tensor {
        assert!(!sessions.is_empty(), "logits_batch of an empty batch");
        let reprs: Vec<Tensor> = sessions.iter().map(|s| self.session_repr(s)).collect();
        DotScorer::logits_rows(&Tensor::stack_rows(&reprs), &self.items.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    #[test]
    fn deep_op_sequences_change_output() {
        let m = Hup::new(6, 5, 8, 0);
        let mut rng = Rng::seed_from_u64(0);
        let shallow = Session {
            id: 0,
            events: vec![MicroBehavior::new(1, 0), MicroBehavior::new(2, 0)],
        };
        let deep = Session {
            id: 0,
            events: vec![
                MicroBehavior::new(1, 0),
                MicroBehavior::new(1, 2),
                MicroBehavior::new(1, 3),
                MicroBehavior::new(2, 0),
            ],
        };
        assert_ne!(
            m.logits(&shallow, false, &mut rng).to_vec(),
            m.logits(&deep, false, &mut rng).to_vec()
        );
    }

    #[test]
    fn gradients_reach_both_grus() {
        let m = Hup::new(4, 3, 4, 1);
        let s = Session {
            id: 0,
            events: vec![
                MicroBehavior::new(0, 0),
                MicroBehavior::new(0, 1),
                MicroBehavior::new(1, 0),
            ],
        };
        m.logits(&s, true, &mut Rng::seed_from_u64(0))
            .cross_entropy_single(2)
            .backward();
        for (i, p) in m.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i}");
        }
    }
}
