//! MKM-SR (Meng et al., SIGIR 2020), the variant *without* the knowledge
//! auxiliary task — exactly the configuration the paper compares against.
//!
//! Items go through a gated GNN over the session digraph; the
//! micro-operation sequence goes through a separate GRU; the two session
//! vectors are concatenated and projected. The paper's criticism — that the
//! GNN never sees operation information and the two channels only meet at
//! the final concatenation — is visible directly in this structure.

use embsr_nn::{Embedding, Forward, Gru, Linear, Module};
use embsr_sessions::Session;
use embsr_tensor::{Rng, Tensor};
use embsr_train::SessionModel;

use crate::common::{AttentionReadout, DotScorer, GnnEncoder, SessionDigraph};

/// The MKM-SR baseline.
pub struct MkmSr {
    items: Embedding,
    ops: Embedding,
    encoder: GnnEncoder,
    readout: AttentionReadout,
    op_gru: Gru,
    combine: Linear,
    num_items: usize,
}

impl MkmSr {
    /// Builds the model.
    pub fn new(num_items: usize, num_ops: usize, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        MkmSr {
            items: Embedding::new(num_items, dim, &mut rng),
            ops: Embedding::new(num_ops, dim, &mut rng),
            encoder: GnnEncoder::new(dim, 1, &mut rng),
            readout: AttentionReadout::new(dim, &mut rng),
            op_gru: Gru::new(dim, dim, &mut rng),
            combine: Linear::new_no_bias(2 * dim, dim, &mut rng),
            num_items,
        }
    }

    /// Concatenated item-channel + op-channel representation (`[d]`).
    fn session_repr(&self, session: &Session) -> Tensor {
        assert!(!session.is_empty(), "empty session");
        // item channel: SR-GNN style
        let graph = SessionDigraph::from_session(session);
        let idx: Vec<usize> = graph.nodes.iter().map(|&i| i as usize).collect();
        let h = self.encoder.encode(&graph, self.items.lookup(&idx));
        let steps = h.gather_rows(&graph.step_node);
        let s_item = self.readout.readout(&steps, &steps.row(steps.rows() - 1));

        // operation channel: GRU over the *micro* operation sequence
        let ops: Vec<usize> = session.events.iter().map(|e| e.op as usize).collect();
        let s_op = self.op_gru.last_state(&self.ops.lookup(&ops));

        self.combine.apply(&s_item.concat_cols(&s_op))
    }
}

impl SessionModel for MkmSr {
    fn name(&self) -> &str {
        "MKM-SR"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.items.parameters();
        p.extend(self.ops.parameters());
        p.extend(self.encoder.parameters());
        p.extend(self.readout.parameters());
        p.extend(self.op_gru.parameters());
        p.extend(self.combine.parameters());
        p
    }

    fn logits(&self, session: &Session, _training: bool, _rng: &mut Rng) -> Tensor {
        DotScorer::logits(&self.session_repr(session), &self.items.weight)
    }

    fn logits_batch(&self, sessions: &[&Session]) -> Tensor {
        assert!(!sessions.is_empty(), "logits_batch of an empty batch");
        let reprs: Vec<Tensor> = sessions.iter().map(|s| self.session_repr(s)).collect();
        DotScorer::logits_rows(&Tensor::stack_rows(&reprs), &self.items.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    #[test]
    fn operations_influence_output_through_gru_channel() {
        let m = MkmSr::new(6, 4, 8, 0);
        let mut rng = Rng::seed_from_u64(0);
        let a = Session {
            id: 0,
            events: vec![MicroBehavior::new(1, 0), MicroBehavior::new(2, 0)],
        };
        let b = Session {
            id: 0,
            events: vec![MicroBehavior::new(1, 0), MicroBehavior::new(2, 3)],
        };
        assert_ne!(
            m.logits(&a, false, &mut rng).to_vec(),
            m.logits(&b, false, &mut rng).to_vec()
        );
    }

    #[test]
    fn logits_shape_and_gradients() {
        let m = MkmSr::new(5, 3, 4, 1);
        let s = Session {
            id: 0,
            events: vec![
                MicroBehavior::new(0, 0),
                MicroBehavior::new(1, 1),
                MicroBehavior::new(0, 2),
            ],
        };
        let y = m.logits(&s, true, &mut Rng::seed_from_u64(0));
        assert_eq!(y.len(), 5);
        y.cross_entropy_single(2).backward();
        assert!(m.ops.weight.grad().is_some());
        assert!(m.items.weight.grad().is_some());
    }
}
