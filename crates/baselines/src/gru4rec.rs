//! GRU4Rec (Hidasi et al., ICLR 2016): a GRU over the macro-item sequence,
//! scoring by inner product with the item embeddings.

use embsr_nn::{Embedding, Gru, Module};
use embsr_sessions::Session;
use embsr_tensor::{Rng, Tensor};
use embsr_train::SessionModel;

use crate::common::DotScorer;

/// The GRU4Rec baseline.
pub struct Gru4Rec {
    items: Embedding,
    gru: Gru,
    num_items: usize,
}

impl Gru4Rec {
    /// Builds the model.
    pub fn new(num_items: usize, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        Gru4Rec {
            items: Embedding::new(num_items, dim, &mut rng),
            gru: Gru::new(dim, dim, &mut rng),
            num_items,
        }
    }

    /// Last GRU hidden state over the macro-item sequence (`[d]`).
    fn session_repr(&self, session: &Session) -> Tensor {
        let idx: Vec<usize> = session.macro_items().iter().map(|&i| i as usize).collect();
        assert!(!idx.is_empty(), "empty session");
        let embs = self.items.lookup(&idx);
        self.gru.last_state(&embs)
    }
}

impl SessionModel for Gru4Rec {
    fn name(&self) -> &str {
        "GRU4Rec"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.items.parameters();
        p.extend(self.gru.parameters());
        p
    }

    fn logits(&self, session: &Session, _training: bool, _rng: &mut Rng) -> Tensor {
        DotScorer::logits(&self.session_repr(session), &self.items.weight)
    }

    fn logits_batch(&self, sessions: &[&Session]) -> Tensor {
        assert!(!sessions.is_empty(), "logits_batch of an empty batch");
        let reprs: Vec<Tensor> = sessions.iter().map(|s| self.session_repr(s)).collect();
        DotScorer::logits_rows(&Tensor::stack_rows(&reprs), &self.items.weight)
    }

    fn repr_infer(&self, session: &Session) -> Option<Tensor> {
        Some(self.session_repr(session))
    }

    fn logits_of_reprs(&self, reprs: &Tensor) -> Option<Tensor> {
        Some(DotScorer::logits_rows(reprs, &self.items.weight))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    #[test]
    fn logits_cover_vocabulary() {
        let m = Gru4Rec::new(7, 8, 0);
        let s = Session {
            id: 0,
            events: vec![MicroBehavior::new(1, 0), MicroBehavior::new(2, 0)],
        };
        let y = m.logits(&s, false, &mut Rng::seed_from_u64(0));
        assert_eq!(y.len(), 7);
    }

    #[test]
    fn operations_are_ignored() {
        let m = Gru4Rec::new(5, 8, 1);
        let mut rng = Rng::seed_from_u64(0);
        let a = Session {
            id: 0,
            events: vec![MicroBehavior::new(1, 0), MicroBehavior::new(2, 3)],
        };
        let b = Session {
            id: 0,
            events: vec![MicroBehavior::new(1, 2), MicroBehavior::new(2, 1)],
        };
        assert_eq!(
            m.logits(&a, false, &mut rng).to_vec(),
            m.logits(&b, false, &mut rng).to_vec()
        );
    }
}
