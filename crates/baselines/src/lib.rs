//! # embsr-baselines
//!
//! All twelve baselines of the paper's Table III, grouped as in Sec. V-A-2.
//!
//! **Macro-behavior models** (item sequence only):
//! * [`SPop`] — session popularity with global fallback,
//! * [`Sknn`] — session-based k-nearest-neighbors,
//! * [`Stan`] — sequence-and-time-aware neighborhood (related work [20]),
//! * [`MarkovChain`] / [`Fpmc`] — first-order transitions, raw and
//!   factorized (related work [4], [18]),
//! * [`ItemKnn`] — order-blind item-item cosine (related work [17]),
//! * [`Gru4Rec`] — GRU over item embeddings,
//! * [`Narm`] — encoder/decoder GRU with attention,
//! * [`Stamp`] — short-term attention/memory priority,
//! * [`SrGnn`] — gated GNN over the session graph,
//! * [`GcSan`] — SR-GNN encoding + self-attention stack,
//! * [`Bert4Rec`] — bidirectional self-attention with a mask token,
//! * [`SgnnHn`] — star graph neural network with highway networks,
//!
//! **Micro-behavior models** (items + operations):
//! * [`Rib`] — GRU over `item ⊕ operation` embeddings with attention,
//! * [`Hup`] — hierarchical GRU (operations within items, items within the
//!   session),
//! * [`MkmSr`] — GGNN for items in parallel with a GRU for operations
//!   (without the knowledge-graph auxiliary task, exactly as in the paper's
//!   comparison).
//!
//! Neural models implement [`embsr_train::SessionModel`] and train through
//! the shared [`embsr_train::Trainer`]; non-neural models implement
//! [`embsr_train::Recommender`] directly.

mod bert4rec;
mod common;
mod factory;
mod fpmc;
mod gcsan;
mod gru4rec;
mod hup;
mod itemknn;
mod markov;
mod mkmsr;
mod narm;
mod rib;
mod sgnnhn;
mod sknn;
mod spop;
mod srgnn;
mod stamp;
mod stan;

pub use bert4rec::Bert4Rec;
pub use common::{AttentionReadout, DotScorer, GnnEncoder, SessionDigraph};
pub use factory::{build_baseline, BaselineKind};
pub use fpmc::Fpmc;
pub use gcsan::GcSan;
pub use gru4rec::Gru4Rec;
pub use hup::Hup;
pub use itemknn::ItemKnn;
pub use markov::MarkovChain;
pub use mkmsr::MkmSr;
pub use narm::Narm;
pub use rib::Rib;
pub use sgnnhn::SgnnHn;
pub use sknn::Sknn;
pub use spop::SPop;
pub use srgnn::SrGnn;
pub use stamp::Stamp;
pub use stan::Stan;
