//! RIB (Zhou et al., WSDM 2018): the first micro-behavior model — a GRU over
//! `item ⊕ operation` embeddings with an attention pooling layer.

use embsr_nn::{Embedding, Forward, Gru, Linear, Module};
use embsr_sessions::Session;
use embsr_tensor::{uniform_init, Rng, Tensor};
use embsr_train::SessionModel;

use crate::common::DotScorer;

/// The RIB baseline.
pub struct Rib {
    items: Embedding,
    ops: Embedding,
    gru: Gru,
    att: Linear,
    v: Tensor,
    num_items: usize,
    dim: usize,
}

impl Rib {
    /// Builds the model.
    pub fn new(num_items: usize, num_ops: usize, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        Rib {
            items: Embedding::new(num_items, dim, &mut rng),
            ops: Embedding::new(num_ops, dim, &mut rng),
            gru: Gru::new(2 * dim, dim, &mut rng),
            att: Linear::new(dim, dim, &mut rng),
            v: uniform_init(&[dim, 1], &mut rng),
            num_items,
            dim,
        }
    }

    /// Attention-pooled GRU state over micro-behaviors (`[d]`).
    fn session_repr(&self, session: &Session) -> Tensor {
        assert!(!session.is_empty(), "empty session");
        let items: Vec<usize> = session.events.iter().map(|e| e.item as usize).collect();
        let ops: Vec<usize> = session.events.iter().map(|e| e.op as usize).collect();
        let ev = self.items.lookup(&items);
        let eo = self.ops.lookup(&ops);
        let hidden = self.gru.apply(&ev.concat_cols(&eo)); // [t, d]

        // attention pooling over hidden states
        let act = self.att.apply(&hidden).tanh();
        let alpha = act.matmul(&self.v).transpose().softmax_rows(); // [1, t]
        alpha.matmul(&hidden).reshape(&[self.dim])
    }
}

impl SessionModel for Rib {
    fn name(&self) -> &str {
        "RIB"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.items.parameters();
        p.extend(self.ops.parameters());
        p.extend(self.gru.parameters());
        p.extend(self.att.parameters());
        p.push(self.v.clone());
        p
    }

    fn logits(&self, session: &Session, _training: bool, _rng: &mut Rng) -> Tensor {
        DotScorer::logits(&self.session_repr(session), &self.items.weight)
    }

    fn logits_batch(&self, sessions: &[&Session]) -> Tensor {
        assert!(!sessions.is_empty(), "logits_batch of an empty batch");
        let reprs: Vec<Tensor> = sessions.iter().map(|s| self.session_repr(s)).collect();
        DotScorer::logits_rows(&Tensor::stack_rows(&reprs), &self.items.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    #[test]
    fn operations_change_rib_output() {
        let m = Rib::new(6, 4, 8, 0);
        let mut rng = Rng::seed_from_u64(0);
        let a = Session {
            id: 0,
            events: vec![MicroBehavior::new(1, 0), MicroBehavior::new(2, 0)],
        };
        let b = Session {
            id: 0,
            events: vec![MicroBehavior::new(1, 0), MicroBehavior::new(2, 3)],
        };
        assert_ne!(
            m.logits(&a, false, &mut rng).to_vec(),
            m.logits(&b, false, &mut rng).to_vec()
        );
    }

    #[test]
    fn logits_shape() {
        let m = Rib::new(5, 3, 4, 1);
        let s = Session {
            id: 0,
            events: vec![MicroBehavior::new(0, 0)],
        };
        assert_eq!(m.logits(&s, false, &mut Rng::seed_from_u64(0)).len(), 5);
    }
}
