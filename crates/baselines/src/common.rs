//! Building blocks shared by the GNN-family baselines (SR-GNN, GC-SAN,
//! SGNN-HN, MKM-SR): the normalized session digraph, the gated GNN encoder,
//! the soft-attention readout, and plain dot-product scoring.

use std::collections::HashMap;

use embsr_nn::{Forward, GgnnCell, Linear, Module};
use embsr_sessions::{ItemId, Session};
use embsr_tensor::{uniform_init, Rng, Tensor};

/// SR-GNN's session digraph: distinct items as nodes with **normalized**
/// in/out adjacency (each row of `A_out` divides by the node's out-degree,
/// matching the original's connection matrix).
pub struct SessionDigraph {
    /// Distinct items in first-appearance order.
    pub nodes: Vec<ItemId>,
    /// Node index of each macro step.
    pub step_node: Vec<usize>,
    /// Normalized incoming adjacency `[c, c]` (constant, no grad).
    pub a_in: Tensor,
    /// Normalized outgoing adjacency `[c, c]` (constant, no grad).
    pub a_out: Tensor,
}

impl SessionDigraph {
    /// Builds the digraph from a session's macro-item sequence.
    pub fn from_session(session: &Session) -> Self {
        let macro_items = session.macro_items();
        let mut node_of: HashMap<ItemId, usize> = HashMap::new();
        let mut nodes = Vec::new();
        let mut step_node = Vec::with_capacity(macro_items.len());
        for &it in &macro_items {
            let idx = *node_of.entry(it).or_insert_with(|| {
                nodes.push(it);
                nodes.len() - 1
            });
            step_node.push(idx);
        }
        let c = nodes.len();
        let mut out_counts = vec![0.0f32; c * c];
        for w in step_node.windows(2) {
            out_counts[w[0] * c + w[1]] += 1.0;
        }
        // row-normalize for A_out, column-normalize transpose for A_in
        let mut a_out = vec![0.0f32; c * c];
        let mut a_in = vec![0.0f32; c * c];
        for i in 0..c {
            let row_sum: f32 = out_counts[i * c..(i + 1) * c].iter().sum();
            if row_sum > 0.0 {
                for j in 0..c {
                    a_out[i * c + j] = out_counts[i * c + j] / row_sum;
                }
            }
        }
        for j in 0..c {
            let col_sum: f32 = (0..c).map(|i| out_counts[i * c + j]).sum();
            if col_sum > 0.0 {
                for i in 0..c {
                    // incoming edges of j, normalized by in-degree
                    a_in[j * c + i] = out_counts[i * c + j] / col_sum;
                }
            }
        }
        SessionDigraph {
            nodes,
            step_node,
            a_in: Tensor::from_vec(a_in, &[c, c]),
            a_out: Tensor::from_vec(a_out, &[c, c]),
        }
    }

    /// Number of distinct items.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Gated GNN encoder over a [`SessionDigraph`] (SR-GNN's propagation).
pub struct GnnEncoder {
    proj_in: Linear,
    proj_out: Linear,
    cell: GgnnCell,
    layers: usize,
}

impl GnnEncoder {
    /// Creates an encoder with `layers` propagation steps.
    pub fn new(dim: usize, layers: usize, rng: &mut Rng) -> Self {
        GnnEncoder {
            proj_in: Linear::new(dim, dim, rng),
            proj_out: Linear::new(dim, dim, rng),
            cell: GgnnCell::new(dim, rng),
            layers,
        }
    }

    /// Encodes initial node embeddings `[c, d]` into contextualized ones.
    pub fn encode(&self, graph: &SessionDigraph, mut h: Tensor) -> Tensor {
        for _ in 0..self.layers {
            let m_in = graph.a_in.matmul(&self.proj_in.apply(&h));
            let m_out = graph.a_out.matmul(&self.proj_out.apply(&h));
            let a = m_in.concat_cols(&m_out);
            h = self.cell.update(&a, &h);
        }
        h
    }
}

impl Module for GnnEncoder {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.proj_in.parameters();
        p.extend(self.proj_out.parameters());
        p.extend(self.cell.parameters());
        p
    }
}

/// SR-GNN's soft-attention readout:
/// `α_i = q·σ(W₁ v_last + W₂ v_i)`, `s_g = Σ α_i v_i`,
/// `s = W₃ [v_last ; s_g]`.
pub struct AttentionReadout {
    w1: Linear,
    w2: Linear,
    q: Tensor,
    w3: Linear,
    dim: usize,
}

impl AttentionReadout {
    /// Creates the readout for `d`-dimensional embeddings.
    pub fn new(dim: usize, rng: &mut Rng) -> Self {
        AttentionReadout {
            w1: Linear::new_no_bias(dim, dim, rng),
            w2: Linear::new(dim, dim, rng),
            q: uniform_init(&[dim, 1], rng),
            w3: Linear::new_no_bias(2 * dim, dim, rng),
            dim,
        }
    }

    /// Computes the session representation from per-step embeddings
    /// `[n, d]` and the last step's embedding `[d]`.
    pub fn readout(&self, steps: &Tensor, last: &Tensor) -> Tensor {
        let n = steps.rows();
        let last_rows = Tensor::ones(&[n, 1]).matmul(&last.reshape(&[1, self.dim]));
        let act = self.w1.apply(&last_rows).add(&self.w2.apply(steps)).sigmoid();
        let alpha = act.matmul(&self.q); // [n, 1]
        let alpha_full = alpha.matmul(&Tensor::ones(&[1, self.dim]));
        let s_g = alpha_full.mul(steps).mean_rows().mul_scalar(n as f32); // Σ α_i v_i
        self.w3.apply(&last.concat_cols(&s_g))
    }
}

impl Module for AttentionReadout {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.w1.parameters();
        p.extend(self.w2.parameters());
        p.push(self.q.clone());
        p.extend(self.w3.parameters());
        p
    }
}

/// Plain dot-product scoring against the item table (the scoring used by
/// the non-normalized baselines).
pub struct DotScorer;

impl DotScorer {
    /// `logits[i] = m · emb_i`, shape `[|V|]`.
    pub fn logits(m: &Tensor, items: &Tensor) -> Tensor {
        let d = m.len();
        Self::logits_rows(&m.reshape(&[1, d]), items).reshape(&[items.rows()])
    }

    /// Batched form: representations `ms` (`[B, d]`) against `items`
    /// (`[|V|, d]`) in one GEMM, shape `[B, |V|]`; each row is bitwise-equal
    /// to the single-session [`Self::logits`]. `matmul_nt` consumes the item
    /// table row-major (the `A·Bᵀ` kernel transpose-packs panels on the
    /// fly), bitwise-identical to the old `matmul(items.transpose())` but
    /// without materializing the `[d,|V|]` copy per call.
    pub fn logits_rows(ms: &Tensor, items: &Tensor) -> Tensor {
        assert_eq!(items.cols(), ms.cols(), "item table dim mismatch");
        ms.matmul_nt(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;
    use embsr_tensor::testing::assert_close;

    fn session(items: &[u32]) -> Session {
        Session {
            id: 0,
            events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
        }
    }

    #[test]
    fn digraph_rows_are_normalized() {
        let g = SessionDigraph::from_session(&session(&[1, 2, 3, 2, 4]));
        let c = g.num_nodes();
        assert_eq!(c, 4);
        let a_out = g.a_out.to_vec();
        for i in 0..c {
            let row: f32 = a_out[i * c..(i + 1) * c].iter().sum();
            assert!(row == 0.0 || (row - 1.0).abs() < 1e-5, "row {i} sums to {row}");
        }
    }

    #[test]
    fn digraph_parallel_edges_share_weight() {
        // 1->2 occurs twice, 1->3 once: A_out[node1] = [.., 2/3, 1/3]
        let g = SessionDigraph::from_session(&session(&[1, 2, 1, 2, 1, 3]));
        let n1 = 0; // item 1 is first
        let n2 = g.nodes.iter().position(|&x| x == 2).unwrap();
        let n3 = g.nodes.iter().position(|&x| x == 3).unwrap();
        let c = g.num_nodes();
        let a = g.a_out.to_vec();
        assert_close(&[a[n1 * c + n2]], &[2.0 / 3.0], 1e-5);
        assert_close(&[a[n1 * c + n3]], &[1.0 / 3.0], 1e-5);
    }

    #[test]
    fn encoder_keeps_shape_and_gradients() {
        let mut rng = Rng::seed_from_u64(0);
        let enc = GnnEncoder::new(4, 2, &mut rng);
        let g = SessionDigraph::from_session(&session(&[1, 2, 3]));
        let h0 = uniform_init(&[3, 4], &mut rng);
        let h = enc.encode(&g, h0.clone());
        assert_eq!(h.shape().dims(), &[3, 4]);
        h.sum().backward();
        assert!(h0.grad().is_some());
        for p in enc.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn readout_produces_session_vector() {
        let mut rng = Rng::seed_from_u64(1);
        let r = AttentionReadout::new(4, &mut rng);
        let steps = uniform_init(&[5, 4], &mut rng).detach();
        let last = steps.row(4);
        let s = r.readout(&steps, &last);
        assert_eq!(s.shape().dims(), &[4]);
    }

    #[test]
    fn dot_scorer_matches_manual_product() {
        let m = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let items = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        assert_close(&DotScorer::logits(&m, &items).to_vec(), &[1.0, 2.0, 3.0], 1e-6);
    }
}
