//! GC-SAN (Xu et al., IJCAI 2019): graph-contextualized self-attention.
//!
//! SR-GNN's gated-GNN encoding of the session graph, followed by a stack of
//! standard self-attention blocks; the final representation interpolates the
//! last attention output with the last GNN state by a weight ω.

use embsr_nn::{Embedding, Ffn, Forward, Linear, Module, ModuleCtx};
use embsr_sessions::Session;
use embsr_tensor::{Rng, Tensor};
use embsr_train::SessionModel;

use crate::common::{DotScorer, GnnEncoder, SessionDigraph};

/// The GC-SAN baseline.
pub struct GcSan {
    items: Embedding,
    encoder: GnnEncoder,
    query: Linear,
    key: Linear,
    value: Linear,
    ffn: Ffn,
    /// Interpolation weight between attention output and GNN state.
    pub omega: f32,
    blocks: usize,
    num_items: usize,
    dim: usize,
}

impl GcSan {
    /// Builds the model with one attention block and ω = 0.6 (near the
    /// original's tuned value).
    pub fn new(num_items: usize, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        GcSan {
            items: Embedding::new(num_items, dim, &mut rng),
            encoder: GnnEncoder::new(dim, 1, &mut rng),
            query: Linear::new_no_bias(dim, dim, &mut rng),
            key: Linear::new_no_bias(dim, dim, &mut rng),
            value: Linear::new_no_bias(dim, dim, &mut rng),
            ffn: Ffn::new(dim, 0.0, &mut rng),
            omega: 0.6,
            blocks: 1,
            num_items,
            dim,
        }
    }

    fn self_attention(&self, x: &Tensor) -> Tensor {
        let scale = 1.0 / (self.dim as f32).sqrt();
        let q = self.query.apply(x);
        let k = self.key.apply(x);
        let v = self.value.apply(x);
        let scores = q.matmul(&k.transpose()).mul_scalar(scale);
        scores.softmax_rows().matmul(&v)
    }

    /// ω-interpolated session representation (`[d]`).
    fn session_repr(&self, session: &Session, training: bool, rng: &mut Rng) -> Tensor {
        assert!(!session.is_empty(), "empty session");
        let graph = SessionDigraph::from_session(session);
        let idx: Vec<usize> = graph.nodes.iter().map(|&i| i as usize).collect();
        let h = self.encoder.encode(&graph, self.items.lookup(&idx));
        let steps = h.gather_rows(&graph.step_node); // [n, d]
        let n = steps.rows();

        let mut ctx = ModuleCtx::new(training, rng);
        let mut e = steps.clone();
        for _ in 0..self.blocks {
            e = self.ffn.forward(&self.self_attention(&e), &mut ctx);
        }
        let att_last = e.row(n - 1);
        let gnn_last = steps.row(n - 1);
        att_last
            .mul_scalar(self.omega)
            .add(&gnn_last.mul_scalar(1.0 - self.omega))
    }
}

impl SessionModel for GcSan {
    fn name(&self) -> &str {
        "GC-SAN"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.items.parameters();
        p.extend(self.encoder.parameters());
        p.extend(self.query.parameters());
        p.extend(self.key.parameters());
        p.extend(self.value.parameters());
        p.extend(self.ffn.parameters());
        p
    }

    fn logits(&self, session: &Session, training: bool, rng: &mut Rng) -> Tensor {
        DotScorer::logits(&self.session_repr(session, training, rng), &self.items.weight)
    }

    fn logits_batch(&self, sessions: &[&Session]) -> Tensor {
        assert!(!sessions.is_empty(), "logits_batch of an empty batch");
        let mut rng = Rng::seed_from_u64(0); // dropout is off: never drawn from
        let reprs: Vec<Tensor> = sessions
            .iter()
            .map(|s| self.session_repr(s, false, &mut rng))
            .collect();
        DotScorer::logits_rows(&Tensor::stack_rows(&reprs), &self.items.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    fn sess(items: &[u32]) -> Session {
        Session {
            id: 0,
            events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
        }
    }

    #[test]
    fn logits_shape_and_finiteness() {
        let m = GcSan::new(7, 8, 0);
        let y = m.logits(&sess(&[1, 2, 3, 2]), false, &mut Rng::seed_from_u64(0));
        assert_eq!(y.len(), 7);
        assert!(y.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gradients_reach_attention_projections() {
        let m = GcSan::new(5, 4, 1);
        m.logits(&sess(&[0, 1, 2]), true, &mut Rng::seed_from_u64(0))
            .cross_entropy_single(3)
            .backward();
        assert!(m.query.weight.grad().is_some());
        assert!(m.key.weight.grad().is_some());
        assert!(m.value.weight.grad().is_some());
    }
}
