//! Factory constructing any baseline by name — the experiment harness
//! enumerates [`BaselineKind::all`] to fill the columns of Table III.

use embsr_train::{NeuralRecommender, Recommender, TrainConfig};

use crate::{
    Bert4Rec, Fpmc, GcSan, Gru4Rec, Hup, ItemKnn, MarkovChain, MkmSr, Narm, Rib, SgnnHn, Sknn,
    SPop, SrGnn, Stamp, Stan,
};

/// All baseline identifiers, in the paper's Table III column order
/// (plus STAN, discussed in related work).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BaselineKind {
    SPop,
    Sknn,
    Stan,
    Markov,
    Fpmc,
    ItemKnn,
    Gru4Rec,
    Narm,
    Stamp,
    SrGnn,
    GcSan,
    Bert4Rec,
    SgnnHn,
    Rib,
    Hup,
    MkmSr,
}

impl BaselineKind {
    /// The twelve Table III baselines in column order.
    pub fn table3() -> [BaselineKind; 11] {
        [
            BaselineKind::SPop,
            BaselineKind::Sknn,
            BaselineKind::Narm,
            BaselineKind::Stamp,
            BaselineKind::SrGnn,
            BaselineKind::GcSan,
            BaselineKind::Bert4Rec,
            BaselineKind::SgnnHn,
            BaselineKind::Rib,
            BaselineKind::Hup,
            BaselineKind::MkmSr,
        ]
    }

    /// Every implemented baseline.
    pub fn all() -> [BaselineKind; 16] {
        [
            BaselineKind::SPop,
            BaselineKind::Sknn,
            BaselineKind::Stan,
            BaselineKind::Markov,
            BaselineKind::Fpmc,
            BaselineKind::ItemKnn,
            BaselineKind::Gru4Rec,
            BaselineKind::Narm,
            BaselineKind::Stamp,
            BaselineKind::SrGnn,
            BaselineKind::GcSan,
            BaselineKind::Bert4Rec,
            BaselineKind::SgnnHn,
            BaselineKind::Rib,
            BaselineKind::Hup,
            BaselineKind::MkmSr,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineKind::SPop => "S-POP",
            BaselineKind::Sknn => "SKNN",
            BaselineKind::Stan => "STAN",
            BaselineKind::Markov => "Markov",
            BaselineKind::Fpmc => "FPMC",
            BaselineKind::ItemKnn => "Item-KNN",
            BaselineKind::Gru4Rec => "GRU4Rec",
            BaselineKind::Narm => "NARM",
            BaselineKind::Stamp => "STAMP",
            BaselineKind::SrGnn => "SR-GNN",
            BaselineKind::GcSan => "GC-SAN",
            BaselineKind::Bert4Rec => "BERT4Rec",
            BaselineKind::SgnnHn => "SGNN-HN",
            BaselineKind::Rib => "RIB",
            BaselineKind::Hup => "HUP",
            BaselineKind::MkmSr => "MKM-SR",
        }
    }

    /// Whether the model consumes micro-behavior operations.
    pub fn is_micro_behavior(&self) -> bool {
        matches!(
            self,
            BaselineKind::Rib | BaselineKind::Hup | BaselineKind::MkmSr
        )
    }
}

/// Builds a ready-to-fit recommender.
///
/// `dim` is the embedding size; `seed` controls initialization; `cfg` is the
/// shared training configuration (ignored by the non-neural methods).
pub fn build_baseline(
    kind: BaselineKind,
    num_items: usize,
    num_ops: usize,
    dim: usize,
    seed: u64,
    cfg: &TrainConfig,
) -> Box<dyn Recommender> {
    embsr_obs::debug!(
        target: "embsr_baselines",
        "building baseline {kind:?}: |V|={num_items} |O|={num_ops} dim={dim} seed={seed}"
    );
    match kind {
        BaselineKind::SPop => Box::new(SPop::new(num_items)),
        BaselineKind::Sknn => Box::new(Sknn::new(num_items)),
        BaselineKind::Stan => Box::new(Stan::new(num_items)),
        BaselineKind::Markov => Box::new(MarkovChain::new(num_items)),
        BaselineKind::ItemKnn => Box::new(ItemKnn::new(num_items)),
        BaselineKind::Fpmc => Box::new(NeuralRecommender::new(
            Fpmc::new(num_items, dim, seed),
            cfg.clone(),
        )),
        BaselineKind::Gru4Rec => Box::new(NeuralRecommender::new(
            Gru4Rec::new(num_items, dim, seed),
            cfg.clone(),
        )),
        BaselineKind::Narm => Box::new(NeuralRecommender::new(
            Narm::new(num_items, dim, 0.1, seed),
            cfg.clone(),
        )),
        BaselineKind::Stamp => Box::new(NeuralRecommender::new(
            Stamp::new(num_items, dim, seed),
            cfg.clone(),
        )),
        BaselineKind::SrGnn => Box::new(NeuralRecommender::new(
            SrGnn::new(num_items, dim, seed),
            cfg.clone(),
        )),
        BaselineKind::GcSan => Box::new(NeuralRecommender::new(
            GcSan::new(num_items, dim, seed),
            cfg.clone(),
        )),
        BaselineKind::Bert4Rec => Box::new(NeuralRecommender::new(
            Bert4Rec::new(num_items, dim, seed),
            cfg.clone(),
        )),
        BaselineKind::SgnnHn => Box::new(NeuralRecommender::new(
            SgnnHn::new(num_items, dim, seed),
            cfg.clone(),
        )),
        BaselineKind::Rib => Box::new(NeuralRecommender::new(
            Rib::new(num_items, num_ops, dim, seed),
            cfg.clone(),
        )),
        BaselineKind::Hup => Box::new(NeuralRecommender::new(
            Hup::new(num_items, num_ops, dim, seed),
            cfg.clone(),
        )),
        BaselineKind::MkmSr => Box::new(NeuralRecommender::new(
            MkmSr::new(num_items, num_ops, dim, seed),
            cfg.clone(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::{MicroBehavior, Session};

    #[test]
    fn factory_builds_every_kind() {
        let cfg = TrainConfig::fast();
        let s = Session {
            id: 0,
            events: vec![MicroBehavior::new(1, 0), MicroBehavior::new(2, 1)],
        };
        for kind in BaselineKind::all() {
            let rec = build_baseline(kind, 10, 5, 8, 0, &cfg);
            assert_eq!(rec.name(), kind.name());
            assert_eq!(rec.num_items(), 10);
            assert_eq!(rec.scores(&s).len(), 10, "{}", kind.name());
        }
    }

    #[test]
    fn micro_behavior_classification_matches_paper() {
        assert!(BaselineKind::Rib.is_micro_behavior());
        assert!(BaselineKind::MkmSr.is_micro_behavior());
        assert!(!BaselineKind::SgnnHn.is_micro_behavior());
    }

    #[test]
    fn table3_order_matches_paper_columns() {
        let names: Vec<&str> = BaselineKind::table3().iter().map(|k| k.name()).collect();
        assert_eq!(names[0], "S-POP");
        assert_eq!(names.last(), Some(&"MKM-SR"));
        assert_eq!(names.len(), 11);
    }
}
