//! FPMC (Rendle et al., WWW 2010), session-based variant — factorized
//! personalized Markov chains without the user factor (sessions are
//! anonymous), i.e. factorized first-order transitions:
//! `score(next | last) = v_last · w_next`, trained with softmax
//! cross-entropy. This is the factorized counterpart of [`crate::MarkovChain`]
//! and the paper's related-work baseline [4].

use embsr_nn::{Embedding, Module};
use embsr_sessions::Session;
use embsr_tensor::{Rng, Tensor};
use embsr_train::SessionModel;

use crate::common::DotScorer;

/// The session-FPMC baseline.
pub struct Fpmc {
    /// "From" factors `V` (context side).
    from: Embedding,
    /// "To" factors `W` (candidate side).
    to: Embedding,
    num_items: usize,
}

impl Fpmc {
    /// Builds the model.
    pub fn new(num_items: usize, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        Fpmc {
            from: Embedding::new(num_items, dim, &mut rng),
            to: Embedding::new(num_items, dim, &mut rng),
            num_items,
        }
    }

    /// The "from" factor of the session's last macro item (`[d]`).
    fn session_repr(&self, session: &Session) -> Tensor {
        let last = *session
            .macro_items()
            .last()
            .expect("non-empty session") as usize;
        self.from.lookup_one(last)
    }
}

impl SessionModel for Fpmc {
    fn name(&self) -> &str {
        "FPMC"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.from.parameters();
        p.extend(self.to.parameters());
        p
    }

    fn logits(&self, session: &Session, _training: bool, _rng: &mut Rng) -> Tensor {
        DotScorer::logits(&self.session_repr(session), &self.to.weight)
    }

    fn logits_batch(&self, sessions: &[&Session]) -> Tensor {
        assert!(!sessions.is_empty(), "logits_batch of an empty batch");
        let reprs: Vec<Tensor> = sessions.iter().map(|s| self.session_repr(s)).collect();
        DotScorer::logits_rows(&Tensor::stack_rows(&reprs), &self.to.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;
    use embsr_tensor::{Adam, AdamConfig, Optimizer};

    fn sess(items: &[u32]) -> Session {
        Session {
            id: 0,
            events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
        }
    }

    #[test]
    fn only_last_macro_item_matters() {
        let m = Fpmc::new(6, 8, 0);
        let mut rng = Rng::seed_from_u64(0);
        let a = m.logits(&sess(&[1, 2, 5]), false, &mut rng).to_vec();
        let b = m.logits(&sess(&[4, 3, 5]), false, &mut rng).to_vec();
        assert_eq!(a, b, "FPMC is first-order");
    }

    #[test]
    fn learns_factorized_transitions() {
        // transitions: 0->1, 2->3; shared structure must be learnable
        let m = Fpmc::new(4, 6, 1);
        let mut opt = Adam::new(
            m.parameters(),
            AdamConfig {
                lr: 0.05,
                ..Default::default()
            },
        );
        let data = [(sess(&[0]), 1usize), (sess(&[2]), 3usize)];
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..80 {
            opt.zero_grad();
            let mut loss = Tensor::scalar(0.0);
            for (s, t) in &data {
                loss = loss.add(&m.logits(s, true, &mut rng).cross_entropy_single(*t));
            }
            loss.backward();
            opt.step();
        }
        let s0 = m.logits(&sess(&[0]), false, &mut rng).to_vec();
        let best = (0..4).max_by(|&a, &b| s0[a].total_cmp(&s0[b])).unwrap();
        assert_eq!(best, 1);
    }
}
