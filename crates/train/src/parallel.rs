//! Data-parallel mini-batch training with a deterministic gradient
//! reduction.
//!
//! The autograd graph is `Rc`-based and single-threaded by design, so this
//! trainer parallelizes *across model replicas*: every worker thread builds
//! its own replica (via a caller-supplied factory, so no tensor ever crosses
//! a thread boundary), receives the master's parameters as a flat `Vec<f32>`
//! snapshot, runs forward/backward on its assigned gradient shards, and
//! sends flat gradient buffers back. The master combines shard gradients
//! with [`embsr_tensor::tree_reduce`] and takes one Adam step per
//! mini-batch, exactly like the sequential [`Trainer`].
//!
//! ## Why the result is bitwise thread-invariant
//!
//! At a fixed seed, final parameters, per-epoch losses and evaluation
//! metrics are **bitwise identical for any `train_threads`**, because the
//! thread count never influences what is computed — only who computes it:
//!
//! 1. every mini-batch is split into [`TrainConfig::grad_shards`] contiguous
//!    shards — a function of batch size and shard count only, never of the
//!    thread count;
//! 2. dropout RNG is derived per example from `(seed, epoch, position in the
//!    shuffled epoch order)`, so an example draws the same noise no matter
//!    which worker (or how many workers) processes it;
//! 3. the master slots incoming shard gradients **by shard index** and sums
//!    them with a fixed-order pairwise tree reduction, so float rounding
//!    does not depend on worker completion order;
//! 4. everything else — shuffling, the Adam step, validation — runs
//!    sequentially on the master thread from derived seeds.
//!
//! `tests/thread_invariance.rs` proves the claim for the full EMBSR model;
//! `DESIGN.md` §10 gives the longer argument.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use embsr_pool::run_with_workers;
use embsr_sessions::Example;
use embsr_tensor::{
    clip_grad_norm, export_grads, export_params, flat_len, import_grads, import_params,
    tree_reduce, Adam, AdamConfig, AdamParamState, Optimizer, Rng, Tensor,
};

use crate::config::TrainConfig;
use crate::recommender::SessionModel;
use crate::trainer::{
    truncate_session, validate_loss_graph, EpochStats, PhaseTimes, TrainReport, Trainer,
};

// Stream tags keeping the derived RNG streams disjoint. Values are
// arbitrary odd constants; only distinctness matters.
const STREAM_SHUFFLE: u64 = 0x9163_2D4A_F05B_ED31;
const STREAM_DROPOUT: u64 = 0x4C15_7B89_A2E6_0D17;

/// One round of the splitmix64 output function — a cheap, well-mixed hash
/// used to derive independent seeds from `(seed, stream, a, b)` tuples.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent RNG seed for `(stream, a, b)` under `seed`.
///
/// Replacing one sequential RNG with derived per-(epoch, example) streams is
/// what makes both thread invariance and exact checkpoint resume possible:
/// no RNG state needs to be threaded through the batch loop or serialized.
fn derive_seed(seed: u64, stream: u64, a: u64, b: u64) -> u64 {
    splitmix(splitmix(splitmix(seed ^ stream) ^ a) ^ b)
}

/// One gradient shard's worth of work: `(train index, epoch position)`
/// pairs. The epoch position seeds the example's dropout stream.
struct ShardTask {
    shard_idx: usize,
    epoch: u64,
    examples: Vec<(usize, u64)>,
}

/// A mini-batch's work for one worker: the parameter snapshot to load plus
/// the shards assigned to that worker.
struct BatchTask {
    params: Arc<Vec<f32>>,
    shards: Vec<ShardTask>,
}

/// A worker's result for one shard.
struct ShardGrad {
    shard_idx: usize,
    grads: Vec<f32>,
    /// Sum of per-example losses over the shard (f64 so the master's
    /// epoch-loss fold is insensitive to batch count).
    loss_sum: f64,
    /// Non-empty examples the shard actually contributed.
    examples: usize,
    /// Wall-clock the worker spent in the forward pass (0 when metrics are
    /// off). Timing only — never feeds back into the numerics.
    forward_us: u64,
    /// Wall-clock the worker spent in backward + gradient export.
    backward_us: u64,
}

/// Resumable snapshot of a [`ParallelTrainer`] run, captured after the last
/// completed epoch and *before* the best-validation weight restore.
///
/// Serialize with [`crate::save_train_state`] / [`crate::load_train_state`].
/// Resuming requires the same `TrainConfig` (except `train_threads`, which
/// never affects results) and the same data order; the trainer asserts the
/// parameter layout matches.
#[derive(Clone, Debug)]
pub struct TrainState {
    /// First epoch the resumed run should execute.
    pub next_epoch: usize,
    /// Flat per-parameter data at capture time (the *current* weights, not
    /// the best-validation snapshot — training continues from these).
    pub params: Vec<Vec<f32>>,
    /// Adam step counter.
    pub adam_t: u64,
    /// Adam first/second moments per parameter.
    pub adam_moments: Vec<AdamParamState>,
    /// Best validation loss seen so far.
    pub best_val: f32,
    /// Epochs since the best validation loss (patience counter).
    pub since_best: usize,
    /// Epoch index that produced `best_val`.
    pub best_epoch: usize,
    /// Whether patience already stopped the run (resume is then a no-op).
    pub early_stopped: bool,
    /// Parameter snapshot at the best-validation epoch, when one exists.
    pub best_weights: Option<Vec<Vec<f32>>>,
    /// Per-epoch statistics of all completed epochs.
    pub epochs: Vec<EpochStats>,
}

/// Data-parallel counterpart of [`Trainer`]: same protocol (Adam, gradient
/// clipping, patience, best-weight restore), with each mini-batch's
/// forward/backward fanned out over [`TrainConfig::train_threads`] replica
/// workers.
pub struct ParallelTrainer {
    cfg: TrainConfig,
}

impl ParallelTrainer {
    /// Creates a parallel trainer with the given configuration.
    pub fn new(cfg: TrainConfig) -> Self {
        ParallelTrainer { cfg }
    }

    /// Trains `model` in place and returns per-epoch statistics.
    ///
    /// `make_replica` must build a model with the same parameter layout as
    /// `model` (typically the same constructor and config); replica weights
    /// are overwritten from the master before every batch, so the factory's
    /// own initialization never influences the result.
    pub fn fit<M, F>(
        &self,
        model: &M,
        make_replica: F,
        train: &[Example],
        val: &[Example],
    ) -> TrainReport
    where
        M: SessionModel,
        F: Fn() -> M + Sync,
    {
        self.fit_from(model, make_replica, train, val, None).0
    }

    /// [`ParallelTrainer::fit`], optionally resuming from a mid-training
    /// [`TrainState`]. Returns the report together with the state after the
    /// final completed epoch, so callers can checkpoint long runs:
    ///
    /// train `k` epochs (`cfg.epochs = k`) → save the returned state →
    /// later, load it and call `fit_from` with the full epoch budget. The
    /// resumed run is bitwise identical to an uninterrupted one, for any
    /// combination of `train_threads` values on either side.
    pub fn fit_from<M, F>(
        &self,
        model: &M,
        make_replica: F,
        train: &[Example],
        val: &[Example],
        resume: Option<TrainState>,
    ) -> (TrainReport, TrainState)
    where
        M: SessionModel,
        F: Fn() -> M + Sync,
    {
        let cfg = &self.cfg;
        let threads = cfg.train_threads.max(1);
        let shards_per_batch = cfg.grad_shards.max(1);
        let _fit_span = embsr_obs::span("embsr_train", "parallel_fit");
        embsr_obs::info!(
            target: "embsr_train",
            "parallel fit start: model={} train={} val={} epochs={} lr={} threads={} shards={}",
            model.name(),
            train.len(),
            val.len(),
            cfg.epochs,
            cfg.lr,
            threads,
            shards_per_batch
        );

        let params = model.parameters();
        let n_flat = flat_len(&params);
        let mut opt = Adam::new(
            params.clone(),
            AdamConfig {
                lr: cfg.lr,
                weight_decay: cfg.weight_decay,
                ..Default::default()
            },
        );

        let mut report = TrainReport::default();
        let mut best_val = f32::INFINITY;
        let mut since_best = 0usize;
        let mut best_weights: Option<Vec<Vec<f32>>> = None;
        let mut start_epoch = 0usize;

        if let Some(state) = resume {
            assert_eq!(
                state.params.len(),
                params.len(),
                "resume state has a different parameter count"
            );
            for (p, w) in params.iter().zip(&state.params) {
                p.set_data(w);
            }
            let restored = opt.import_state(state.adam_t, state.adam_moments);
            assert!(restored.is_ok(), "resume rejected: {:?}", restored.err());
            best_val = state.best_val;
            since_best = state.since_best;
            best_weights = state.best_weights;
            start_epoch = state.next_epoch;
            report.best_epoch = state.best_epoch;
            report.early_stopped = state.early_stopped;
            report.epochs = state.epochs;
        }

        // Validate the first batch's loss graph sequentially on the master
        // model (forward only — no gradients or RNG state leak into the
        // run). Resumed runs already validated when they started.
        if cfg.validate_graph && start_epoch == 0 && !report.early_stopped {
            if let Some(loss) = self.first_batch_loss(model, train) {
                report.graph_diagnostics = validate_loss_graph(&loss, &params);
            }
        }

        let run_epochs = !report.early_stopped && start_epoch < cfg.epochs;
        if run_epochs {
            // Per-worker connections: each worker takes (task receiver,
            // result sender) by its id; the master keeps the task senders
            // (dropping them is the shutdown signal) and the one result
            // receiver.
            let (result_tx, result_rx) = channel::<ShardGrad>();
            let mut task_txs: Vec<Sender<BatchTask>> = Vec::with_capacity(threads);
            let mut conn_slots: Vec<Option<(Receiver<BatchTask>, Sender<ShardGrad>)>> =
                Vec::with_capacity(threads);
            for _ in 0..threads {
                let (tx, rx) = channel::<BatchTask>();
                task_txs.push(tx);
                conn_slots.push(Some((rx, result_tx.clone())));
            }
            drop(result_tx);
            let conns = Mutex::new(conn_slots);

            let val_take = ((val.len() as f32 * cfg.val_fraction).ceil() as usize).min(val.len());
            let val_slice = &val[..val_take];
            let seq = Trainer::new(cfg.clone());

            let worker = |w: usize| {
                let _worker_span = embsr_obs::span("embsr_train", "worker");
                let conn = {
                    let mut slots = match conns.lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    slots[w].take()
                };
                let Some((rx, tx)) = conn else { return };
                let replica = make_replica();
                let rparams = replica.parameters();
                assert_eq!(
                    flat_len(&rparams),
                    n_flat,
                    "replica parameter layout differs from the master model"
                );
                while let Ok(task) = rx.recv() {
                    let _batch_span = embsr_obs::span("embsr_train", "worker_batch")
                        .with_close_level(embsr_obs::Level::Trace);
                    import_params(&rparams, &task.params);
                    for shard in task.shards {
                        let watch =
                            embsr_obs::metrics::enabled().then(embsr_obs::Stopwatch::start);
                        for p in &rparams {
                            p.zero_grad();
                        }
                        let mut losses: Vec<Tensor> = Vec::with_capacity(shard.examples.len());
                        for &(train_idx, pos) in &shard.examples {
                            let ex = &train[train_idx];
                            if ex.session.is_empty() {
                                continue;
                            }
                            let sess = truncate_session(&ex.session, cfg.max_session_len);
                            let mut ex_rng = Rng::seed_from_u64(derive_seed(
                                cfg.seed,
                                STREAM_DROPOUT,
                                shard.epoch,
                                pos,
                            ));
                            let logits = replica.logits(&sess, true, &mut ex_rng);
                            losses.push(logits.cross_entropy_single(ex.target as usize));
                        }
                        let forward_mark = watch.map_or(0, |w| w.elapsed_us());
                        let examples = losses.len();
                        let (grads, loss_sum) =
                            match losses.into_iter().reduce(|a, b| a.add(&b)) {
                                Some(sum) => {
                                    let v = sum.item() as f64;
                                    sum.backward();
                                    (export_grads(&rparams), v)
                                }
                                // Every session in the shard was empty: a
                                // zero buffer keeps the reduction shape.
                                None => (vec![0.0f32; n_flat], 0.0),
                            };
                        let (forward_us, backward_us) = match watch {
                            Some(w) => (forward_mark, w.elapsed_us() - forward_mark),
                            None => (0, 0),
                        };
                        if embsr_obs::metrics::enabled() {
                            embsr_obs::metrics::counter("train.parallel.shards").inc();
                        }
                        let sent = tx.send(ShardGrad {
                            shard_idx: shard.shard_idx,
                            grads,
                            loss_sum,
                            examples,
                            forward_us,
                            backward_us,
                        });
                        if sent.is_err() {
                            return; // master is gone; nothing left to do
                        }
                    }
                }
            };

            let master = |signal: &embsr_pool::AbortSignal| -> Result<(), String> {
                for epoch in start_epoch..cfg.epochs {
                    let epoch_span = embsr_obs::span("embsr_train", "epoch");
                    // Fresh identity order shuffled from a per-epoch derived
                    // seed: epoch k's order is independent of history, which
                    // is what lets a resumed run replay it exactly.
                    let mut order: Vec<usize> = (0..train.len()).collect();
                    let mut shuffle_rng = Rng::seed_from_u64(derive_seed(
                        cfg.seed,
                        STREAM_SHUFFLE,
                        epoch as u64,
                        0,
                    ));
                    shuffle_rng.shuffle(&mut order);
                    let indexed: Vec<(usize, u64)> = order
                        .iter()
                        .enumerate()
                        .map(|(pos, &i)| (i, pos as u64))
                        .collect();

                    let mut epoch_loss = 0.0f64;
                    let mut seen = 0usize;
                    let mut last_grad_norm = f32::NAN;
                    // Phase attribution: workers report forward/backward time
                    // per shard, the master times reduce and optimizer here.
                    let timing = embsr_obs::metrics::enabled();
                    let mut phases = PhaseTimes::default();
                    for chunk in indexed.chunks(cfg.batch_size) {
                        let _batch_span = embsr_obs::span("embsr_train", "batch")
                            .with_close_level(embsr_obs::Level::Trace);
                        let shards = split_into_shards(chunk, shards_per_batch);
                        let shard_count = shards.len();
                        let snapshot = Arc::new(export_params(&params));
                        let mut per_worker: Vec<Vec<ShardTask>> =
                            (0..threads).map(|_| Vec::new()).collect();
                        for (shard_idx, examples) in shards.into_iter().enumerate() {
                            per_worker[shard_idx % threads].push(ShardTask {
                                shard_idx,
                                epoch: epoch as u64,
                                examples,
                            });
                        }
                        let mut expected = 0usize;
                        for (w, worker_shards) in per_worker.into_iter().enumerate() {
                            if worker_shards.is_empty() {
                                continue;
                            }
                            expected += worker_shards.len();
                            let sent = task_txs[w].send(BatchTask {
                                params: snapshot.clone(),
                                shards: worker_shards,
                            });
                            if sent.is_err() {
                                return Err(format!("worker {w} is gone"));
                            }
                        }

                        // Collect shard results in any arrival order, slot
                        // them by shard index, and poll the abort signal so
                        // a dead worker fails the run instead of hanging it.
                        let mut slots: Vec<Option<ShardGrad>> =
                            (0..shard_count).map(|_| None).collect();
                        let mut received = 0usize;
                        while received < expected {
                            match result_rx.recv_timeout(Duration::from_millis(50)) {
                                Ok(sg) => {
                                    let idx = sg.shard_idx;
                                    slots[idx] = Some(sg);
                                    received += 1;
                                }
                                Err(RecvTimeoutError::Timeout) => {
                                    if signal.is_aborted() {
                                        return Err("a training worker panicked".to_string());
                                    }
                                }
                                Err(RecvTimeoutError::Disconnected) => {
                                    return Err("all training workers exited".to_string());
                                }
                            }
                        }

                        let mut n_examples = 0usize;
                        let mut batch_loss = 0.0f64;
                        let mut buffers: Vec<Vec<f32>> = Vec::with_capacity(shard_count);
                        for slot in slots {
                            match slot {
                                Some(sg) => {
                                    n_examples += sg.examples;
                                    batch_loss += sg.loss_sum;
                                    phases.forward_us += sg.forward_us;
                                    phases.backward_us += sg.backward_us;
                                    buffers.push(sg.grads);
                                }
                                None => return Err("missing shard result".to_string()),
                            }
                        }
                        if n_examples == 0 {
                            continue; // every session in the batch was empty
                        }
                        let watch = timing.then(embsr_obs::Stopwatch::start);
                        let mut reduced = tree_reduce(buffers);
                        // Workers backprop the loss *sum*; normalize to the
                        // batch mean here, once, in one deterministic pass.
                        let scale = 1.0 / n_examples as f32;
                        for g in &mut reduced {
                            *g *= scale;
                        }
                        import_grads(&params, &reduced);
                        let reduce_mark = watch.map_or(0, |w| w.elapsed_us());
                        if let Some(max) = cfg.clip_norm {
                            last_grad_norm = clip_grad_norm(&params, max);
                        }
                        opt.step();
                        if let Some(w) = watch {
                            phases.reduce_us += reduce_mark;
                            phases.optimizer_us += w.elapsed_us() - reduce_mark;
                        }
                        epoch_loss += batch_loss;
                        seen += n_examples;
                        if embsr_obs::metrics::enabled() {
                            embsr_obs::metrics::counter("train.batches").inc();
                            embsr_obs::metrics::counter("train.examples_seen")
                                .add(n_examples as u64);
                        }
                    }

                    phases.observe(epoch);
                    let train_loss = (epoch_loss / seen.max(1) as f64) as f32;
                    let val_loss = seq.eval_loss(model, val_slice);
                    let duration_s = epoch_span.elapsed().as_secs_f64();
                    drop(epoch_span);
                    embsr_obs::debug!(
                        target: "embsr_train",
                        "epoch {epoch}: train_loss={train_loss:.4} val_loss={val_loss:.4} \
                         grad_norm={last_grad_norm:.3} duration_s={duration_s:.3} threads={threads}"
                    );
                    report.epochs.push(EpochStats {
                        epoch,
                        train_loss,
                        val_loss,
                        duration_s,
                        grad_norm: last_grad_norm,
                        lr: cfg.lr,
                    });
                    if val_loss < best_val || val_loss.is_nan() {
                        best_val = val_loss;
                        report.best_epoch = epoch;
                        since_best = 0;
                        if !val_loss.is_nan() {
                            best_weights = Some(params.iter().map(Tensor::to_vec).collect());
                        }
                    } else {
                        since_best += 1;
                        if let Some(p) = cfg.patience {
                            if since_best > p {
                                report.early_stopped = true;
                                embsr_obs::info!(
                                    target: "embsr_train",
                                    "early stop at epoch {epoch}: no val improvement for \
                                     {since_best} epochs (best epoch {})",
                                    report.best_epoch
                                );
                                break;
                            }
                        }
                    }
                }
                // Dropping the task senders is the shutdown signal: workers
                // see a closed channel and exit, letting the pool join them.
                drop(task_txs);
                Ok(())
            };

            let master_out = run_with_workers(threads, worker, master);
            match master_out {
                Ok(()) => {}
                // A master error is always the downstream symptom of a
                // worker panic, and `run_with_workers` re-raises worker
                // panics before returning — so this arm cannot be reached.
                Err(e) => unreachable!("parallel master failed without a worker panic: {e}"),
            }
        }

        // Snapshot the resumable state *before* the best-weight restore:
        // training continues from the current weights, not the best ones.
        let (adam_t, adam_moments) = opt.export_state();
        let state = TrainState {
            next_epoch: report.epochs.len(),
            params: params.iter().map(Tensor::to_vec).collect(),
            adam_t,
            adam_moments,
            best_val,
            since_best,
            best_epoch: report.best_epoch,
            early_stopped: report.early_stopped,
            best_weights: best_weights.clone(),
            epochs: report.epochs.clone(),
        };
        if let Some(snapshot) = best_weights {
            for (p, w) in params.iter().zip(&snapshot) {
                p.set_data(w);
            }
        }
        (report, state)
    }

    /// Builds epoch 0's first-batch mean loss on the master model (forward
    /// only), replaying exactly the shuffle and dropout streams the workers
    /// will use, so the graph validator sees the graph that will train.
    fn first_batch_loss<M: SessionModel>(&self, model: &M, train: &[Example]) -> Option<Tensor> {
        let cfg = &self.cfg;
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut shuffle_rng =
            Rng::seed_from_u64(derive_seed(cfg.seed, STREAM_SHUFFLE, 0, 0));
        shuffle_rng.shuffle(&mut order);
        let chunk = &order[..cfg.batch_size.min(order.len())];
        let mut losses: Vec<Tensor> = Vec::with_capacity(chunk.len());
        for (pos, &i) in chunk.iter().enumerate() {
            let ex = &train[i];
            if ex.session.is_empty() {
                continue;
            }
            let sess = truncate_session(&ex.session, cfg.max_session_len);
            let mut ex_rng =
                Rng::seed_from_u64(derive_seed(cfg.seed, STREAM_DROPOUT, 0, pos as u64));
            let logits = model.logits(&sess, true, &mut ex_rng);
            losses.push(logits.cross_entropy_single(ex.target as usize));
        }
        let n = losses.len() as f32;
        losses
            .into_iter()
            .reduce(|a, b| a.add(&b))
            .map(|sum| sum.mul_scalar(1.0 / n))
    }
}

/// Splits a batch into at most `max_shards` contiguous, near-equal shards
/// (never more shards than examples). The split depends only on the chunk
/// and the shard budget — deliberately *not* on the thread count.
fn split_into_shards(chunk: &[(usize, u64)], max_shards: usize) -> Vec<Vec<(usize, u64)>> {
    if chunk.is_empty() {
        return Vec::new();
    }
    let shards = max_shards.min(chunk.len());
    let base = chunk.len() / shards;
    let rem = chunk.len() % shards;
    let mut out = Vec::with_capacity(shards);
    let mut offset = 0usize;
    for s in 0..shards {
        let take = base + usize::from(s < rem);
        out.push(chunk[offset..offset + take].to_vec());
        offset += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::{MicroBehavior, Session};
    use embsr_tensor::uniform_init;

    /// A bigram model whose logits are perturbed by dropout-style noise
    /// during training, so the tests exercise the derived RNG streams, not
    /// just the gradient math.
    struct NoisyBigram {
        table: Tensor, // [V, V]
    }

    impl NoisyBigram {
        fn new(v: usize, seed: u64) -> Self {
            NoisyBigram {
                table: uniform_init(&[v, v], &mut Rng::seed_from_u64(seed)),
            }
        }
    }

    impl SessionModel for NoisyBigram {
        fn name(&self) -> &str {
            "NoisyBigram"
        }
        fn num_items(&self) -> usize {
            self.table.rows()
        }
        fn parameters(&self) -> Vec<Tensor> {
            vec![self.table.clone()]
        }
        fn logits(&self, s: &Session, training: bool, rng: &mut Rng) -> Tensor {
            let last = match s.events.last() {
                Some(e) => e.item as usize,
                None => 0,
            };
            let row = self.table.row(last);
            if training {
                // multiplicative noise driven by the per-example stream
                row.mul_scalar(1.0 + rng.uniform_range(-0.05, 0.05))
            } else {
                row
            }
        }
    }

    fn make_examples(pairs: &[(u32, u32)]) -> Vec<Example> {
        pairs
            .iter()
            .enumerate()
            .map(|(i, &(from, to))| Example {
                session: Session {
                    id: i as u64,
                    events: vec![MicroBehavior::new(from, 0)],
                },
                target: to,
            })
            .collect()
    }

    fn cycle_examples(n: usize, v: u32) -> Vec<Example> {
        let pairs: Vec<(u32, u32)> = (0..n as u32).map(|i| (i % v, (i + 1) % v)).collect();
        make_examples(&pairs)
    }

    fn cfg(threads: usize) -> TrainConfig {
        TrainConfig {
            epochs: 3,
            batch_size: 8,
            lr: 0.05,
            patience: None,
            train_threads: threads,
            grad_shards: 4,
            ..Default::default()
        }
    }

    fn final_params_bits(threads: usize, seed: u64) -> (Vec<u32>, Vec<(u32, u32)>) {
        let exs = cycle_examples(24, 5);
        let model = NoisyBigram::new(5, seed);
        let trainer = ParallelTrainer::new(cfg(threads));
        let report = trainer.fit(&model, || NoisyBigram::new(5, seed), &exs, &exs);
        let bits = export_params(&model.parameters())
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let losses = report
            .epochs
            .iter()
            .map(|e| (e.train_loss.to_bits(), e.val_loss.to_bits()))
            .collect();
        (bits, losses)
    }

    #[test]
    fn loss_decreases_on_learnable_data() {
        let exs = cycle_examples(30, 3);
        let model = NoisyBigram::new(3, 0);
        let trainer = ParallelTrainer::new(TrainConfig {
            epochs: 25,
            batch_size: 8,
            lr: 0.1,
            patience: None,
            train_threads: 2,
            grad_shards: 4,
            ..Default::default()
        });
        let report = trainer.fit(&model, || NoisyBigram::new(3, 0), &exs, &exs);
        let first = report.epochs[0].train_loss;
        let last = report.final_train_loss();
        assert!(last < first * 0.5, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn final_params_are_bitwise_invariant_to_thread_count() {
        let (p1, l1) = final_params_bits(1, 7);
        for threads in [2, 3, 4] {
            let (pt, lt) = final_params_bits(threads, 7);
            assert_eq!(p1, pt, "params diverged at {threads} threads");
            assert_eq!(l1, lt, "losses diverged at {threads} threads");
        }
    }

    #[test]
    fn thread_invariance_holds_for_every_shard_count() {
        // grad_shards is part of the numerical recipe (it fixes the
        // reduction tree); train_threads must be irrelevant at *every*
        // shard count, including shards that don't divide the batch.
        let exs = cycle_examples(24, 5);
        let run = |threads: usize, shards: usize| {
            let model = NoisyBigram::new(5, 3);
            let trainer = ParallelTrainer::new(TrainConfig {
                grad_shards: shards,
                ..cfg(threads)
            });
            trainer.fit(&model, || NoisyBigram::new(5, 3), &exs, &exs);
            export_params(&model.parameters())
        };
        for shards in [1, 3, 8] {
            let base = run(1, shards);
            assert_eq!(base, run(4, shards), "threads changed the result at {shards} shards");
        }
    }

    #[test]
    fn empty_sessions_are_skipped_without_stepping() {
        let mut exs = cycle_examples(6, 3);
        for ex in &mut exs {
            ex.session.events.clear();
        }
        let model = NoisyBigram::new(3, 1);
        let before = export_params(&model.parameters());
        let trainer = ParallelTrainer::new(cfg(2));
        let report = trainer.fit(&model, || NoisyBigram::new(3, 1), &exs, &[]);
        assert_eq!(before, export_params(&model.parameters()));
        assert_eq!(report.epochs.len(), 3);
        assert!(report.epochs[0].train_loss == 0.0);
    }

    #[test]
    fn resume_matches_uninterrupted_run_across_thread_counts() {
        let exs = cycle_examples(24, 5);

        // Uninterrupted 4-epoch run at 1 thread.
        let full = NoisyBigram::new(5, 9);
        let full_cfg = TrainConfig { epochs: 4, ..cfg(1) };
        let (full_report, _) =
            ParallelTrainer::new(full_cfg).fit_from(&full, || NoisyBigram::new(5, 9), &exs, &exs, None);

        // 2 epochs at 3 threads, then resume for 4 total at 2 threads.
        let part = NoisyBigram::new(5, 9);
        let part_cfg = TrainConfig { epochs: 2, ..cfg(3) };
        let (_, state) =
            ParallelTrainer::new(part_cfg).fit_from(&part, || NoisyBigram::new(5, 9), &exs, &exs, None);
        assert_eq!(state.next_epoch, 2);
        let resumed_cfg = TrainConfig { epochs: 4, ..cfg(2) };
        let (resumed_report, _) = ParallelTrainer::new(resumed_cfg).fit_from(
            &part,
            || NoisyBigram::new(5, 9),
            &exs,
            &exs,
            Some(state),
        );

        assert_eq!(
            export_params(&full.parameters())
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            export_params(&part.parameters())
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            "resumed parameters differ from the uninterrupted run"
        );
        assert_eq!(full_report.epochs.len(), resumed_report.epochs.len());
        for (a, b) in full_report.epochs.iter().zip(&resumed_report.epochs) {
            assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
            assert_eq!(a.val_loss.to_bits(), b.val_loss.to_bits());
        }
    }

    #[test]
    fn early_stopped_state_resumes_as_a_no_op() {
        let exs = make_examples(&[(0, 1), (0, 2), (0, 1), (0, 2)]);
        let model = NoisyBigram::new(3, 2);
        let trainer = ParallelTrainer::new(TrainConfig {
            epochs: 40,
            batch_size: 2,
            lr: 0.5,
            patience: Some(1),
            train_threads: 2,
            grad_shards: 2,
            ..Default::default()
        });
        let (report, state) = trainer.fit_from(&model, || NoisyBigram::new(3, 2), &exs, &exs, None);
        assert!(report.early_stopped, "stagnating run never early-stopped");
        let before = export_params(&model.parameters());
        let (report2, _) =
            trainer.fit_from(&model, || NoisyBigram::new(3, 2), &exs, &exs, Some(state));
        assert!(report2.early_stopped);
        assert_eq!(report2.epochs.len(), report.epochs.len());
        assert_eq!(before, export_params(&model.parameters()));
    }

    #[test]
    fn split_into_shards_is_contiguous_and_balanced() {
        let chunk: Vec<(usize, u64)> = (0..10).map(|i| (i, i as u64)).collect();
        let shards = split_into_shards(&chunk, 4);
        assert_eq!(shards.len(), 4);
        let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        let flat: Vec<(usize, u64)> = shards.into_iter().flatten().collect();
        assert_eq!(flat, chunk, "shards must partition the chunk in order");
        // never more shards than examples; empty chunks produce no shards
        assert_eq!(split_into_shards(&chunk[..2], 4).len(), 2);
        assert!(split_into_shards(&[], 4).is_empty());
    }

    #[test]
    fn derived_seeds_are_distinct_across_streams_and_positions() {
        let mut seen = std::collections::HashSet::new();
        for stream in [STREAM_SHUFFLE, STREAM_DROPOUT] {
            for a in 0..8u64 {
                for b in 0..32u64 {
                    assert!(
                        seen.insert(derive_seed(42, stream, a, b)),
                        "seed collision at stream={stream:x} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn graph_validator_runs_on_fresh_parallel_fits() {
        let exs = cycle_examples(12, 3);
        let model = NoisyBigram::new(3, 4);
        let trainer = ParallelTrainer::new(cfg(2));
        let report = trainer.fit(&model, || NoisyBigram::new(3, 4), &exs, &exs);
        // healthy model: validation ran and found nothing
        assert!(report.graph_diagnostics.is_empty());
    }
}
