//! Training hyper-parameters.

/// Hyper-parameters of the shared training loop.
///
/// Defaults follow the paper's setup scaled to CPU: Adam, the paper's grid
/// midpoints for learning rate and dropout, gradient clipping, and the
/// session-length cap used by the preprocessing.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Maximum training epochs (paper: 50; CPU experiments use fewer).
    pub epochs: usize,
    /// Mini-batch size (paper: 512; CPU experiments use smaller).
    pub batch_size: usize,
    /// Adam learning rate (paper grid: 0.001–0.01).
    pub lr: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Global gradient-norm clip; `None` disables clipping.
    pub clip_norm: Option<f32>,
    /// Sessions longer than this many micro-behaviors are truncated to their
    /// most recent events.
    pub max_session_len: usize,
    /// RNG seed controlling shuffling and dropout.
    pub seed: u64,
    /// Stop after this many epochs without validation improvement;
    /// `None` disables early stopping.
    pub patience: Option<usize>,
    /// Fraction of the validation set used for the early-stopping signal
    /// (subsampling keeps epochs cheap); in `(0, 1]`.
    pub val_fraction: f32,
    /// Run the autograd graph validator on the first batch's loss graph and
    /// record its findings in [`crate::TrainReport::graph_diagnostics`]
    /// (detached parameters, shape inconsistencies, numerical hazards).
    /// Costs one graph traversal per `fit`; on by default.
    pub validate_graph: bool,
    /// Worker threads used by [`crate::ParallelTrainer`]; the sequential
    /// [`crate::Trainer`] ignores it. Any value produces bitwise identical
    /// results at the same seed — threads only change *who* computes each
    /// gradient shard, never *what* is computed (see `DESIGN.md` §10).
    pub train_threads: usize,
    /// Gradient shards per mini-batch in [`crate::ParallelTrainer`]. This is
    /// the unit of work distribution *and* the fixed shape of the
    /// deterministic reduction, so it is deliberately independent of
    /// `train_threads`; throughput scales with
    /// `min(train_threads, grad_shards)`.
    pub grad_shards: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            batch_size: 64,
            lr: 3e-3,
            weight_decay: 0.0,
            clip_norm: Some(5.0),
            max_session_len: 40,
            seed: 42,
            patience: Some(2),
            val_fraction: 1.0,
            validate_graph: true,
            train_threads: 1,
            grad_shards: 8,
        }
    }
}

impl TrainConfig {
    /// A fast configuration for unit tests and examples.
    pub fn fast() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 32,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = TrainConfig::default();
        assert!(c.epochs > 0);
        assert!(c.batch_size > 0);
        assert!(c.lr > 0.0);
        assert!((0.0..=1.0).contains(&c.val_fraction));
        assert!(c.train_threads >= 1);
        assert!(c.grad_shards >= 1);
    }
}
