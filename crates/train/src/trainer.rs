//! The shared mini-batch training loop.

use embsr_sessions::{Example, Session};
use embsr_tensor::{clip_grad_norm, Adam, AdamConfig, Optimizer, Rng, Tensor};

use crate::config::TrainConfig;
use crate::recommender::SessionModel;

/// Per-epoch statistics.
#[derive(Clone, Debug)]
pub struct EpochStats {
    pub epoch: usize,
    pub train_loss: f32,
    pub val_loss: f32,
    /// Wall-clock seconds the epoch took (batches + validation pass).
    pub duration_s: f64,
    /// Pre-clip global gradient norm of the epoch's last batch; NaN when
    /// gradient clipping is disabled (the norm is a by-product of clipping).
    pub grad_norm: f32,
    /// Learning rate the epoch ran at.
    pub lr: f32,
}

/// Outcome of a training run.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    pub epochs: Vec<EpochStats>,
    /// Epoch index with the best validation loss.
    pub best_epoch: usize,
    /// True when training ended before `cfg.epochs` due to patience.
    pub early_stopped: bool,
    /// Findings of the autograd graph validator on the first batch's loss
    /// graph (empty when the graph is clean or validation is disabled via
    /// [`TrainConfig::validate_graph`]). Each entry is the rendered form of
    /// an [`embsr_tensor::verify::Diagnostic`].
    pub graph_diagnostics: Vec<String>,
}

impl TrainReport {
    /// Final training loss (NaN when no epochs ran).
    pub fn final_train_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::NAN, |e| e.train_loss)
    }
}

/// Keeps the most recent `max_len` micro-behaviors of a session.
///
/// Long sessions dominate runtime quadratically through attention; the paper
/// caps session length in preprocessing, we cap at training time with the
/// same effect.
pub fn truncate_session(session: &Session, max_len: usize) -> Session {
    if session.len() <= max_len {
        return session.clone();
    }
    Session {
        id: session.id,
        events: session.events[session.len() - max_len..].to_vec(),
    }
}

/// Per-epoch wall-clock attribution across the batch-loop phases
/// (forward, backward, gradient reduce, optimizer step). Accumulation is
/// timing-only — the batch math is identical whether or not metrics are on —
/// and [`PhaseTimes::observe`] records one histogram sample per phase per
/// epoch (`train.phase.*_us`) plus a field-carrying debug event.
#[derive(Default)]
pub(crate) struct PhaseTimes {
    pub forward_us: u64,
    pub backward_us: u64,
    pub reduce_us: u64,
    pub optimizer_us: u64,
}

impl PhaseTimes {
    pub(crate) fn observe(&self, epoch: usize) {
        if !embsr_obs::metrics::enabled() {
            return;
        }
        embsr_obs::metrics::histogram("train.phase.forward_us").record(self.forward_us);
        embsr_obs::metrics::histogram("train.phase.backward_us").record(self.backward_us);
        embsr_obs::metrics::histogram("train.phase.reduce_us").record(self.reduce_us);
        embsr_obs::metrics::histogram("train.phase.optimizer_us").record(self.optimizer_us);
        if embsr_obs::log_enabled(embsr_obs::Level::Debug) {
            embsr_obs::dispatch(
                embsr_obs::Level::Debug,
                "embsr_train",
                format_args!("epoch {epoch} phase attribution"),
                &[
                    ("forward_us", self.forward_us as f64),
                    ("backward_us", self.backward_us as f64),
                    ("reduce_us", self.reduce_us as f64),
                    ("optimizer_us", self.optimizer_us as f64),
                ],
            );
        }
    }
}

/// Mini-batch Adam trainer for any [`SessionModel`].
pub struct Trainer {
    cfg: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg }
    }

    /// Trains `model` in place and returns per-epoch statistics.
    ///
    /// Sessions shorter than one macro item are skipped defensively (the
    /// dataset pipeline already filters them).
    pub fn fit<M: SessionModel>(&self, model: &M, train: &[Example], val: &[Example]) -> TrainReport {
        let cfg = &self.cfg;
        let _fit_span = embsr_obs::span("embsr_train", "fit");
        embsr_obs::info!(
            target: "embsr_train",
            "fit start: model={} train={} val={} epochs={} lr={}",
            model.name(),
            train.len(),
            val.len(),
            cfg.epochs,
            cfg.lr
        );
        let params = model.parameters();
        let mut opt = Adam::new(
            params.clone(),
            AdamConfig {
                lr: cfg.lr,
                weight_decay: cfg.weight_decay,
                ..Default::default()
            },
        );
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..train.len()).collect();

        // Optionally subsample validation for the early-stopping signal.
        let val_take = ((val.len() as f32 * cfg.val_fraction).ceil() as usize).min(val.len());
        let val_slice = &val[..val_take];

        let mut report = TrainReport::default();
        let mut best_val = f32::INFINITY;
        let mut since_best = 0usize;
        // Snapshot of the best-validation parameters; restored at the end so
        // `fit` returns the checkpoint the paper's protocol would select.
        let mut best_weights: Option<Vec<Vec<f32>>> = None;

        for epoch in 0..cfg.epochs {
            let epoch_span = embsr_obs::span("embsr_train", "epoch");
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f64;
            let mut seen = 0usize;
            let mut last_grad_norm = f32::NAN;
            // One stopwatch per batch with cumulative marks: the phases are
            // attributed by subtraction, never by restarting clocks inside
            // the hot loop. Timing only — identical math when metrics are off.
            let timing = embsr_obs::metrics::enabled();
            let mut phases = PhaseTimes::default();
            for chunk in order.chunks(cfg.batch_size) {
                let _batch_span =
                    embsr_obs::span("embsr_train", "batch").with_close_level(embsr_obs::Level::Trace);
                let watch = timing.then(embsr_obs::Stopwatch::start);
                opt.zero_grad();
                let mut batch_losses: Vec<Tensor> = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let ex = &train[i];
                    if ex.session.is_empty() {
                        continue;
                    }
                    let sess = truncate_session(&ex.session, cfg.max_session_len);
                    let logits = model.logits(&sess, true, &mut rng);
                    batch_losses.push(logits.cross_entropy_single(ex.target as usize));
                }
                let forward_mark = watch.map_or(0, |w| w.elapsed_us());
                let n = batch_losses.len() as f32;
                let Some(batch_sum) = batch_losses.into_iter().reduce(|a, b| a.add(&b)) else {
                    continue; // every session in the chunk was empty
                };
                let loss = batch_sum.mul_scalar(1.0 / n);
                if cfg.validate_graph && epoch == 0 && seen == 0 {
                    report.graph_diagnostics = validate_loss_graph(&loss, &params);
                }
                epoch_loss += loss.item() as f64 * n as f64;
                seen += n as usize;
                let reduce_mark = watch.map_or(0, |w| w.elapsed_us());
                loss.backward();
                let backward_mark = watch.map_or(0, |w| w.elapsed_us());
                if let Some(max) = cfg.clip_norm {
                    last_grad_norm = clip_grad_norm(&params, max);
                }
                opt.step();
                if let Some(w) = watch {
                    phases.forward_us += forward_mark;
                    phases.reduce_us += reduce_mark - forward_mark;
                    phases.backward_us += backward_mark - reduce_mark;
                    phases.optimizer_us += w.elapsed_us() - backward_mark;
                }
                if embsr_obs::metrics::enabled() {
                    embsr_obs::metrics::counter("train.batches").inc();
                    embsr_obs::metrics::counter("train.examples_seen").add(n as u64);
                }
            }
            phases.observe(epoch);
            let train_loss = (epoch_loss / seen.max(1) as f64) as f32;
            let val_loss = self.eval_loss(model, val_slice);
            let duration_s = epoch_span.elapsed().as_secs_f64();
            drop(epoch_span);
            embsr_obs::debug!(
                target: "embsr_train",
                "epoch {epoch}: train_loss={train_loss:.4} val_loss={val_loss:.4} \
                 grad_norm={last_grad_norm:.3} duration_s={duration_s:.3}"
            );
            report.epochs.push(EpochStats {
                epoch,
                train_loss,
                val_loss,
                duration_s,
                grad_norm: last_grad_norm,
                lr: cfg.lr,
            });
            if val_loss < best_val || val_loss.is_nan() {
                best_val = val_loss;
                report.best_epoch = epoch;
                since_best = 0;
                if !val_loss.is_nan() {
                    best_weights = Some(params.iter().map(Tensor::to_vec).collect());
                }
            } else {
                since_best += 1;
                if let Some(p) = cfg.patience {
                    if since_best > p {
                        report.early_stopped = true;
                        embsr_obs::info!(
                            target: "embsr_train",
                            "early stop at epoch {epoch}: no val improvement for {since_best} epochs \
                             (best epoch {})",
                            report.best_epoch
                        );
                        break;
                    }
                }
            }
        }
        // Restore the best-validation checkpoint (when validation data was
        // available and at least one epoch improved on it).
        if let Some(snapshot) = best_weights {
            for (p, w) in params.iter().zip(&snapshot) {
                p.set_data(w);
            }
        }
        report
    }

    /// Mean cross-entropy over a set of examples without building graphs.
    ///
    /// Runs on the inference path ([`SessionModel::logits_infer`] under
    /// [`embsr_tensor::inference_mode`]): dropout is off, no RNG is
    /// consumed, and no autograd tape is recorded.
    pub fn eval_loss<M: SessionModel>(&self, model: &M, examples: &[Example]) -> f32 {
        if examples.is_empty() {
            return f32::NAN;
        }
        embsr_tensor::inference_mode(|| {
            let mut total = 0.0f64;
            let mut n = 0usize;
            for ex in examples {
                if ex.session.is_empty() {
                    continue;
                }
                let sess = truncate_session(&ex.session, self.cfg.max_session_len);
                let logits = model.logits_infer(&sess);
                total += logits.cross_entropy_single(ex.target as usize).item() as f64;
                n += 1;
            }
            (total / n.max(1) as f64) as f32
        })
    }
}

/// Runs the graph validator on a loss graph and renders its findings.
/// Shared by [`Trainer`] and [`crate::ParallelTrainer`] (both validate the
/// first batch of a fresh run). Errors (detached parameters, shape
/// inconsistencies) are logged at warn level so a misconfigured model is
/// loud even when the caller never inspects the report.
pub(crate) fn validate_loss_graph(loss: &Tensor, params: &[Tensor]) -> Vec<String> {
    let report = embsr_tensor::verify::validate_training_graph(loss, params, &[]);
    embsr_obs::debug!(
        target: "embsr_train",
        "graph validation: {} nodes, {} error(s), {} warning(s)",
        report.nodes_visited,
        report.error_count(),
        report.warning_count()
    );
    for d in &report.diagnostics {
        if d.severity == embsr_tensor::verify::Severity::Error {
            embsr_obs::warn!(target: "embsr_train", "graph validation: {d}");
        }
    }
    report.diagnostics.iter().map(|d| d.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;
    use embsr_tensor::uniform_init;

    /// A minimal trainable model: per-item bias plus a bigram table row
    /// selected by the last item. Enough structure to verify that the loop
    /// actually reduces the loss.
    struct Bigram {
        table: Tensor, // [V, V]
    }

    impl Bigram {
        fn new(v: usize, rng: &mut Rng) -> Self {
            Bigram {
                table: uniform_init(&[v, v], rng),
            }
        }
    }

    impl SessionModel for Bigram {
        fn name(&self) -> &str {
            "Bigram"
        }
        fn num_items(&self) -> usize {
            self.table.rows()
        }
        fn parameters(&self) -> Vec<Tensor> {
            vec![self.table.clone()]
        }
        fn logits(&self, s: &Session, _t: bool, _r: &mut Rng) -> Tensor {
            let last = s.events.last().expect("non-empty").item as usize;
            self.table.row(last)
        }
    }

    fn make_examples(pairs: &[(u32, u32)]) -> Vec<Example> {
        pairs
            .iter()
            .enumerate()
            .map(|(i, &(from, to))| Example {
                session: Session {
                    id: i as u64,
                    events: vec![MicroBehavior::new(from, 0)],
                },
                target: to,
            })
            .collect()
    }

    #[test]
    fn loss_decreases_on_learnable_data() {
        // deterministic transitions 0->1, 1->2, 2->0
        let exs = make_examples(&[(0, 1), (1, 2), (2, 0), (0, 1), (1, 2), (2, 0)]);
        let model = Bigram::new(3, &mut Rng::seed_from_u64(0));
        let trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 4,
            lr: 0.1,
            patience: None,
            ..Default::default()
        });
        let report = trainer.fit(&model, &exs, &exs);
        let first = report.epochs.first().unwrap().train_loss;
        let last = report.final_train_loss();
        assert!(last < first * 0.5, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn early_stopping_triggers_on_stagnation() {
        // random targets can't be learned from a 1-item vocabulary signal
        let exs = make_examples(&[(0, 1), (0, 2), (0, 3), (0, 1), (0, 2), (0, 3)]);
        let model = Bigram::new(4, &mut Rng::seed_from_u64(1));
        let trainer = Trainer::new(TrainConfig {
            epochs: 50,
            batch_size: 2,
            lr: 0.5,
            patience: Some(1),
            ..Default::default()
        });
        let report = trainer.fit(&model, &exs, &exs);
        assert!(report.epochs.len() < 50, "never early-stopped");
    }

    #[test]
    fn truncate_keeps_most_recent() {
        let s = Session::from_pairs(0, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let t = truncate_session(&s, 2);
        assert_eq!(t.items().collect::<Vec<_>>(), vec![3, 4]);
        // below cap: untouched
        assert_eq!(truncate_session(&s, 10).len(), 4);
    }

    /// A Bigram with an extra parameter its forward pass never touches —
    /// the misconfiguration the graph validator exists to catch.
    struct DetachedBigram {
        inner: Bigram,
        orphan: Tensor,
    }

    impl SessionModel for DetachedBigram {
        fn name(&self) -> &str {
            "DetachedBigram"
        }
        fn num_items(&self) -> usize {
            self.inner.num_items()
        }
        fn parameters(&self) -> Vec<Tensor> {
            let mut p = self.inner.parameters();
            p.push(self.orphan.clone());
            p
        }
        fn logits(&self, s: &Session, t: bool, r: &mut Rng) -> Tensor {
            self.inner.logits(s, t, r)
        }
    }

    #[test]
    fn fit_flags_detached_parameter_in_report() {
        let exs = make_examples(&[(0, 1), (1, 2), (2, 0)]);
        let model = DetachedBigram {
            inner: Bigram::new(3, &mut Rng::seed_from_u64(3)),
            orphan: Tensor::zeros(&[4, 4]).requires_grad(),
        };
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            ..TrainConfig::fast()
        });
        let report = trainer.fit(&model, &exs, &exs);
        let detached: Vec<&String> = report
            .graph_diagnostics
            .iter()
            .filter(|d| d.contains("detached-param"))
            .collect();
        assert_eq!(detached.len(), 1, "{:?}", report.graph_diagnostics);
    }

    #[test]
    fn fit_reports_clean_graph_for_healthy_model() {
        let exs = make_examples(&[(0, 1), (1, 2), (2, 0)]);
        let model = Bigram::new(3, &mut Rng::seed_from_u64(4));
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            ..TrainConfig::fast()
        });
        let report = trainer.fit(&model, &exs, &exs);
        assert!(
            report.graph_diagnostics.is_empty(),
            "{:?}",
            report.graph_diagnostics
        );
    }

    #[test]
    fn graph_validation_can_be_disabled() {
        let exs = make_examples(&[(0, 1)]);
        let model = DetachedBigram {
            inner: Bigram::new(2, &mut Rng::seed_from_u64(5)),
            orphan: Tensor::zeros(&[2]).requires_grad(),
        };
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            validate_graph: false,
            ..TrainConfig::fast()
        });
        let report = trainer.fit(&model, &exs, &exs);
        assert!(report.graph_diagnostics.is_empty());
    }

    #[test]
    fn eval_loss_handles_empty_sets() {
        let model = Bigram::new(2, &mut Rng::seed_from_u64(2));
        let trainer = Trainer::new(TrainConfig::fast());
        assert!(trainer.eval_loss(&model, &[]).is_nan());
    }
}
