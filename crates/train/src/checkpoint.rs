//! Parameter checkpointing.
//!
//! Saves and restores the trainable parameters of any [`SessionModel`] (or
//! any explicit tensor list) with a small self-describing binary format, so
//! trained models survive process restarts without pulling in a
//! serialization framework:
//!
//! ```text
//! magic "EMBSRCKP" | u32 version | u32 tensor count |
//!   per tensor: u32 rank | u64 dims… | f32 data…
//! ```
//!
//! Tensors are matched **by position**, so the loading model must be built
//! with the same configuration as the saving one (the usual contract for
//! weight files).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use embsr_tensor::Tensor;

use crate::recommender::SessionModel;

const MAGIC: &[u8; 8] = b"EMBSRCKP";
const VERSION: u32 = 1;

/// Writes the parameters of `model` to `path`.
pub fn save_model<M: SessionModel>(model: &M, path: &Path) -> io::Result<()> {
    save_tensors(&model.parameters(), path)
}

/// Restores the parameters of `model` from `path`.
///
/// # Errors
/// Fails when the file is malformed or the parameter shapes do not match
/// the model's.
pub fn load_model<M: SessionModel>(model: &M, path: &Path) -> io::Result<()> {
    load_tensors(&model.parameters(), path)
}

/// Writes a list of tensors to `path`.
pub fn save_tensors(tensors: &[Tensor], path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(tensors.len() as u32).to_le_bytes())?;
    for t in tensors {
        let dims = t.shape().dims();
        w.write_all(&(dims.len() as u32).to_le_bytes())?;
        for &d in dims {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for v in t.data().iter() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads tensors from `path` into the given (already allocated) tensors.
pub fn load_tensors(tensors: &[Tensor], path: &Path) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an EMBSR checkpoint (bad magic)"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(bad(&format!("unsupported checkpoint version {version}")));
    }
    let count = read_u32(&mut r)? as usize;
    if count != tensors.len() {
        return Err(bad(&format!(
            "checkpoint has {count} tensors, model has {}",
            tensors.len()
        )));
    }
    for (i, t) in tensors.iter().enumerate() {
        let rank = read_u32(&mut r)? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(&mut r)? as usize);
        }
        if dims != t.shape().dims() {
            return Err(bad(&format!(
                "tensor {i}: checkpoint shape {dims:?} vs model shape {:?}",
                t.shape().dims()
            )));
        }
        let n: usize = dims.iter().product();
        let mut data = vec![0.0f32; n];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        t.set_data(&data);
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("embsr_ckpt_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_values_and_shapes() {
        let a = Tensor::from_vec(vec![1.5, -2.5, 3.0, 0.0], &[2, 2]).requires_grad();
        let b = Tensor::from_vec(vec![9.0; 3], &[3]).requires_grad();
        let path = tmp("roundtrip");
        save_tensors(&[a.clone(), b.clone()], &path).unwrap();

        let a2 = Tensor::zeros(&[2, 2]).requires_grad();
        let b2 = Tensor::zeros(&[3]).requires_grad();
        load_tensors(&[a2.clone(), b2.clone()], &path).unwrap();
        assert_eq!(a2.to_vec(), a.to_vec());
        assert_eq!(b2.to_vec(), b.to_vec());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Tensor::ones(&[2, 2]);
        let path = tmp("mismatch");
        save_tensors(&[a], &path).unwrap();
        let wrong = Tensor::zeros(&[4]);
        let err = load_tensors(&[wrong], &path).unwrap_err();
        assert!(err.to_string().contains("shape"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let a = Tensor::ones(&[1]);
        let path = tmp("count");
        save_tensors(&[a], &path).unwrap();
        let err = load_tensors(&[Tensor::zeros(&[1]), Tensor::zeros(&[1])], &path).unwrap_err();
        assert!(err.to_string().contains("tensors"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        let err = load_tensors(&[Tensor::zeros(&[1])], &path).unwrap_err();
        assert!(err.to_string().contains("magic"));
        std::fs::remove_file(path).ok();
    }
}
