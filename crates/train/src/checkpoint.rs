//! Parameter checkpointing.
//!
//! Saves and restores the trainable parameters of any [`SessionModel`] (or
//! any explicit tensor list) with a small self-describing binary format, so
//! trained models survive process restarts without pulling in a
//! serialization framework:
//!
//! ```text
//! magic "EMBSRCKP" | u32 version | u32 tensor count |
//!   per tensor: u32 rank | u64 dims… | f32 data…
//! ```
//!
//! Tensors are matched **by position**, so the loading model must be built
//! with the same configuration as the saving one (the usual contract for
//! weight files).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use embsr_tensor::{AdamParamState, Tensor};

use crate::parallel::TrainState;
use crate::recommender::SessionModel;
use crate::trainer::EpochStats;

const MAGIC: &[u8; 8] = b"EMBSRCKP";
const VERSION: u32 = 1;

const STATE_MAGIC: &[u8; 8] = b"EMBSRTRS";
const STATE_VERSION: u32 = 1;

/// Writes the parameters of `model` to `path`.
pub fn save_model<M: SessionModel>(model: &M, path: &Path) -> io::Result<()> {
    save_tensors(&model.parameters(), path)
}

/// Restores the parameters of `model` from `path`.
///
/// # Errors
/// Fails when the file is malformed or the parameter shapes do not match
/// the model's.
pub fn load_model<M: SessionModel>(model: &M, path: &Path) -> io::Result<()> {
    load_tensors(&model.parameters(), path)
}

/// Writes a list of tensors to `path`.
pub fn save_tensors(tensors: &[Tensor], path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(tensors.len() as u32).to_le_bytes())?;
    for t in tensors {
        let dims = t.shape().dims();
        w.write_all(&(dims.len() as u32).to_le_bytes())?;
        for &d in dims {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for v in t.data().iter() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads tensors from `path` into the given (already allocated) tensors.
pub fn load_tensors(tensors: &[Tensor], path: &Path) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an EMBSR checkpoint (bad magic)"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(bad(&format!("unsupported checkpoint version {version}")));
    }
    let count = read_u32(&mut r)? as usize;
    if count != tensors.len() {
        return Err(bad(&format!(
            "checkpoint has {count} tensors, model has {}",
            tensors.len()
        )));
    }
    for (i, t) in tensors.iter().enumerate() {
        let rank = read_u32(&mut r)? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(&mut r)? as usize);
        }
        if dims != t.shape().dims() {
            return Err(bad(&format!(
                "tensor {i}: checkpoint shape {dims:?} vs model shape {:?}",
                t.shape().dims()
            )));
        }
        let n: usize = dims.iter().product();
        let mut data = vec![0.0f32; n];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        t.set_data(&data);
    }
    Ok(())
}

/// Writes a resumable [`TrainState`] to `path`:
///
/// ```text
/// magic "EMBSRTRS" | u32 version | u64 next_epoch | u64 adam_t |
/// f32 best_val | u64 since_best | u64 best_epoch | u8 early_stopped |
/// params: u32 count, per vec (u64 len, f32 data…) |
/// adam m: same framing | adam v: same framing |
/// u8 has_best_weights, best weights: same framing |
/// epochs: u64 count, per epoch (u64 epoch, f32 train_loss, f32 val_loss,
///   f64 duration_s, f32 grad_norm, f32 lr)
/// ```
pub fn save_train_state(state: &TrainState, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(STATE_MAGIC)?;
    w.write_all(&STATE_VERSION.to_le_bytes())?;
    w.write_all(&(state.next_epoch as u64).to_le_bytes())?;
    w.write_all(&state.adam_t.to_le_bytes())?;
    w.write_all(&state.best_val.to_le_bytes())?;
    w.write_all(&(state.since_best as u64).to_le_bytes())?;
    w.write_all(&(state.best_epoch as u64).to_le_bytes())?;
    w.write_all(&[u8::from(state.early_stopped)])?;
    write_vecs(&mut w, &state.params)?;
    let (ms, vs): (Vec<&Vec<f32>>, Vec<&Vec<f32>>) =
        state.adam_moments.iter().map(|st| (&st.m, &st.v)).unzip();
    write_vec_refs(&mut w, &ms)?;
    write_vec_refs(&mut w, &vs)?;
    match &state.best_weights {
        Some(best) => {
            w.write_all(&[1u8])?;
            write_vecs(&mut w, best)?;
        }
        None => w.write_all(&[0u8])?,
    }
    w.write_all(&(state.epochs.len() as u64).to_le_bytes())?;
    for e in &state.epochs {
        w.write_all(&(e.epoch as u64).to_le_bytes())?;
        w.write_all(&e.train_loss.to_le_bytes())?;
        w.write_all(&e.val_loss.to_le_bytes())?;
        w.write_all(&e.duration_s.to_le_bytes())?;
        w.write_all(&e.grad_norm.to_le_bytes())?;
        w.write_all(&e.lr.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a [`TrainState`] written by [`save_train_state`].
///
/// # Errors
/// Fails when the file is malformed, truncated, or internally inconsistent
/// (Adam moment counts must match the parameter count).
pub fn load_train_state(path: &Path) -> io::Result<TrainState> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != STATE_MAGIC {
        return Err(bad("not an EMBSR train state (bad magic)"));
    }
    let version = read_u32(&mut r)?;
    if version != STATE_VERSION {
        return Err(bad(&format!("unsupported train-state version {version}")));
    }
    let next_epoch = read_u64(&mut r)? as usize;
    let adam_t = read_u64(&mut r)?;
    let best_val = read_f32(&mut r)?;
    let since_best = read_u64(&mut r)? as usize;
    let best_epoch = read_u64(&mut r)? as usize;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let early_stopped = flag[0] != 0;
    let params = read_vecs(&mut r)?;
    let ms = read_vecs(&mut r)?;
    let vs = read_vecs(&mut r)?;
    if ms.len() != params.len() || vs.len() != params.len() {
        return Err(bad(&format!(
            "Adam moment counts {}/{} vs {} parameters",
            ms.len(),
            vs.len(),
            params.len()
        )));
    }
    let adam_moments = ms
        .into_iter()
        .zip(vs)
        .map(|(m, v)| AdamParamState { m, v })
        .collect();
    r.read_exact(&mut flag)?;
    let best_weights = if flag[0] != 0 {
        Some(read_vecs(&mut r)?)
    } else {
        None
    };
    let n_epochs = read_u64(&mut r)? as usize;
    let mut epochs = Vec::with_capacity(n_epochs.min(1 << 20));
    for _ in 0..n_epochs {
        epochs.push(EpochStats {
            epoch: read_u64(&mut r)? as usize,
            train_loss: read_f32(&mut r)?,
            val_loss: read_f32(&mut r)?,
            duration_s: read_f64(&mut r)?,
            grad_norm: read_f32(&mut r)?,
            lr: read_f32(&mut r)?,
        });
    }
    Ok(TrainState {
        next_epoch,
        params,
        adam_t,
        adam_moments,
        best_val,
        since_best,
        best_epoch,
        early_stopped,
        best_weights,
        epochs,
    })
}

fn write_vecs(w: &mut impl Write, vecs: &[Vec<f32>]) -> io::Result<()> {
    let refs: Vec<&Vec<f32>> = vecs.iter().collect();
    write_vec_refs(w, &refs)
}

fn write_vec_refs(w: &mut impl Write, vecs: &[&Vec<f32>]) -> io::Result<()> {
    w.write_all(&(vecs.len() as u32).to_le_bytes())?;
    for v in vecs {
        w.write_all(&(v.len() as u64).to_le_bytes())?;
        for x in v.iter() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_vecs(r: &mut impl Read) -> io::Result<Vec<Vec<f32>>> {
    let count = read_u32(r)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let len = read_u64(r)? as usize;
        let mut v = vec![0.0f32; len.min(1 << 28)];
        if len > (1 << 28) {
            return Err(bad("train-state vector length is implausibly large"));
        }
        let mut buf = [0u8; 4];
        for x in &mut v {
            r.read_exact(&mut buf)?;
            *x = f32::from_le_bytes(buf);
        }
        out.push(v);
    }
    Ok(out)
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("embsr_ckpt_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_values_and_shapes() {
        let a = Tensor::from_vec(vec![1.5, -2.5, 3.0, 0.0], &[2, 2]).requires_grad();
        let b = Tensor::from_vec(vec![9.0; 3], &[3]).requires_grad();
        let path = tmp("roundtrip");
        save_tensors(&[a.clone(), b.clone()], &path).unwrap();

        let a2 = Tensor::zeros(&[2, 2]).requires_grad();
        let b2 = Tensor::zeros(&[3]).requires_grad();
        load_tensors(&[a2.clone(), b2.clone()], &path).unwrap();
        assert_eq!(a2.to_vec(), a.to_vec());
        assert_eq!(b2.to_vec(), b.to_vec());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Tensor::ones(&[2, 2]);
        let path = tmp("mismatch");
        save_tensors(&[a], &path).unwrap();
        let wrong = Tensor::zeros(&[4]);
        let err = load_tensors(&[wrong], &path).unwrap_err();
        assert!(err.to_string().contains("shape"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let a = Tensor::ones(&[1]);
        let path = tmp("count");
        save_tensors(&[a], &path).unwrap();
        let err = load_tensors(&[Tensor::zeros(&[1]), Tensor::zeros(&[1])], &path).unwrap_err();
        assert!(err.to_string().contains("tensors"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        let err = load_tensors(&[Tensor::zeros(&[1])], &path).unwrap_err();
        assert!(err.to_string().contains("magic"));
        std::fs::remove_file(path).ok();
    }

    fn sample_state() -> TrainState {
        TrainState {
            next_epoch: 3,
            params: vec![vec![1.0, -2.5, f32::MIN_POSITIVE], vec![0.0; 2]],
            adam_t: 17,
            adam_moments: vec![
                AdamParamState {
                    m: vec![0.1, 0.2, 0.3],
                    v: vec![0.4, 0.5, 0.6],
                },
                AdamParamState {
                    m: vec![0.7, 0.8],
                    v: vec![0.9, 1.0],
                },
            ],
            best_val: 0.75,
            since_best: 1,
            best_epoch: 2,
            early_stopped: false,
            best_weights: Some(vec![vec![9.0, 9.5, -9.0], vec![1.5, 2.5]]),
            epochs: vec![EpochStats {
                epoch: 0,
                train_loss: 1.25,
                val_loss: 1.5,
                duration_s: 0.125,
                grad_norm: f32::NAN,
                lr: 3e-3,
            }],
        }
    }

    #[test]
    fn train_state_roundtrip_is_bitwise_exact() {
        let state = sample_state();
        let path = tmp("train_state");
        save_train_state(&state, &path).unwrap();
        let loaded = load_train_state(&path).unwrap();
        assert_eq!(loaded.next_epoch, state.next_epoch);
        assert_eq!(loaded.adam_t, state.adam_t);
        assert_eq!(loaded.best_val.to_bits(), state.best_val.to_bits());
        assert_eq!(loaded.since_best, state.since_best);
        assert_eq!(loaded.best_epoch, state.best_epoch);
        assert_eq!(loaded.early_stopped, state.early_stopped);
        assert_eq!(loaded.params, state.params);
        assert_eq!(loaded.best_weights, state.best_weights);
        assert_eq!(loaded.adam_moments.len(), 2);
        for (a, b) in loaded.adam_moments.iter().zip(&state.adam_moments) {
            assert_eq!(a.m, b.m);
            assert_eq!(a.v, b.v);
        }
        assert_eq!(loaded.epochs.len(), 1);
        let (le, se) = (&loaded.epochs[0], &state.epochs[0]);
        assert_eq!(le.epoch, se.epoch);
        assert_eq!(le.train_loss.to_bits(), se.train_loss.to_bits());
        assert_eq!(le.val_loss.to_bits(), se.val_loss.to_bits());
        assert_eq!(le.duration_s.to_bits(), se.duration_s.to_bits());
        // NaN grad norm (clipping disabled) must survive the roundtrip
        assert!(le.grad_norm.is_nan());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn train_state_without_best_weights_roundtrips() {
        let state = TrainState {
            best_weights: None,
            epochs: Vec::new(),
            ..sample_state()
        };
        let path = tmp("train_state_nobest");
        save_train_state(&state, &path).unwrap();
        let loaded = load_train_state(&path).unwrap();
        assert_eq!(loaded.best_weights, None);
        assert!(loaded.epochs.is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn train_state_rejects_model_checkpoints() {
        let path = tmp("train_state_wrong_magic");
        save_tensors(&[Tensor::ones(&[1])], &path).unwrap();
        let err = load_train_state(&path).unwrap_err();
        assert!(err.to_string().contains("magic"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn train_state_rejects_inconsistent_moments() {
        // hand-corrupt: write a state whose m-count disagrees with params
        let mut state = sample_state();
        state.adam_moments.pop();
        let path = tmp("train_state_moments");
        save_train_state(&state, &path).unwrap();
        let err = load_train_state(&path).unwrap_err();
        assert!(err.to_string().contains("moment"), "{err}");
        std::fs::remove_file(path).ok();
    }
}
