//! # embsr-train
//!
//! Model-agnostic training machinery shared by EMBSR and every neural
//! baseline:
//!
//! * [`Recommender`] — the uniform interface the evaluation harness scores
//!   (non-neural methods like S-POP/SKNN implement it directly);
//! * [`SessionModel`] — a neural next-item model: parameters + per-session
//!   logits;
//! * [`Trainer`] / [`TrainConfig`] — mini-batch Adam training with gradient
//!   clipping, session truncation and validation-based early stopping,
//!   following the paper's protocol (Adam, batch training, ≤ 50 epochs,
//!   lr/dropout grid);
//! * [`ParallelTrainer`] — the data-parallel variant: per-batch gradient
//!   shards computed on thread-local model replicas and combined with a
//!   fixed-order tree reduction, bitwise invariant to the thread count.

mod checkpoint;
mod config;
mod parallel;
mod recommender;
mod trainer;

pub use checkpoint::{
    load_model, load_tensors, load_train_state, save_model, save_tensors, save_train_state,
};
pub use config::TrainConfig;
pub use parallel::{ParallelTrainer, TrainState};
pub use recommender::{NeuralRecommender, Recommender, SessionModel};
pub use trainer::{truncate_session, EpochStats, TrainReport, Trainer};
