//! The [`Recommender`] and [`SessionModel`] interfaces.

use embsr_sessions::{Example, Session};
use embsr_tensor::{Rng, Tensor};

/// Anything that can score the full item vocabulary for a session.
///
/// This is the single interface the evaluation harness consumes; both
/// neural models (via [`NeuralRecommender`]) and non-neural methods
/// (S-POP, SKNN, STAN) implement it.
pub trait Recommender {
    /// Human-readable model name as it appears in the paper's tables.
    fn name(&self) -> &str;

    /// Size of the item vocabulary `|V|`.
    fn num_items(&self) -> usize;

    /// Fits the model on training examples (validation examples are used
    /// for early stopping where applicable).
    fn fit(&mut self, train: &[Example], val: &[Example]);

    /// Scores for every item given the session prefix; higher is better.
    /// The returned vector has length `num_items()`.
    fn scores(&self, session: &Session) -> Vec<f32>;

    /// The training report of the most recent [`Recommender::fit`], when the
    /// model trains with the shared [`crate::Trainer`]. Non-neural methods
    /// keep the default `None`.
    fn train_report(&self) -> Option<&crate::TrainReport> {
        None
    }
}

/// A differentiable next-item model trained by the shared [`crate::Trainer`].
pub trait SessionModel {
    /// Model name.
    fn name(&self) -> &str;

    /// Item vocabulary size.
    fn num_items(&self) -> usize;

    /// All trainable parameters.
    fn parameters(&self) -> Vec<Tensor>;

    /// Logits `[|V|]` for the next item after `session`.
    ///
    /// `training` toggles dropout; `rng` drives it.
    fn logits(&self, session: &Session, training: bool, rng: &mut Rng) -> Tensor;
}

/// Adapter turning a trained [`SessionModel`] into a [`Recommender`].
///
/// `fit` delegates to the shared trainer with the stored config.
pub struct NeuralRecommender<M: SessionModel> {
    pub model: M,
    pub config: crate::TrainConfig,
    pub report: Option<crate::TrainReport>,
}

impl<M: SessionModel> NeuralRecommender<M> {
    /// Wraps a model with its training configuration.
    pub fn new(model: M, config: crate::TrainConfig) -> Self {
        NeuralRecommender {
            model,
            config,
            report: None,
        }
    }
}

impl<M: SessionModel> Recommender for NeuralRecommender<M> {
    fn name(&self) -> &str {
        self.model.name()
    }

    fn num_items(&self) -> usize {
        self.model.num_items()
    }

    fn fit(&mut self, train: &[Example], val: &[Example]) {
        let trainer = crate::Trainer::new(self.config.clone());
        self.report = Some(trainer.fit(&self.model, train, val));
    }

    fn scores(&self, session: &Session) -> Vec<f32> {
        let mut rng = Rng::seed_from_u64(0); // dropout disabled at eval
        let truncated = crate::trainer::truncate_session(session, self.config.max_session_len);
        self.model.logits(&truncated, false, &mut rng).to_vec()
    }

    fn train_report(&self) -> Option<&crate::TrainReport> {
        self.report.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    /// A trivial bigram-count "neural" model used to exercise the adapter.
    struct Uniform {
        n: usize,
    }

    impl SessionModel for Uniform {
        fn name(&self) -> &str {
            "Uniform"
        }
        fn num_items(&self) -> usize {
            self.n
        }
        fn parameters(&self) -> Vec<Tensor> {
            Vec::new()
        }
        fn logits(&self, _s: &Session, _t: bool, _r: &mut Rng) -> Tensor {
            Tensor::zeros(&[self.n])
        }
    }

    #[test]
    fn adapter_exposes_model_metadata() {
        let rec = NeuralRecommender::new(Uniform { n: 7 }, crate::TrainConfig::fast());
        assert_eq!(rec.name(), "Uniform");
        assert_eq!(rec.num_items(), 7);
        let s = Session {
            id: 0,
            events: vec![MicroBehavior::new(1, 0)],
        };
        assert_eq!(rec.scores(&s).len(), 7);
    }
}
