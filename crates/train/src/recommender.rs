//! The [`Recommender`] and [`SessionModel`] interfaces.

use embsr_sessions::{Example, Session};
use embsr_tensor::{Rng, Tensor};

/// Anything that can score the full item vocabulary for a session.
///
/// This is the single interface the evaluation harness consumes; both
/// neural models (via [`NeuralRecommender`]) and non-neural methods
/// (S-POP, SKNN, STAN) implement it.
pub trait Recommender {
    /// Human-readable model name as it appears in the paper's tables.
    fn name(&self) -> &str;

    /// Size of the item vocabulary `|V|`.
    fn num_items(&self) -> usize;

    /// Fits the model on training examples (validation examples are used
    /// for early stopping where applicable).
    fn fit(&mut self, train: &[Example], val: &[Example]);

    /// Scores for every item given the session prefix; higher is better.
    /// The returned vector has length `num_items()`.
    fn scores(&self, session: &Session) -> Vec<f32>;

    /// Scores for a batch of session prefixes: one `num_items()`-length
    /// vector per session, in input order.
    ///
    /// Takes references (mirroring [`SessionModel::logits_batch`]) so bulk
    /// callers like the eval harness can batch without cloning every
    /// session's event vector. The default loops over
    /// [`Recommender::scores`], so every implementor is batchable; neural
    /// models override it with a genuinely batched, tape-free forward (see
    /// `NeuralRecommender`). Row `i` must equal `self.scores(sessions[i])`
    /// — the serving equivalence suite holds overrides to bitwise equality.
    fn scores_batch(&self, sessions: &[&Session]) -> Vec<Vec<f32>> {
        sessions.iter().map(|&s| self.scores(s)).collect()
    }

    /// The training report of the most recent [`Recommender::fit`], when the
    /// model trains with the shared [`crate::Trainer`]. Non-neural methods
    /// keep the default `None`.
    fn train_report(&self) -> Option<&crate::TrainReport> {
        None
    }
}

/// A differentiable next-item model trained by the shared [`crate::Trainer`].
pub trait SessionModel {
    /// Model name.
    fn name(&self) -> &str;

    /// Item vocabulary size.
    fn num_items(&self) -> usize;

    /// All trainable parameters.
    fn parameters(&self) -> Vec<Tensor>;

    /// Logits `[|V|]` for the next item after `session`.
    ///
    /// `training` toggles dropout; `rng` drives it.
    fn logits(&self, session: &Session, training: bool, rng: &mut Rng) -> Tensor;

    /// Inference-time logits `[|V|]`: no dropout, no RNG to thread.
    ///
    /// Eval-time callers used to pass `training = false` plus a dummy RNG
    /// into [`SessionModel::logits`]; this is the same forward without the
    /// ceremony. The default delegates, so implementors get it for free.
    fn logits_infer(&self, session: &Session) -> Tensor {
        let mut rng = Rng::seed_from_u64(0); // never drawn from: dropout is off
        self.logits(session, false, &mut rng)
    }

    /// Inference-time logits for a batch of sessions, shape `[B, |V|]` with
    /// row `i` scoring `sessions[i]`.
    ///
    /// The default stacks per-session [`SessionModel::logits_infer`] rows.
    /// Models override it to share work across the batch — encoding each
    /// session once and scoring all representations against the item table
    /// in a single GEMM — while keeping every row bitwise-equal to the
    /// per-session path (GEMM rows are independent sequential dot products).
    fn logits_batch(&self, sessions: &[&Session]) -> Tensor {
        assert!(!sessions.is_empty(), "logits_batch of an empty batch");
        let rows: Vec<Tensor> = sessions
            .iter()
            .map(|s| {
                let y = self.logits_infer(s);
                let n = y.len();
                y.reshape(&[1, n])
            })
            .collect();
        Tensor::concat_rows(&rows)
    }

    /// Inference-time session representation `[d]` — the model state right
    /// before the final logits GEMM, when the model has such a seam.
    ///
    /// The contract that makes the serving-side repr cache sound: for any
    /// batch, stacking `repr_infer` rows and applying
    /// [`SessionModel::logits_of_reprs`] must reproduce
    /// [`SessionModel::logits_batch`] **bitwise** (same kernel tier, same
    /// inference mode). Models whose forward does not factor this way keep
    /// the default `None`, which disables caching for them.
    fn repr_infer(&self, session: &Session) -> Option<Tensor> {
        let _ = session;
        None
    }

    /// Logits `[B, |V|]` from stacked representations `[B, d]` — the final
    /// GEMM of the factored forward. Must be `Some` exactly when
    /// [`SessionModel::repr_infer`] is, and together with it reproduce
    /// [`SessionModel::logits_batch`] bitwise.
    fn logits_of_reprs(&self, reprs: &Tensor) -> Option<Tensor> {
        let _ = reprs;
        None
    }
}

/// Adapter turning a trained [`SessionModel`] into a [`Recommender`].
///
/// `fit` delegates to the shared trainer with the stored config.
pub struct NeuralRecommender<M: SessionModel> {
    pub model: M,
    pub config: crate::TrainConfig,
    pub report: Option<crate::TrainReport>,
}

impl<M: SessionModel> NeuralRecommender<M> {
    /// Wraps a model with its training configuration.
    pub fn new(model: M, config: crate::TrainConfig) -> Self {
        NeuralRecommender {
            model,
            config,
            report: None,
        }
    }
}

impl<M: SessionModel> Recommender for NeuralRecommender<M> {
    fn name(&self) -> &str {
        self.model.name()
    }

    fn num_items(&self) -> usize {
        self.model.num_items()
    }

    fn fit(&mut self, train: &[Example], val: &[Example]) {
        let trainer = crate::Trainer::new(self.config.clone());
        self.report = Some(trainer.fit(&self.model, train, val));
    }

    fn scores(&self, session: &Session) -> Vec<f32> {
        let truncated = crate::trainer::truncate_session(session, self.config.max_session_len);
        self.model.logits_infer(&truncated).to_vec()
    }

    fn scores_batch(&self, sessions: &[&Session]) -> Vec<Vec<f32>> {
        if sessions.is_empty() {
            return Vec::new();
        }
        let truncated: Vec<Session> = sessions
            .iter()
            .map(|&s| crate::trainer::truncate_session(s, self.config.max_session_len))
            .collect();
        let refs: Vec<&Session> = truncated.iter().collect();
        // Tape-free: the whole batched forward runs without recording the
        // autograd graph, so intermediate activations recycle through the
        // buffer pool instead of accumulating until the logits drop.
        let logits = embsr_tensor::inference_mode(|| self.model.logits_batch(&refs));
        let v = self.model.num_items();
        assert_eq!(logits.rows(), sessions.len(), "one logit row per session");
        assert_eq!(logits.cols(), v, "full-vocabulary rows");
        let flat = logits.to_vec();
        flat.chunks(v).map(|row| row.to_vec()).collect()
    }

    fn train_report(&self) -> Option<&crate::TrainReport> {
        self.report.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;

    /// A trivial bigram-count "neural" model used to exercise the adapter.
    struct Uniform {
        n: usize,
    }

    impl SessionModel for Uniform {
        fn name(&self) -> &str {
            "Uniform"
        }
        fn num_items(&self) -> usize {
            self.n
        }
        fn parameters(&self) -> Vec<Tensor> {
            Vec::new()
        }
        fn logits(&self, _s: &Session, _t: bool, _r: &mut Rng) -> Tensor {
            Tensor::zeros(&[self.n])
        }
    }

    #[test]
    fn adapter_exposes_model_metadata() {
        let rec = NeuralRecommender::new(Uniform { n: 7 }, crate::TrainConfig::fast());
        assert_eq!(rec.name(), "Uniform");
        assert_eq!(rec.num_items(), 7);
        let s = Session {
            id: 0,
            events: vec![MicroBehavior::new(1, 0)],
        };
        assert_eq!(rec.scores(&s).len(), 7);
    }

    #[test]
    fn batched_scores_match_per_session_scores() {
        let rec = NeuralRecommender::new(Uniform { n: 5 }, crate::TrainConfig::fast());
        let sessions: Vec<Session> = (0..3)
            .map(|i| Session {
                id: i,
                events: vec![MicroBehavior::new(i as u32 + 1, 0)],
            })
            .collect();
        let refs: Vec<&Session> = sessions.iter().collect();
        let batched = rec.scores_batch(&refs);
        assert_eq!(batched.len(), 3);
        for (s, row) in sessions.iter().zip(&batched) {
            assert_eq!(row, &rec.scores(s));
        }
        assert!(rec.scores_batch(&[]).is_empty());
    }

    #[test]
    fn default_logits_batch_stacks_rows() {
        let m = Uniform { n: 4 };
        let s = Session {
            id: 0,
            events: vec![MicroBehavior::new(1, 0)],
        };
        let out = m.logits_batch(&[&s, &s, &s]);
        assert_eq!(out.shape().dims(), &[3, 4]);
        assert_eq!(m.logits_infer(&s).len(), 4);
    }
}
