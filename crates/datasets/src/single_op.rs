//! The "single operation type" view of a dataset (paper supplemental
//! Sec. I-A / Table I).
//!
//! Macro-behavior baselines are usually tuned for clickstream data, so the
//! supplement re-defines the item sequence using only click-type events
//! (clicks on JD, click-outs on Trivago) while **keeping the ground truth of
//! each sequence consistent** so the comparison with EMBSR stays fair.

use embsr_sessions::{Example, MicroBehavior, Session};

use crate::generator::ops;
use crate::pipeline::Dataset;

/// Projects every example's session onto click-only events, preserving the
/// original target. Examples whose prefix loses all events are dropped
/// (mirroring the paper's filtering).
pub fn single_op_view(dataset: &Dataset) -> Dataset {
    let project = |examples: &[Example]| -> Vec<Example> {
        examples
            .iter()
            .filter_map(|ex| {
                let events: Vec<MicroBehavior> = ex
                    .session
                    .events
                    .iter()
                    .copied()
                    .filter(|e| e.op == ops::CLICK)
                    .collect();
                if events.is_empty() {
                    return None;
                }
                Some(Example {
                    session: Session {
                        id: ex.session.id,
                        events,
                    },
                    target: ex.target,
                })
            })
            .collect()
    };
    Dataset {
        name: format!("{} (single-op)", dataset.name),
        num_items: dataset.num_items,
        num_ops: dataset.num_ops,
        train: project(&dataset.train),
        val: project(&dataset.val),
        test: project(&dataset.test),
        train_sessions: dataset
            .train_sessions
            .iter()
            .map(|s| s.filter_ops(|o| o == ops::CLICK))
            .collect(),
        stats: dataset.stats.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetPreset, SyntheticConfig};
    use crate::pipeline::build_dataset;

    #[test]
    fn view_contains_only_clicks_with_same_targets() {
        let d = build_dataset(&SyntheticConfig::tiny(DatasetPreset::JdAppliances));
        let v = single_op_view(&d);
        assert!(v.test.len() <= d.test.len());
        assert!(!v.test.is_empty());
        for ex in &v.test {
            assert!(ex.session.events.iter().all(|e| e.op == ops::CLICK));
        }
        // targets preserved for surviving sessions (match by session id)
        let orig: std::collections::HashMap<u64, u32> =
            d.test.iter().map(|e| (e.session.id, e.target)).collect();
        for ex in &v.test {
            assert_eq!(orig[&ex.session.id], ex.target);
        }
    }

    #[test]
    fn vocab_is_unchanged() {
        let d = build_dataset(&SyntheticConfig::tiny(DatasetPreset::Trivago));
        let v = single_op_view(&d);
        assert_eq!(v.num_items, d.num_items);
        assert_eq!(v.num_ops, d.num_ops);
    }
}
