//! Generator configuration and the three dataset presets.

/// Which of the paper's datasets a config is modeled on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DatasetPreset {
    JdAppliances,
    JdComputers,
    Trivago,
}

impl DatasetPreset {
    /// All presets, in the paper's column order.
    pub fn all() -> [DatasetPreset; 3] {
        [
            DatasetPreset::JdAppliances,
            DatasetPreset::JdComputers,
            DatasetPreset::Trivago,
        ]
    }

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetPreset::JdAppliances => "JD-Appliances",
            DatasetPreset::JdComputers => "JD-Computers",
            DatasetPreset::Trivago => "Trivago",
        }
    }
}

/// Parameters of the synthetic session generator.
///
/// Scales are reduced relative to Table II (hundreds of thousands of
/// sessions → thousands) so the full 13-model × 3-dataset grid trains on a
/// CPU; the *structural* knobs (operation vocabulary, repeat ratio,
/// engagement dynamics) mirror each dataset.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    pub preset: DatasetPreset,
    /// Item catalog size before frequency filtering.
    pub num_items: usize,
    /// Number of latent categories partitioning the catalog.
    pub num_categories: usize,
    /// Operation vocabulary size (10 for the JD datasets, 6 for Trivago).
    pub num_ops: usize,
    /// Sessions to generate before filtering.
    pub num_sessions: usize,
    /// Mean number of macro items per session (geometric tail around it).
    pub mean_macro_len: f32,
    /// Probability that a step wanders off the focus category.
    pub distractor_prob: f32,
    /// Probability that the ground-truth item repeats an in-session item
    /// (high for JD-style shopping, near zero for Trivago).
    pub repeat_ratio: f32,
    /// Zipf exponent of item popularity inside each category.
    pub zipf_exponent: f64,
    /// Items occurring fewer than this many times are dropped (paper: 50 on
    /// JD, 5 on Trivago — scaled down with the corpus).
    pub min_item_occurrences: usize,
    /// Probability a session follows the "buyer" persona (vs "browser").
    pub buyer_fraction: f32,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Full-scale preset used by the experiment harness.
    pub fn preset(preset: DatasetPreset) -> SyntheticConfig {
        match preset {
            DatasetPreset::JdAppliances => SyntheticConfig {
                preset,
                num_items: 800,
                num_categories: 20,
                num_ops: 10,
                num_sessions: 6000,
                mean_macro_len: 6.0,
                distractor_prob: 0.25,
                repeat_ratio: 0.55,
                zipf_exponent: 1.05,
                min_item_occurrences: 8,
                buyer_fraction: 0.5,
                seed: 101,
            },
            DatasetPreset::JdComputers => SyntheticConfig {
                preset,
                num_items: 1000,
                num_categories: 25,
                num_ops: 10,
                num_sessions: 6000,
                mean_macro_len: 5.0,
                distractor_prob: 0.35,
                repeat_ratio: 0.40,
                zipf_exponent: 0.95,
                min_item_occurrences: 8,
                buyer_fraction: 0.45,
                seed: 202,
            },
            DatasetPreset::Trivago => SyntheticConfig {
                preset,
                num_items: 1500,
                num_categories: 30,
                num_ops: 6,
                num_sessions: 5000,
                mean_macro_len: 5.0,
                distractor_prob: 0.30,
                repeat_ratio: 0.03,
                zipf_exponent: 0.85,
                min_item_occurrences: 3,
                buyer_fraction: 0.5,
                seed: 303,
            },
        }
    }

    /// A tiny configuration for unit tests (hundreds of sessions).
    pub fn tiny(preset: DatasetPreset) -> SyntheticConfig {
        let mut c = Self::preset(preset);
        c.num_items = 120;
        c.num_categories = 8;
        c.num_sessions = 400;
        c.min_item_occurrences = 2;
        c
    }

    /// Scales session count and catalog by `factor` (for quick sweeps).
    pub fn scaled(mut self, factor: f32) -> SyntheticConfig {
        assert!(factor > 0.0);
        self.num_sessions = ((self.num_sessions as f32 * factor) as usize).max(50);
        self.num_items = ((self.num_items as f32 * factor.sqrt()) as usize).max(20);
        self
    }

    /// Basic validity checks; called by the generator.
    pub fn validate(&self) {
        assert!(self.num_items >= self.num_categories, "items < categories");
        assert!(self.num_ops >= 4, "need at least 4 operations (see roles)");
        assert!((0.0..=1.0).contains(&self.distractor_prob));
        assert!((0.0..=1.0).contains(&self.repeat_ratio));
        assert!((0.0..=1.0).contains(&self.buyer_fraction));
        assert!(self.mean_macro_len >= 2.0, "sessions need >= 2 macro items");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_operation_vocabularies() {
        assert_eq!(SyntheticConfig::preset(DatasetPreset::JdAppliances).num_ops, 10);
        assert_eq!(SyntheticConfig::preset(DatasetPreset::JdComputers).num_ops, 10);
        assert_eq!(SyntheticConfig::preset(DatasetPreset::Trivago).num_ops, 6);
    }

    #[test]
    fn trivago_has_negligible_repeat_ratio() {
        let t = SyntheticConfig::preset(DatasetPreset::Trivago);
        assert!(t.repeat_ratio < 0.1);
        let jd = SyntheticConfig::preset(DatasetPreset::JdAppliances);
        assert!(jd.repeat_ratio > 0.4);
    }

    #[test]
    fn all_presets_validate() {
        for p in DatasetPreset::all() {
            SyntheticConfig::preset(p).validate();
            SyntheticConfig::tiny(p).validate();
        }
    }

    #[test]
    fn scaled_shrinks_sessions() {
        let c = SyntheticConfig::preset(DatasetPreset::JdAppliances).scaled(0.1);
        assert!(c.num_sessions < 6000);
        c.validate();
    }
}
