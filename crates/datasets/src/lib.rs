//! # embsr-datasets
//!
//! Synthetic micro-behavior session corpora modeled on the paper's three
//! datasets (JD-Appliances, JD-Computers, Trivago), plus the exact
//! preprocessing pipeline of paper Sec. V-A-1.
//!
//! ## Why synthetic data is a sound substitute
//!
//! The original JD datasets are no longer downloadable and Trivago's RecSys
//! 2019 data is distribution-restricted. The paper's claims are *relative* —
//! EMBSR beats baselines because micro-behaviors carry signal about the next
//! item that item sequences alone do not. The generator here is built so that
//! exactly that structure holds:
//!
//! 1. **Item-transition signal.** Each session follows a latent *focus
//!    category*; items are sampled from a Zipf-popular catalog with
//!    excursions to distractor categories, so item-only models (SR-GNN,
//!    SGNN-HN, …) can learn real transition structure.
//! 2. **Sequential micro-operation signal.** Each item visit emits an
//!    operation sub-sequence from an engagement-conditioned Markov chain;
//!    engagement is higher on focus-category items, so the operation
//!    sub-sequence of an item reveals how close it is to the user's intent.
//! 3. **Dyadic relational signal.** The user's *persona* (buyer vs browser)
//!    governs cross-item operation pairs — e.g. buyers who `add-to-cart`
//!    early and `order`-click late revisit the carted item, while browsers
//!    move to a fresh item of the same category. Only models that can relate
//!    operation *pairs* across positions (EMBSR's dyadic encoding) can pick
//!    this up directly.
//! 4. **Repeat ratio.** A preset knob reproduces the property the paper uses
//!    to explain Trivago: the ground truth rarely re-occurs inside the
//!    session (S-POP scores ≈ 0 there).

mod catalog;
mod config;
mod generator;
mod loader;
mod pipeline;
mod single_op;

pub use catalog::Catalog;
pub use config::{DatasetPreset, SyntheticConfig};
pub use generator::generate_sessions;
pub use loader::{load_sessions_from_path, load_sessions_from_reader, LoadedVocab};
pub use pipeline::{build_dataset, Dataset, SplitRatios};
pub use single_op::single_op_view;
