//! Loading real micro-behavior logs.
//!
//! The synthetic generator stands in for the paper's (unavailable) datasets,
//! but users with their own logs — e.g. the original JD files or the RecSys
//! 2019 Trivago dump — can load them here. The expected format is a
//! delimited text file with one micro-behavior per line:
//!
//! ```text
//! session_id,item_id,operation[,timestamp]
//! ```
//!
//! * `session_id` — any string; lines sharing it form one session,
//! * `item_id` / `operation` — any strings; mapped to dense ids in
//!   first-seen order (the mapping is returned for decoding),
//! * `timestamp` — optional integer; when present, lines are sorted by it
//!   within each session (the file need not be pre-sorted).
//!
//! Lines starting with `#` and a leading header line (detected by a
//! non-numeric timestamp column or the literal `session_id`) are skipped.

use std::collections::HashMap;
use std::io::{self, BufRead};
use std::path::Path;

use embsr_sessions::{MicroBehavior, Session};

/// Vocabulary mappings produced while loading.
#[derive(Debug, Default)]
pub struct LoadedVocab {
    /// Raw item label per dense item id.
    pub items: Vec<String>,
    /// Raw operation label per dense op id.
    pub ops: Vec<String>,
}

impl LoadedVocab {
    /// Number of distinct items.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Number of distinct operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }
}

/// Parses sessions from delimited text. `delimiter` is typically `,` or
/// `\t`.
///
/// # Errors
/// Fails on I/O errors or structurally invalid lines (fewer than three
/// fields). Unknown columns beyond the fourth are ignored.
pub fn load_sessions_from_reader(
    reader: impl BufRead,
    delimiter: char,
) -> io::Result<(Vec<Session>, LoadedVocab)> {
    let mut item_ids: HashMap<String, u32> = HashMap::new();
    let mut op_ids: HashMap<String, u16> = HashMap::new();
    let mut vocab = LoadedVocab::default();
    // session key -> (first-seen order, events with optional timestamp)
    let mut sessions: HashMap<String, (usize, Vec<(i64, MicroBehavior)>)> = HashMap::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(delimiter).map(str::trim).collect();
        if lineno == 0 && fields.first() == Some(&"session_id") {
            continue; // header
        }
        if fields.len() < 3 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected at least 3 fields", lineno + 1),
            ));
        }
        let (sid, item_raw, op_raw) = (fields[0], fields[1], fields[2]);
        let ts: i64 = fields
            .get(3)
            .and_then(|t| t.parse().ok())
            .unwrap_or(lineno as i64);

        let next_item = item_ids.len() as u32;
        let item = *item_ids.entry(item_raw.to_string()).or_insert_with(|| {
            vocab.items.push(item_raw.to_string());
            next_item
        });
        let next_op = op_ids.len() as u16;
        let op = *op_ids.entry(op_raw.to_string()).or_insert_with(|| {
            vocab.ops.push(op_raw.to_string());
            next_op
        });

        let order = sessions.len();
        sessions
            .entry(sid.to_string())
            .or_insert_with(|| (order, Vec::new()))
            .1
            .push((ts, MicroBehavior { item, op }));
    }

    let mut ordered: Vec<(usize, Vec<(i64, MicroBehavior)>)> = sessions.into_values().collect();
    ordered.sort_by_key(|(order, _)| *order);
    let out = ordered
        .into_iter()
        .enumerate()
        .map(|(id, (_, mut events))| {
            events.sort_by_key(|(ts, _)| *ts);
            Session {
                id: id as u64,
                events: events.into_iter().map(|(_, e)| e).collect(),
            }
        })
        .collect();
    Ok((out, vocab))
}

/// Loads sessions from a file path (see [`load_sessions_from_reader`]).
pub fn load_sessions_from_path(
    path: &Path,
    delimiter: char,
) -> io::Result<(Vec<Session>, LoadedVocab)> {
    let file = std::fs::File::open(path)?;
    load_sessions_from_reader(io::BufReader::new(file), delimiter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn load(text: &str) -> (Vec<Session>, LoadedVocab) {
        load_sessions_from_reader(Cursor::new(text), ',').expect("parse")
    }

    #[test]
    fn parses_sessions_in_first_seen_order() {
        let (sessions, vocab) = load(
            "s1,iphone,click\n\
             s1,iphone,read-comments\n\
             s2,macbook,click\n\
             s1,airpods,click\n",
        );
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].len(), 3); // s1 first
        assert_eq!(sessions[1].len(), 1);
        assert_eq!(vocab.num_items(), 3);
        assert_eq!(vocab.num_ops(), 2);
        assert_eq!(vocab.items[0], "iphone");
        assert_eq!(vocab.ops[1], "read-comments");
    }

    #[test]
    fn timestamps_reorder_within_session() {
        let (sessions, _) = load(
            "s1,b,click,200\n\
             s1,a,click,100\n",
        );
        let items: Vec<u32> = sessions[0].items().collect();
        // item "b" got id 0, "a" got id 1; after time sort, "a" comes first
        assert_eq!(items, vec![1, 0]);
    }

    #[test]
    fn header_and_comments_skipped() {
        let (sessions, _) = load(
            "session_id,item_id,operation\n\
             # a comment\n\
             s1,x,click\n\
             s1,y,click\n",
        );
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].len(), 2);
    }

    #[test]
    fn malformed_line_is_an_error() {
        let err = load_sessions_from_reader(Cursor::new("s1,only-two"), ',').unwrap_err();
        assert!(err.to_string().contains("3 fields"));
    }

    #[test]
    fn tab_delimiter_supported() {
        let (sessions, vocab) =
            load_sessions_from_reader(Cursor::new("s1\ti1\tclickout item\n"), '\t').unwrap();
        assert_eq!(sessions.len(), 1);
        assert_eq!(vocab.ops[0], "clickout item");
    }

    #[test]
    fn loaded_sessions_feed_the_pipeline() {
        // end-to-end: loaded sessions merge and form examples like synthetic ones
        let (sessions, _) = load(
            "s1,a,click\ns1,a,detail\ns1,b,click\n\
             s2,b,click\ns2,c,click\n",
        );
        let examples: Vec<_> = sessions
            .iter()
            .filter_map(embsr_sessions::Example::from_session)
            .collect();
        assert_eq!(examples.len(), 2);
        assert_eq!(examples[0].session.macro_items().len(), 1);
    }
}
