//! The latent-intent session generator.
//!
//! ## Operation vocabulary roles
//!
//! Operation ids carry fixed roles mirroring the JD vocabulary
//! ("SearchList2Product", "Detail_comments", "Order", …):
//!
//! | id | role |
//! |---|---|
//! | 0 | entry click / list→product (first op of every visit) |
//! | 1 | read detail specification |
//! | 2 | read comments |
//! | 3 | add-to-cart (JD) / rating interaction (Trivago) |
//! | 4.. | miscellaneous (image, deals, share, …) |
//! | `|O|-1` | order / clickout — the terminal intent operation |
//!
//! ## Generative process (per session)
//!
//! 1. Sample a latent *focus category* and *persona* (buyer / browser).
//! 2. Random-walk over items: focus-category items by popularity, with
//!    `distractor_prob` excursions and occasional revisits of earlier items
//!    (which is what makes the session graph a **multi**graph).
//! 3. Each visit emits an operation sub-sequence whose depth follows the
//!    item's *engagement* (higher on focus items) and whose composition
//!    follows the persona.
//! 4. The ground-truth next item is decided by the micro-behavior history:
//!    buyers who carted an item and show terminal intent *repeat* the carted
//!    item; otherwise the target is a *similar* fresh item of the most
//!    engaged item. This is exactly the dyadic `(add-to-cart, order)` vs
//!    `(click, order)` distinction of the paper's Fig. 1.

use embsr_sessions::{MicroBehavior, Session};
use embsr_tensor::Rng;

use crate::catalog::Catalog;
use crate::config::SyntheticConfig;

/// Operation-role helpers shared with the single-op view and the examples.
pub(crate) mod ops {
    /// Entry click — present on every item visit.
    pub const CLICK: u16 = 0;
    /// Read detail specification.
    pub const DETAIL: u16 = 1;
    /// Read comments.
    pub const COMMENTS: u16 = 2;
    /// Add to cart.
    pub const CART: u16 = 3;
    /// Terminal intent (order / clickout) — always `num_ops - 1`.
    pub fn order(num_ops: usize) -> u16 {
        (num_ops - 1) as u16
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Persona {
    Buyer,
    Browser,
}

/// Generates the raw (unfiltered) session corpus for a configuration.
pub fn generate_sessions(cfg: &SyntheticConfig) -> Vec<Session> {
    cfg.validate();
    let catalog = Catalog::new(cfg.num_items, cfg.num_categories, cfg.zipf_exponent);
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut sessions = Vec::with_capacity(cfg.num_sessions);
    for sid in 0..cfg.num_sessions {
        sessions.push(generate_one(sid as u64, cfg, &catalog, &mut rng));
    }
    sessions
}

fn geometric_len(mean: f32, min: usize, rng: &mut Rng) -> usize {
    // Geometric with the given mean, floored at `min`.
    let p = 1.0 / mean.max(1.0);
    let mut n = min;
    while !rng.bernoulli(p) && n < (mean * 4.0) as usize + min {
        n += 1;
    }
    n
}

fn generate_one(id: u64, cfg: &SyntheticConfig, catalog: &Catalog, rng: &mut Rng) -> Session {
    let focus = rng.below(cfg.num_categories);
    let persona = if rng.bernoulli(cfg.buyer_fraction) {
        Persona::Buyer
    } else {
        Persona::Browser
    };
    let n_macro = geometric_len(cfg.mean_macro_len, 2, rng);
    let order_op = ops::order(cfg.num_ops);

    let mut events: Vec<MicroBehavior> = Vec::new();
    let mut visited: Vec<u32> = Vec::new();
    let mut carted: Option<u32> = None;
    let mut best_engaged: Option<(u32, usize)> = None; // (item, depth)

    for step in 0..n_macro - 1 {
        // --- pick the next item -----------------------------------------
        let item = loop {
            let candidate = if !visited.is_empty() && rng.bernoulli(0.15) {
                // revisit: parallel edges in the session multigraph
                visited[rng.below(visited.len())]
            } else if rng.bernoulli(cfg.distractor_prob) {
                let cat = rng.below(cfg.num_categories);
                catalog.sample_from_category(cat, rng)
            } else {
                catalog.sample_from_category(focus, rng)
            };
            // merging collapses adjacent duplicates; avoid generating them
            if visited.last() != Some(&candidate) {
                break candidate;
            }
        };
        visited.push(item);
        let on_focus = catalog.category_of[item as usize] == focus;

        // --- engagement: how deep the operation sub-sequence goes --------
        let engagement = if on_focus {
            1 + rng.below(4) // 1..=4 extra ops
        } else if rng.bernoulli(0.3) {
            1 + rng.below(2)
        } else {
            0
        };

        // --- emit the operation sub-sequence ------------------------------
        events.push(MicroBehavior::new(item, ops::CLICK));
        for depth in 0..engagement {
            let op = match (persona, depth) {
                (_, 0) => ops::DETAIL,
                (Persona::Buyer, 1) => ops::COMMENTS,
                (Persona::Buyer, _) => {
                    if carted.is_none() && on_focus {
                        carted = Some(item);
                        ops::CART
                    } else {
                        misc_op(cfg.num_ops, rng)
                    }
                }
                (Persona::Browser, _) => misc_op(cfg.num_ops, rng),
            };
            events.push(MicroBehavior::new(item, op));
        }

        let depth_now = engagement + 1;
        if on_focus {
            match best_engaged {
                Some((_, d)) if d >= depth_now => {}
                _ => best_engaged = Some((item, depth_now)),
            }
        }
        let _ = step;
    }

    // Fallback when the walk never touched the focus category.
    let anchor = best_engaged
        .map(|(i, _)| i)
        .unwrap_or_else(|| catalog.sample_from_category(focus, rng));

    // --- decide the ground-truth next item -------------------------------
    // Buyers with a carted item close the loop (repeat) when terminal intent
    // fires; everyone else moves to a similar fresh item.
    let terminal_intent = persona == Persona::Buyer && carted.is_some();
    let (target, target_op) = if terminal_intent && rng.bernoulli(cfg.repeat_ratio) {
        // Terminal intent fires *before* the revisit: the user hits the
        // order flow on whatever item they are on, then returns to the
        // carted item. The prefix thus contains the dyadic pair
        // (add-to-cart @ carted item, order @ last item) that predicts the
        // repeat — the paper's Fig. 1 pattern.
        if let Some(&last_item) = visited.last() {
            events.push(MicroBehavior::new(last_item, order_op));
        }
        (carted.expect("checked"), ops::CLICK)
    } else if rng.bernoulli(cfg.repeat_ratio * 0.3) && !visited.is_empty() {
        // occasional non-purchase repeat (re-click an earlier item)
        (visited[rng.below(visited.len())], ops::CLICK)
    } else {
        // Fresh target: a similar item *not* already in the session, so the
        // preset's repeat ratio is controlled by the explicit branches above
        // (Trivago needs this to stay near zero).
        // 30% of fresh targets are drawn category-uniform rather than from the
        // anchor's popularity neighborhood: keeps co-occurrence methods (SKNN)
        // from reading the target straight off the anchor, as in real catalogs
        // whose item spaces are orders of magnitude larger.
        let anchor_cat = catalog.category_of[anchor as usize];
        // Persona decides the *direction* of similarity: buyers step toward
        // the popular head (comparison shoppers converging on best-sellers),
        // browsers toward the long tail. The persona is visible only in the
        // micro-operations, so this is signal macro models cannot use.
        let up = persona == Persona::Buyer;
        let mut t = if rng.bernoulli(0.15) {
            catalog.sample_from_category(anchor_cat, rng)
        } else {
            catalog.sample_similar_directional(anchor, up, rng)
        };
        let mut tries = 0;
        while visited.contains(&t) && tries < 12 {
            t = if tries < 6 {
                catalog.sample_similar_directional(anchor, up, rng)
            } else {
                catalog.sample_from_category(anchor_cat, rng)
            };
            tries += 1;
        }
        (t, ops::CLICK)
    };

    // Decoy terminal op: browsers occasionally touch the order flow without
    // a cart, so the ORDER operation alone does not give the answer away —
    // only the *pair* with an earlier add-to-cart does.
    if persona == Persona::Browser && rng.bernoulli(0.1) {
        if let Some(&last_item) = visited.last() {
            events.push(MicroBehavior::new(last_item, order_op));
        }
    }

    // Never let the target merge into the previous macro step.
    if visited.last() == Some(&target) {
        events.push(MicroBehavior::new(
            catalog.sample_similar(target, rng),
            ops::CLICK,
        ));
    }
    events.push(MicroBehavior::new(target, target_op));
    Session { id, events }
}

fn misc_op(num_ops: usize, rng: &mut Rng) -> u16 {
    // any op in [1, |O|-1) except CART (cart is persona-controlled)
    loop {
        let op = 1 + rng.below(num_ops - 2);
        if op as u16 != ops::CART {
            return op as u16;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetPreset;
    use embsr_sessions::CorpusStats;

    fn tiny() -> Vec<Session> {
        generate_sessions(&SyntheticConfig::tiny(DatasetPreset::JdAppliances))
    }

    #[test]
    fn corpus_has_requested_size() {
        let cfg = SyntheticConfig::tiny(DatasetPreset::JdAppliances);
        let sessions = generate_sessions(&cfg);
        assert_eq!(sessions.len(), cfg.num_sessions);
    }

    #[test]
    fn every_session_has_at_least_two_macro_items() {
        for s in tiny() {
            assert!(s.macro_items().len() >= 2, "session {} too short", s.id);
        }
    }

    #[test]
    fn items_and_ops_stay_in_vocabulary() {
        let cfg = SyntheticConfig::tiny(DatasetPreset::Trivago);
        for s in generate_sessions(&cfg) {
            for e in &s.events {
                assert!((e.item as usize) < cfg.num_items);
                assert!((e.op as usize) < cfg.num_ops);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::tiny(DatasetPreset::JdComputers);
        assert_eq!(generate_sessions(&cfg), generate_sessions(&cfg));
    }

    #[test]
    fn jd_repeat_ratio_far_exceeds_trivago() {
        let jd = CorpusStats::compute(&generate_sessions(&SyntheticConfig::tiny(
            DatasetPreset::JdAppliances,
        )));
        let tv = CorpusStats::compute(&generate_sessions(&SyntheticConfig::tiny(
            DatasetPreset::Trivago,
        )));
        assert!(
            jd.target_repeat_ratio > tv.target_repeat_ratio + 0.15,
            "jd {} vs trivago {}",
            jd.target_repeat_ratio,
            tv.target_repeat_ratio
        );
        assert!(tv.target_repeat_ratio < 0.12, "trivago {}", tv.target_repeat_ratio);
    }

    #[test]
    fn sessions_contain_multi_op_visits() {
        // micro-behavior structure exists: some macro steps have >1 op
        let sessions = tiny();
        let multi = sessions
            .iter()
            .flat_map(|s| s.macro_steps())
            .filter(|st| st.ops.len() > 1)
            .count();
        assert!(multi > 100, "only {multi} multi-op visits");
    }

    #[test]
    fn some_sessions_revisit_items() {
        let with_revisit = tiny()
            .iter()
            .filter(|s| {
                let g = embsr_sessions::SessionGraph::from_session(s);
                g.has_revisits()
            })
            .count();
        assert!(with_revisit > 20, "only {with_revisit} multigraph sessions");
    }
}
