//! The item catalog: categories and Zipf popularity.

use embsr_tensor::Rng;

/// A catalog of items partitioned into categories, each with a Zipf
/// popularity distribution over its members.
pub struct Catalog {
    /// Category of each item.
    pub category_of: Vec<usize>,
    /// Items per category.
    pub members: Vec<Vec<u32>>,
    /// Unnormalized sampling weight of each item (Zipf within category).
    pub weight_of: Vec<f32>,
}

impl Catalog {
    /// Builds a catalog of `num_items` items over `num_categories`
    /// categories (round-robin assignment, Zipf rank by position within the
    /// category).
    pub fn new(num_items: usize, num_categories: usize, zipf_exponent: f64) -> Self {
        assert!(num_categories > 0 && num_items >= num_categories);
        let mut category_of = vec![0usize; num_items];
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_categories];
        let mut weight_of = vec![0.0f32; num_items];
        for item in 0..num_items {
            let cat = item % num_categories;
            category_of[item] = cat;
            let rank = members[cat].len() + 1;
            members[cat].push(item as u32);
            weight_of[item] = (1.0 / (rank as f64).powf(zipf_exponent)) as f32;
        }
        Catalog {
            category_of,
            members,
            weight_of,
        }
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.category_of.len()
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.members.len()
    }

    /// Samples an item from `category` by popularity.
    pub fn sample_from_category(&self, category: usize, rng: &mut Rng) -> u32 {
        let items = &self.members[category];
        let weights: Vec<f32> = items.iter().map(|&i| self.weight_of[i as usize]).collect();
        items[rng.sample_weighted(&weights)]
    }

    /// Samples an item from `category` *near* the popularity rank of
    /// `anchor` (used for "similar item" targets, e.g. the same mouse pad in
    /// a different size in the paper's case study).
    pub fn sample_similar(&self, anchor: u32, rng: &mut Rng) -> u32 {
        let cat = self.category_of[anchor as usize];
        let items = &self.members[cat];
        if items.len() == 1 {
            return anchor;
        }
        let pos = items
            .iter()
            .position(|&i| i == anchor)
            .expect("anchor in its category");
        // Triangular window around the anchor's rank.
        let window = 8usize;
        let lo = pos.saturating_sub(window);
        let hi = (pos + window + 1).min(items.len());
        self.sample_window(items, pos, lo, hi, rng)
    }

    /// Like [`Catalog::sample_similar`], but one-sided: `up = true` samples
    /// among *more popular* neighbors (lower rank), `up = false` among less
    /// popular ones. Session personas use opposite directions, so the
    /// anchor alone does not determine the target — the persona (readable
    /// only from micro-operations) does.
    pub fn sample_similar_directional(&self, anchor: u32, up: bool, rng: &mut Rng) -> u32 {
        let cat = self.category_of[anchor as usize];
        let items = &self.members[cat];
        if items.len() == 1 {
            return anchor;
        }
        let pos = items
            .iter()
            .position(|&i| i == anchor)
            .expect("anchor in its category");
        let window = 6usize;
        let (lo, hi) = if up {
            (pos.saturating_sub(window), (pos + 1).min(items.len()))
        } else {
            (pos, (pos + window + 1).min(items.len()))
        };
        self.sample_window(items, pos, lo, hi, rng)
    }

    fn sample_window(
        &self,
        items: &[u32],
        pos: usize,
        lo: usize,
        hi: usize,
        rng: &mut Rng,
    ) -> u32 {
        let anchor = items[pos];
        let mut choice = items[lo + rng.below(hi - lo)];
        if choice == anchor {
            choice = items[if pos + 1 < items.len() { pos + 1 } else { pos - 1 }];
        }
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_item_has_a_category_and_weight() {
        let c = Catalog::new(25, 4, 1.0);
        assert_eq!(c.num_items(), 25);
        assert_eq!(c.num_categories(), 4);
        let total: usize = c.members.iter().map(Vec::len).sum();
        assert_eq!(total, 25);
        assert!(c.weight_of.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn zipf_head_is_heavier() {
        let c = Catalog::new(40, 2, 1.2);
        let cat0 = &c.members[0];
        assert!(c.weight_of[cat0[0] as usize] > c.weight_of[cat0.last().copied().unwrap() as usize]);
    }

    #[test]
    fn sampling_respects_category() {
        let c = Catalog::new(30, 3, 1.0);
        let mut rng = Rng::seed_from_u64(0);
        for _ in 0..100 {
            let item = c.sample_from_category(2, &mut rng);
            assert_eq!(c.category_of[item as usize], 2);
        }
    }

    #[test]
    fn similar_item_is_same_category_and_not_anchor() {
        let c = Catalog::new(30, 3, 1.0);
        let mut rng = Rng::seed_from_u64(1);
        let anchor = c.members[1][2];
        for _ in 0..50 {
            let sim = c.sample_similar(anchor, &mut rng);
            assert_eq!(c.category_of[sim as usize], 1);
            assert_ne!(sim, anchor);
        }
    }

    #[test]
    fn singleton_category_similar_returns_anchor() {
        let c = Catalog::new(3, 3, 1.0);
        let mut rng = Rng::seed_from_u64(2);
        assert_eq!(c.sample_similar(0, &mut rng), 0);
    }
}
