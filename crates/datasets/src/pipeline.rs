//! Preprocessing pipeline (paper Sec. V-A-1):
//!
//! 1. filter out items with fewer than `min_item_occurrences` occurrences,
//! 2. drop sessions left with fewer than two macro items,
//! 3. remap item ids to a dense vocabulary,
//! 4. split 70% / 10% / 20% into train / validation / test,
//! 5. use the last macro item of each session as the ground truth.

use std::collections::HashMap;

use embsr_sessions::{CorpusStats, Example, MicroBehavior, Session};
use embsr_tensor::Rng;

use crate::config::SyntheticConfig;
use crate::generator::generate_sessions;

/// Train/validation/test fractions. Must sum to ≤ 1.
#[derive(Clone, Copy, Debug)]
pub struct SplitRatios {
    pub train: f32,
    pub val: f32,
}

impl Default for SplitRatios {
    fn default() -> Self {
        // the paper's 70/10/20
        SplitRatios {
            train: 0.7,
            val: 0.1,
        }
    }
}

/// A fully preprocessed dataset ready for training and evaluation.
pub struct Dataset {
    /// Display name (paper table row).
    pub name: String,
    /// Dense item vocabulary size after filtering.
    pub num_items: usize,
    /// Operation vocabulary size.
    pub num_ops: usize,
    pub train: Vec<Example>,
    pub val: Vec<Example>,
    pub test: Vec<Example>,
    /// The full training sessions (for augmentation and diagnostics).
    pub train_sessions: Vec<Session>,
    /// Statistics over the retained full sessions (Table II).
    pub stats: CorpusStats,
}

impl Dataset {
    /// Returns a copy whose training split uses sequence-splitting
    /// augmentation (one example per macro transition), the GRU4Rec+ /
    /// SR-GNN training augmentation. Validation and test splits are
    /// untouched so evaluation stays comparable.
    pub fn with_augmented_train(&self) -> Dataset {
        let train: Vec<Example> = self
            .train_sessions
            .iter()
            .flat_map(Example::augmented_from_session)
            .collect();
        Dataset {
            name: format!("{} (augmented)", self.name),
            num_items: self.num_items,
            num_ops: self.num_ops,
            train,
            val: self.val.clone(),
            test: self.test.clone(),
            train_sessions: self.train_sessions.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Total number of examples across splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// True when no examples survived preprocessing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Removes rare items and remaps ids densely. Returns the retained sessions
/// and the vocabulary size.
fn filter_and_remap(sessions: Vec<Session>, min_occurrences: usize) -> (Vec<Session>, usize) {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for s in &sessions {
        for e in &s.events {
            *counts.entry(e.item).or_default() += 1;
        }
    }
    let mut kept: Vec<u32> = counts
        .iter()
        .filter(|(_, &c)| c >= min_occurrences)
        .map(|(&i, _)| i)
        .collect();
    kept.sort_unstable();
    let remap: HashMap<u32, u32> = kept
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new as u32))
        .collect();

    let filtered: Vec<Session> = sessions
        .into_iter()
        .filter_map(|s| {
            let events: Vec<MicroBehavior> = s
                .events
                .iter()
                .filter_map(|e| {
                    remap
                        .get(&e.item)
                        .map(|&item| MicroBehavior { item, op: e.op })
                })
                .collect();
            let retained = Session { id: s.id, events };
            (retained.macro_items().len() >= 2).then_some(retained)
        })
        .collect();
    (filtered, remap.len())
}

/// Builds the complete dataset for a configuration.
pub fn build_dataset(cfg: &SyntheticConfig) -> Dataset {
    let _span = embsr_obs::span("embsr_datasets", "build_dataset");
    let raw = generate_sessions(cfg);
    let (mut sessions, num_items) = filter_and_remap(raw, cfg.min_item_occurrences);
    let stats = CorpusStats::compute(&sessions);
    embsr_obs::info!(
        target: "embsr_datasets",
        "built {}: {} sessions, {} items after min-occurrence filter",
        cfg.preset.name(),
        sessions.len(),
        num_items
    );

    // Shuffle deterministically before splitting so splits are iid.
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
    rng.shuffle(&mut sessions);

    let ratios = SplitRatios::default();
    let n = sessions.len();
    let n_train = (n as f32 * ratios.train) as usize;
    let n_val = (n as f32 * ratios.val) as usize;

    let to_examples = |slice: &[Session]| -> Vec<Example> {
        slice.iter().filter_map(Example::from_session).collect()
    };

    Dataset {
        name: cfg.preset.name().to_string(),
        num_items,
        num_ops: cfg.num_ops,
        train: to_examples(&sessions[..n_train]),
        val: to_examples(&sessions[n_train..n_train + n_val]),
        test: to_examples(&sessions[n_train + n_val..]),
        train_sessions: sessions[..n_train].to_vec(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetPreset;

    fn tiny_dataset() -> Dataset {
        build_dataset(&SyntheticConfig::tiny(DatasetPreset::JdAppliances))
    }

    #[test]
    fn splits_roughly_70_10_20() {
        let d = tiny_dataset();
        let total = d.len() as f32;
        assert!(total > 100.0);
        assert!((d.train.len() as f32 / total - 0.7).abs() < 0.06);
        assert!((d.val.len() as f32 / total - 0.1).abs() < 0.05);
        assert!((d.test.len() as f32 / total - 0.2).abs() < 0.06);
    }

    #[test]
    fn ids_are_dense_after_filtering() {
        let d = tiny_dataset();
        let mut seen = vec![false; d.num_items];
        for ex in d.train.iter().chain(&d.val).chain(&d.test) {
            for e in &ex.session.events {
                assert!((e.item as usize) < d.num_items, "id out of range");
                seen[e.item as usize] = true;
            }
            assert!((ex.target as usize) < d.num_items);
            seen[ex.target as usize] = true;
        }
        let coverage = seen.iter().filter(|&&b| b).count() as f32 / d.num_items as f32;
        assert!(coverage > 0.9, "vocabulary not dense: {coverage}");
    }

    #[test]
    fn rare_items_are_dropped() {
        let cfg = SyntheticConfig::tiny(DatasetPreset::JdAppliances);
        let raw_items = CorpusStats::compute(&generate_sessions(&cfg)).items;
        let d = build_dataset(&cfg);
        assert!(d.num_items <= raw_items);
    }

    #[test]
    fn no_single_macro_item_examples() {
        let d = tiny_dataset();
        for ex in d.train.iter().chain(&d.val).chain(&d.test) {
            assert!(!ex.session.is_empty());
        }
    }

    #[test]
    fn augmented_train_has_one_example_per_transition() {
        let d = tiny_dataset();
        let aug = d.with_augmented_train();
        let expected: usize = d
            .train_sessions
            .iter()
            .map(|s| s.macro_items().len().saturating_sub(1))
            .sum();
        assert_eq!(aug.train.len(), expected);
        assert!(aug.train.len() > d.train.len());
        // eval splits untouched
        assert_eq!(aug.test.len(), d.test.len());
        assert_eq!(aug.val.len(), d.val.len());
    }

    #[test]
    fn deterministic_build() {
        let cfg = SyntheticConfig::tiny(DatasetPreset::Trivago);
        let a = build_dataset(&cfg);
        let b = build_dataset(&cfg);
        assert_eq!(a.num_items, b.num_items);
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.train.first(), b.train.first());
    }
}
