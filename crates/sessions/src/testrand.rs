//! A tiny seeded generator for randomized tests (SplitMix64). This crate
//! sits below `embsr-tensor`, so it cannot borrow the main [`Rng`]; the
//! randomized invariant tests here only need `below(n)`.
//!
//! [`Rng`]: https://docs.rs/embsr-tensor

pub struct TestRand(u64);

impl TestRand {
    pub fn new(seed: u64) -> Self {
        TestRand(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish integer in `[0, n)`; modulo bias is irrelevant for the
    /// tiny ranges used in tests.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}
