//! Base types: items, operations, micro-behaviors and sessions.

/// Dense item identifier, an index into the item vocabulary `V`.
pub type ItemId = u32;

/// Dense operation identifier, an index into the operation vocabulary `O`
/// (e.g. `SearchList2Product`, `Detail_comments`, `Order` on the JD data;
/// `clickout item`, `interaction item image`, … on Trivago).
pub type OpId = u16;

/// One micro-behavior `s_i = (v_i, o_i)`: the user performed operation `op`
/// on item `item`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MicroBehavior {
    pub item: ItemId,
    pub op: OpId,
}

impl MicroBehavior {
    /// Convenience constructor.
    pub fn new(item: ItemId, op: OpId) -> Self {
        MicroBehavior { item, op }
    }
}

/// A user session: the chronological sequence of micro-behaviors
/// `S_t = {s_1, …, s_t}`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Session {
    /// Stable identifier, useful when tracing sessions through splits.
    pub id: u64,
    /// Micro-behaviors in time order.
    pub events: Vec<MicroBehavior>,
}

impl Session {
    /// Creates a session from `(item, op)` pairs.
    pub fn from_pairs(id: u64, pairs: &[(ItemId, OpId)]) -> Self {
        Session {
            id,
            events: pairs
                .iter()
                .map(|&(item, op)| MicroBehavior { item, op })
                .collect(),
        }
    }

    /// Number of micro-behaviors (the paper's `t`).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the session has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the raw item sequence (with repetitions).
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.events.iter().map(|e| e.item)
    }

    /// Iterates over the raw operation sequence.
    pub fn ops(&self) -> impl Iterator<Item = OpId> + '_ {
        self.events.iter().map(|e| e.op)
    }

    /// Largest item id appearing in the session plus one (0 when empty).
    pub fn max_item_exclusive(&self) -> ItemId {
        self.events.iter().map(|e| e.item + 1).max().unwrap_or(0)
    }

    /// Keeps only events whose operation satisfies `keep`, preserving order.
    ///
    /// Used for the supplemental "single operation type" experiment, where
    /// macro-behavior baselines see only click-type events.
    pub fn filter_ops(&self, keep: impl Fn(OpId) -> bool) -> Session {
        Session {
            id: self.id,
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| keep(e.op))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_preserves_order() {
        let s = Session::from_pairs(1, &[(5, 0), (3, 1), (5, 2)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.items().collect::<Vec<_>>(), vec![5, 3, 5]);
        assert_eq!(s.ops().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn filter_ops_keeps_subsequence() {
        let s = Session::from_pairs(1, &[(1, 0), (2, 1), (3, 0), (4, 2)]);
        let clicks = s.filter_ops(|o| o == 0);
        assert_eq!(clicks.items().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(clicks.id, 1);
    }

    #[test]
    fn max_item_exclusive_handles_empty() {
        assert_eq!(Session::default().max_item_exclusive(), 0);
        let s = Session::from_pairs(1, &[(7, 0)]);
        assert_eq!(s.max_item_exclusive(), 8);
    }
}
