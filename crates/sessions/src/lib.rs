//! # embsr-sessions
//!
//! The session data model shared by every crate in the EMBSR reproduction:
//!
//! * [`MicroBehavior`] — one `(item, operation)` tuple, the paper's `s_i`;
//! * [`Session`] — a chronological list of micro-behaviors;
//! * [`MacroStep`] / [`merge_micro_behaviors`] — merging successive
//!   micro-behaviors on the same item into the macro-item sequence `S^v` with
//!   per-item operation sub-sequences `S^o` (paper Sec. II-B);
//! * [`Example`] — a supervised instance: a session prefix plus the
//!   next-macro-item ground truth;
//! * [`SessionGraph`] — the directed **multigraph with ordered edges** of
//!   paper Sec. IV-B-1 / Fig. 3, including star-node bookkeeping;
//! * [`CorpusStats`] — the dataset statistics of paper Table II.

mod example;
mod graph;
mod merge;
mod stats;
#[cfg(test)]
pub(crate) mod testrand;
mod types;

pub use example::Example;
pub use graph::{EdgeEndpoint, SessionGraph};
pub use merge::{merge_micro_behaviors, MacroStep};
pub use stats::CorpusStats;
pub use types::{ItemId, MicroBehavior, OpId, Session};
